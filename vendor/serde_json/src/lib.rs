//! Offline, API-compatible subset of `serde_json`.
//!
//! Formats the vendored serde's [`Value`] tree as JSON text. Output is fully
//! deterministic: object keys keep insertion order, floats use Rust's
//! shortest-roundtrip formatting, and non-finite floats render as `null`
//! (matching upstream's lossy behavior for JSON).

#![forbid(unsafe_code)]

pub use serde::{Map, Value};

use serde::Serialize;

/// Serialization error (the vendored subset is infallible in practice, but
/// the `Result` shape mirrors upstream).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render any serializable value as a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a decimal point; that
                // is still valid JSON, and stable, so keep it as-is.
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            write_value,
            '[',
            ']',
        ),
        Value::Object(map) => write_seq(
            out,
            map.iter(),
            map.len(),
            indent,
            depth,
            |o, (k, val), ind, d| {
                write_escaped(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_objects() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("a".into(), Value::U64(1));
        m.insert("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null]));
        let v = Value::Object(m);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn to_value_round_trips_serialize() {
        let v = to_value(vec![1u64, 2, 3]).unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Object(Map::new())).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Object(Map::new())).unwrap(), "{}");
    }
}
