//! Offline, API-compatible subset of `serde_json`.
//!
//! Formats the vendored serde's [`Value`] tree as JSON text and parses JSON
//! text back into it. Output is fully deterministic: object keys keep
//! insertion order, floats use Rust's shortest-roundtrip formatting, and
//! non-finite floats render as `null` (matching upstream's lossy behavior
//! for JSON).

#![forbid(unsafe_code)]

pub use serde::{Map, Value};

use serde::{Deserialize, Serialize};

/// Serialization error (the vendored subset is infallible in practice, but
/// the `Result` shape mirrors upstream).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render any serializable value as a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like upstream).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type (parse to a [`Value`],
/// then rebuild the typed value from it).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    from_value(&v)
}

/// Rebuild a typed value from a parsed [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_json_value(v).map_err(|e| Error {
        message: e.to_string(),
    })
}

/// Recursive-descent JSON parser over raw bytes (inputs are result files and
/// campaign specs — small, trusted, UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            message: format!("{msg} at byte {}", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // repo's data; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8
                    // because it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number chars are valid UTF-8");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a decimal point; that
                // is still valid JSON, and stable, so keep it as-is.
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            write_value,
            '[',
            ']',
        ),
        Value::Object(map) => write_seq(
            out,
            map.iter(),
            map.len(),
            indent,
            depth,
            |o, (k, val), ind, d| {
                write_escaped(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_objects() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("a".into(), Value::U64(1));
        m.insert("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null]));
        let v = Value::Object(m);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn to_value_round_trips_serialize() {
        let v = to_value(vec![1u64, 2, 3]).unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn parse_round_trips() {
        let cases = [
            r#"{"a":1,"b":[1.5,null],"c":"x\ny","d":true,"e":-3}"#,
            "[]",
            "{}",
            r#"[0.5,1e3,-2.25,18446744073709551615]"#,
            r#""plain""#,
        ];
        for text in cases {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text.replace("1e3", "1000"));
        }
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v: Value = from_str(" { \"k\" : [ 1 , { \"n\" : null } ] } \n").unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"k":[1,{"n":null}]}"#);
    }

    #[test]
    fn parse_typed() {
        let v: Vec<f64> = from_str("[1, 2.5, 3]").unwrap();
        assert_eq!(v, vec![1.0, 2.5, 3.0]);
        let pair: (u64, String) = from_str(r#"[4, "x"]"#).unwrap();
        assert_eq!(pair, (4, "x".to_string()));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string(&Value::Object(Map::new())).unwrap(), "{}");
        assert_eq!(to_string_pretty(&Value::Object(Map::new())).unwrap(), "{}");
    }
}
