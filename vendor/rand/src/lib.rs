//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface vcabench uses: `rngs::StdRng`, the
//! `RngCore`/`SeedableRng`/`Rng` traits, `gen`, `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64. It is **not**
//! stream-compatible with upstream rand's ChaCha12-based `StdRng`; it is,
//! however, a high-quality deterministic generator, which is the only
//! property the simulator relies on (every draw is derived from an explicit
//! experiment seed).

#![forbid(unsafe_code)]

/// Core low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; kept simple here).
    type Seed;
    /// Construct from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a `u64` seed (the only entry point vcabench uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution.
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution (`f64` in `[0,1)`, etc.).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for upstream's
    /// ChaCha12-based `StdRng`; not stream-compatible with it).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; perturb it.
                s = [0x1, 0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x2];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
