//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the bench targets compiling and executable: each `bench_function`
//! runs its routine a small fixed number of iterations and prints the mean
//! wall-clock time. No statistics, warm-up, or HTML reports.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Number of timed iterations per benchmark in this offline subset.
const ITERS: u32 = 3;

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the offline subset ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the offline subset ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        elapsed: std::time::Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.elapsed / b.iters;
        println!("bench {label}: {mean:?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    elapsed: std::time::Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let t = Instant::now();
            let out = routine();
            self.elapsed += t.elapsed();
            self.iters += 1;
            drop(out);
        }
    }

    /// Time `routine` over inputs built by `setup` (setup time untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.elapsed += t.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

/// Prevent the optimizer from discarding a value (best-effort, stable Rust).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, ITERS);
    }

    #[test]
    fn iter_batched_uses_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut total = 0u64;
        g.sample_size(10).bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(total, 2 * ITERS as u64);
    }
}
