//! Offline, API-compatible subset of `serde` (serialization only).
//!
//! The build environment has no crates.io access. vcabench only ever
//! serializes result structs to JSON, so this vendored crate collapses the
//! serde data model to a single JSON-shaped [`Value`]: [`Serialize`] renders
//! a value tree directly, and the companion vendored `serde_json` crate
//! formats it. `#[derive(Serialize)]` comes from the vendored
//! `serde_derive` proc-macro and supports named-field structs and unit-only
//! enums (the shapes used by the harness result types).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON value tree (the serialization target of this vendored serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number (non-finite values render as `null`).
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Map<String, Value>),
}

/// An insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Render as a JSON value.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_json_kinds() {
        assert_eq!(3u64.to_json_value(), Value::U64(3));
        assert_eq!((-2i32).to_json_value(), Value::I64(-2));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(Option::<u64>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.5f64, "a".to_string())];
        match v.to_json_value() {
            Value::Array(items) => match &items[0] {
                Value::Array(pair) => {
                    assert_eq!(pair[0], Value::F64(1.5));
                    assert_eq!(pair[1], Value::String("a".into()));
                }
                other => panic!("expected tuple array, got {other:?}"),
            },
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn map_insert_replaces_and_preserves_order() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("b".into(), Value::U64(1));
        m.insert("a".into(), Value::U64(2));
        assert_eq!(m.insert("b".into(), Value::U64(3)), Some(Value::U64(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.len(), 2);
    }
}
