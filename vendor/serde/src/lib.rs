//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access. vcabench only ever moves
//! JSON-shaped data, so this vendored crate collapses the serde data model
//! to a single JSON-shaped [`Value`]: [`Serialize`] renders a value tree
//! directly, [`Deserialize`] rebuilds typed values from one, and the
//! companion vendored `serde_json` crate parses/formats the text form.
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` come from the vendored
//! `serde_derive` proc-macro and support named-field structs and unit-only
//! enums (the shapes used by the harness result and campaign spec types).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree (the serialization target of this vendored serde).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number (non-finite values render as `null`).
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Map<String, Value>),
}

/// An insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Insert a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Render as a JSON value.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl Value {
    /// Numeric view accepting any of the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Unsigned view (accepts a non-negative `I64` and an integral `F64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(&key.to_string()))
    }

    /// One-word description of the JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form deserialization error.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// Error for a missing required object field.
    pub fn missing(field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}`"),
        }
    }

    /// Prefix the error location with a field name.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("{field}: {}", self.message),
        }
    }

    /// Prefix the error location with an array index.
    pub fn at_index(self, index: usize) -> Self {
        DeError {
            message: format!("[{index}]: {}", self.message),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can rebuild themselves from a [`Value`] tree.
///
/// A missing object field is presented to the field's type as
/// [`Value::Null`], so `Option<T>` fields tolerate absent keys while every
/// other type reports "missing field".
pub trait Deserialize: Sized {
    /// Rebuild from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        f64::from_json_value(v).map(|f| f as f32)
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_unsigned!(u8, u16, u32, u64, usize);
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json_value(item).map_err(|e| e.at_index(i)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr, $($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::msg(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_json_value(&items[$idx]).map_err(|e| e.at_index($idx))?,)+))
            }
        }
    )*};
}

de_tuple!(
    (1, A: 0),
    (2, A: 0, B: 1),
    (3, A: 0, B: 1, C: 2),
    (4, A: 0, B: 1, C: 2, D: 3)
);

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| {
                V::from_json_value(val)
                    .map(|val| (k.clone(), val))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

/// Extract and deserialize one object field; a missing key deserializes as
/// [`Value::Null`] (used by `#[derive(Deserialize)]`).
pub fn de_field<T: Deserialize>(obj: &Map<String, Value>, key: &str) -> Result<T, DeError> {
    match obj.get(&key.to_string()) {
        Some(v) => T::from_json_value(v).map_err(|e| e.in_field(key)),
        None => T::from_json_value(&Value::Null).map_err(|_| DeError::missing(key)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_json_kinds() {
        assert_eq!(3u64.to_json_value(), Value::U64(3));
        assert_eq!((-2i32).to_json_value(), Value::I64(-2));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(Option::<u64>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.5f64, "a".to_string())];
        match v.to_json_value() {
            Value::Array(items) => match &items[0] {
                Value::Array(pair) => {
                    assert_eq!(pair[0], Value::F64(1.5));
                    assert_eq!(pair[1], Value::String("a".into()));
                }
                other => panic!("expected tuple array, got {other:?}"),
            },
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn deserialize_primitives() {
        assert_eq!(u64::from_json_value(&Value::U64(3)), Ok(3));
        assert_eq!(u32::from_json_value(&Value::I64(7)), Ok(7));
        assert_eq!(f64::from_json_value(&Value::U64(2)), Ok(2.0));
        assert_eq!(i64::from_json_value(&Value::I64(-4)), Ok(-4));
        assert_eq!(
            String::from_json_value(&Value::String("x".into())),
            Ok("x".to_string())
        );
        assert!(u8::from_json_value(&Value::U64(300)).is_err());
        assert!(u64::from_json_value(&Value::I64(-1)).is_err());
        assert!(bool::from_json_value(&Value::Null).is_err());
    }

    #[test]
    fn deserialize_containers() {
        assert_eq!(
            Vec::<u64>::from_json_value(&Value::Array(vec![Value::U64(1), Value::U64(2)])),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u64>::from_json_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::from_json_value(&Value::U64(5)), Ok(Some(5)));
        let pair = Value::Array(vec![Value::U64(1), Value::F64(2.5)]);
        assert_eq!(<(u64, f64)>::from_json_value(&pair), Ok((1, 2.5)));
        assert!(<(u64, f64)>::from_json_value(&Value::Array(vec![Value::U64(1)])).is_err());
    }

    #[test]
    fn de_field_missing_behaviour() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("present".into(), Value::U64(1));
        assert_eq!(de_field::<u64>(&m, "present"), Ok(1));
        assert_eq!(de_field::<Option<u64>>(&m, "absent"), Ok(None));
        assert_eq!(
            de_field::<u64>(&m, "absent"),
            Err(DeError::missing("absent"))
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I64(-2).as_f64(), Some(-2.0));
        assert_eq!(Value::F64(3.0).as_u64(), Some(3));
        assert_eq!(Value::F64(3.5).as_u64(), None);
        let mut m: Map<String, Value> = Map::new();
        m.insert("k".into(), Value::Bool(true));
        let obj = Value::Object(m);
        assert_eq!(obj.get("k").and_then(Value::as_bool), Some(true));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(obj.kind(), "object");
    }

    #[test]
    fn map_insert_replaces_and_preserves_order() {
        let mut m: Map<String, Value> = Map::new();
        m.insert("b".into(), Value::U64(1));
        m.insert("a".into(), Value::U64(2));
        assert_eq!(m.insert("b".into(), Value::U64(3)), Some(Value::U64(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.len(), 2);
    }
}
