//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`, since the
//! build environment is offline). Supports the shapes vcabench (de)serializes:
//! named-field structs and enums whose variants are all unit-like. Anything
//! else produces a `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid code"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid"),
    }
}

/// Derive `serde::Deserialize` (vendored subset).
///
/// Named-field structs deserialize from a JSON object (a missing key is
/// presented to the field type as `null`, so `Option` fields are optional);
/// unit enums deserialize from their variant name as a string.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate_de(&tokens) {
        Ok(code) => code.parse().expect("serde_derive generated invalid code"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error is valid"),
    }
}

fn generate_de(tokens: &[TokenTree]) -> Result<String, String> {
    let (kind, name, inner) = parse_item(tokens)?;
    if kind == "struct" {
        let fields = parse_named_fields(&inner)?;
        let mut out = String::new();
        out.push_str(&format!(
            "impl ::serde::Deserialize for {name} {{\n    fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        let __obj = match __v {{\n            ::serde::Value::Object(m) => m,\n            other => return Err(::serde::DeError::expected({name:?}, other)),\n        }};\n        Ok({name} {{\n"
        ));
        for f in &fields {
            out.push_str(&format!(
                "            {f}: ::serde::de_field(__obj, {f:?})?,\n"
            ));
        }
        out.push_str("        })\n    }\n}\n");
        Ok(out)
    } else {
        let variants = parse_unit_variants(&name, &inner)?;
        let all = variants.join(", ");
        let mut out = String::new();
        out.push_str(&format!(
            "impl ::serde::Deserialize for {name} {{\n    fn from_json_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        match __v.as_str() {{\n"
        ));
        for v in &variants {
            out.push_str(&format!("            Some({v:?}) => Ok({name}::{v}),\n"));
        }
        out.push_str(&format!(
            "            Some(other) => Err(::serde::DeError::msg(format!(\n                \"unknown {name} variant `{{other}}` (expected one of: {all})\"\n            ))),\n            None => Err(::serde::DeError::expected(\"string\", __v)),\n        }}\n    }}\n}}\n"
        ));
        Ok(out)
    }
}

/// Navigate to the item: returns (`"struct"`/`"enum"`, name, body tokens).
fn parse_item(tokens: &[TokenTree]) -> Result<(String, String, Vec<TokenTree>), String> {
    let mut i = 0;
    // Skip outer attributes and visibility to find `struct` or `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => return Err(format!("unexpected token before item: {other}")),
            None => return Err("no struct or enum found".to_string()),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive: generic type `{name}` is not supported by the vendored serde"
            ));
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => {
                return Err(format!(
                    "`{name}` has no braced body (tuple/unit items unsupported)"
                ))
            }
        }
    };
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    Ok((kind, name, inner))
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let (kind, name, inner) = parse_item(tokens)?;
    if kind == "struct" {
        let fields = parse_named_fields(&inner)?;
        let mut out = String::new();
        out.push_str(&format!(
            "impl ::serde::Serialize for {name} {{\n    fn to_json_value(&self) -> ::serde::Value {{\n        let mut __m = ::serde::Map::new();\n"
        ));
        for f in &fields {
            out.push_str(&format!(
                "        __m.insert(::std::string::String::from({f:?}), ::serde::Serialize::to_json_value(&self.{f}));\n"
            ));
        }
        out.push_str("        ::serde::Value::Object(__m)\n    }\n}\n");
        Ok(out)
    } else {
        let variants = parse_unit_variants(&name, &inner)?;
        let mut out = String::new();
        out.push_str(&format!(
            "impl ::serde::Serialize for {name} {{\n    fn to_json_value(&self) -> ::serde::Value {{\n        match self {{\n"
        ));
        for v in &variants {
            out.push_str(&format!(
                "            {name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),\n"
            ));
        }
        out.push_str("        }\n    }\n}\n");
        Ok(out)
    }
}

/// Parse `pub? ident: Type,` sequences, skipping attributes and doc comments.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                let field = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => {
                        return Err(format!(
                            "expected `:` after field `{field}`, found {other:?} (tuple structs unsupported)"
                        ))
                    }
                }
                // Skip the type: commas inside angle brackets are nested.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                fields.push(field);
            }
            other => return Err(format!("unexpected token in struct body: {other}")),
        }
    }
    Ok(fields)
}

/// Parse unit variants, rejecting tuple/struct variants.
fn parse_unit_variants(name: &str, tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Skip an explicit discriminant expression.
                        while i < tokens.len() {
                            if let TokenTree::Punct(p) = &tokens[i] {
                                if p.as_char() == ',' {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "serde_derive: variant `{name}::{variant}` carries data; only unit enums are supported by the vendored serde"
                        ));
                    }
                    Some(other) => {
                        return Err(format!(
                            "unexpected token after variant `{variant}`: {other}"
                        ))
                    }
                }
                variants.push(variant);
            }
            other => return Err(format!("unexpected token in enum body: {other}")),
        }
    }
    Ok(variants)
}
