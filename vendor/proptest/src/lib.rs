//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of proptest that vcabench uses:
//!
//! - the [`proptest!`] macro (named-argument `ident in strategy` form),
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - range strategies, `any::<T>()`, `collection::{vec, btree_set}`,
//!   `sample::subsequence`, [`strategy::Just`], and `prop_map`,
//! - regression-seed persistence compatible with the upstream
//!   `proptest-regressions/*.txt` convention (`cc <hex>` lines are re-run
//!   before fresh cases, and new failures are appended).
//!
//! Differences from upstream: no shrinking (failures report the seed of the
//! failing case instead of a minimized value), and case generation is fully
//! deterministic per (file, test name, case index) so CI runs are
//! reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case runner with regression-seed persistence.

    use std::collections::BTreeSet;
    use std::io::Write as _;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    /// Default number of fresh cases per property (override with the
    /// `PROPTEST_CASES` environment variable).
    pub const DEFAULT_CASES: u32 = 64;

    /// A failed test case (produced by the `prop_assert*` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG driving value generation (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed a generator from a `u64`.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }

    fn fnv(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Regression file for a given `file!()` path, following the upstream
    /// layout: `<crate>/proptest-regressions/<source stem>.txt`.
    fn regression_path(source_file: &str) -> Option<PathBuf> {
        let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
        let rel = match source_file.rfind("src/") {
            Some(i) => &source_file[i + 4..],
            None => match source_file.rfind("tests/") {
                Some(i) => &source_file[i..],
                None => source_file.rsplit('/').next()?,
            },
        };
        let rel = rel.strip_suffix(".rs").unwrap_or(rel);
        Some(
            PathBuf::from(manifest)
                .join("proptest-regressions")
                .join(format!("{rel}.txt")),
        )
    }

    fn load_regression_seeds(path: &PathBuf) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("cc ") {
                let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
                let head = &hex[..hex.len().min(16)];
                if !head.is_empty() {
                    if let Ok(seed) = u64::from_str_radix(head, 16) {
                        seeds.push(seed);
                    }
                }
            }
        }
        seeds
    }

    fn persist_failure(path: &PathBuf, seed: u64, message: &str) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let line = format!("cc {seed:016x}");
        if existing.contains(&line) {
            return;
        }
        let mut f = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => f,
            Err(_) => return,
        };
        if existing.is_empty() {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated.\n\
                 #\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases.",
            );
        }
        let summary: String = message.chars().take(120).collect();
        let _ = writeln!(f, "{line} # {}", summary.replace('\n', " "));
    }

    /// Number of fresh cases to run, honoring `PROPTEST_CASES`.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    /// Execute a property: regression seeds first, then fresh cases. Panics
    /// on the first failing case, after persisting its seed.
    pub fn run<F>(source_file: &str, test_name: &str, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let path = regression_path(source_file);
        let mut seeds: Vec<u64> = path.as_ref().map(load_regression_seeds).unwrap_or_default();
        let n_regress = seeds.len();
        let base = fnv(format!("{source_file}::{test_name}").as_bytes());
        seeds.extend(
            (0..case_count()).map(|i| base ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        // A regression seed may appear twice (base collision); dedup keeps
        // order stable while avoiding redundant work.
        let mut seen = BTreeSet::new();
        seeds.retain(|s| seen.insert(*s));

        for (i, &seed) in seeds.iter().enumerate() {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = TestRng::seed_from_u64(seed);
                f(&mut rng)
            }));
            let message = match outcome {
                Ok(Ok(())) => continue,
                Ok(Err(e)) => e.message,
                Err(panic) => {
                    if let Some(s) = panic.downcast_ref::<String>() {
                        s.clone()
                    } else if let Some(s) = panic.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else {
                        "test case panicked".to_string()
                    }
                }
            };
            let origin = if i < n_regress { "regression" } else { "fresh" };
            if let Some(p) = &path {
                persist_failure(p, seed, &message);
            }
            panic!("proptest: {test_name} failed on {origin} case (seed {seed:016x}): {message}");
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as u128) - (self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as u128 + draw) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as u128 + draw) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values spanning a wide dynamic range, sign included.
            let mag = (rng.unit_f64() * 600.0) - 300.0;
            mag.exp2() * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate ordered sets of values from `element`, size in `size`
    /// (best-effort when the element domain is too small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.start, self.size.end);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    //! Sampling strategies over fixed collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy yielding order-preserving subsequences of a base vector.
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: Range<usize>,
    }

    /// Generate subsequences of `items` with length drawn from `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        Subsequence { items, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let hi = self.size.end.min(self.items.len() + 1);
            let lo = self.size.start.min(hi.saturating_sub(1));
            let k = rng.usize_in(lo, hi.max(lo + 1));
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..k.min(idx.len()) {
                let j = rng.usize_in(i, idx.len());
                idx.swap(i, j);
            }
            let mut chosen: Vec<usize> = idx.into_iter().take(k).collect();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring upstream.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports the `ident in strategy` argument form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(file!(), stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a property; failure reports the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn btree_set_sizes(s in crate::collection::btree_set(0u64..1000, 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
        }

        #[test]
        fn subsequence_preserves_order(
            sub in crate::sample::subsequence((0usize..30).collect::<Vec<_>>(), 1..30),
        ) {
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let seen: u8 = b.into();
            prop_assert!(seen <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..6);
        let a = strat.generate(&mut TestRng::seed_from_u64(9));
        let b = strat.generate(&mut TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_applies() {
        let strat = (1u64..2).prop_map(|v| v * 10);
        assert_eq!(strat.generate(&mut TestRng::seed_from_u64(0)), 10);
    }

    #[test]
    fn case_count_has_floor() {
        assert!(crate::test_runner::case_count() >= 1);
    }
}
