//! # vcabench
//!
//! A deterministic, packet-level reproduction of *"Measuring the Performance
//! and Network Utilization of Popular Video Conferencing Applications"*
//! (MacMillan, Saxon, Mangla, Feamster — IMC 2021).
//!
//! The paper measures the real Zoom, Google Meet, and Microsoft Teams
//! clients in a shaped laboratory network. This crate replaces every piece
//! of that laboratory with an executable model — a discrete-event packet
//! simulator, RTP/RTCP/TCP transports, the three VCAs' congestion
//! controllers and media pipelines, their relay/SFU servers, and the
//! competing applications (iPerf3, Netflix, YouTube) — and regenerates all
//! of the paper's tables and figures on top of it.
//!
//! ## Quick start
//!
//! ```
//! use vcabench::prelude::*;
//!
//! // A 30-second two-party Zoom call with a 1 Mbps uplink cap on client 1.
//! let mut call = two_party_call(
//!     VcaKind::Zoom,
//!     RateProfile::constant_mbps(1.0),
//!     RateProfile::constant_mbps(1000.0),
//!     42,
//! );
//! call.net.run_until(SimTime::from_secs(30));
//! let sent = call
//!     .net
//!     .link(call.topo.c1_up)
//!     .traces
//!     .total()
//!     .rate_mbps_between(SimTime::from_secs(10), SimTime::from_secs(30));
//! assert!(sent > 0.5, "Zoom should fill most of a 1 Mbps uplink: {sent}");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`simcore`] | virtual time, event queue, seeded RNG |
//! | [`netsim`] | packets, links, `tc`-style shaping, topologies, traces |
//! | [`transport`] | RTP/RTCP, FEC, TCP CUBIC, QUIC-lite |
//! | [`congestion`] | GCC (Meet), FBRA-style (Zoom), conservative (Teams) |
//! | [`media`] | codec rate model, adaptation policies, simulcast/SVC, freezes |
//! | [`vca`] | clients, SFU/relay servers, calls, layouts, WebRTC-style stats |
//! | [`apps`] | iPerf3, Netflix, YouTube |
//! | [`stats`] | medians/CIs, time-to-recovery, link shares |
//! | [`campaign`] | declarative scenario specs, parallel executor, result cache |
//! | [`telemetry`] | deterministic event tracing, metrics, trace export, profiler |
//! | [`infer`] | passive QoE inference from packet traces (features, estimators) |
//! | [`fingerprint`] | flow-level VCA identification (features, classifiers) |
//! | [`observe`] | span timeline, anomaly diagnosis, trace diff over telemetry |
//! | [`harness`] | one module per paper table/figure, plus inference validation |
//! | `bench` | pinned engine benchmarks, the perf gate, and the `repro` binary |
//!
//! Reproduce everything: `cargo run --release -p vcabench-bench --bin repro -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vcabench_apps as apps;
pub use vcabench_campaign as campaign;
pub use vcabench_congestion as congestion;
pub use vcabench_fingerprint as fingerprint;
pub use vcabench_harness as harness;
pub use vcabench_infer as infer;
pub use vcabench_media as media;
pub use vcabench_netsim as netsim;
pub use vcabench_observe as observe;
pub use vcabench_simcore as simcore;
pub use vcabench_stats as stats;
pub use vcabench_telemetry as telemetry;
pub use vcabench_transport as transport;
pub use vcabench_vca as vca;

/// The most common imports for building and measuring simulated calls.
pub mod prelude {
    pub use vcabench_campaign::{
        Axes, CampaignSpec, ScenarioOutcome, ScenarioSpec, ScenarioTemplate, SeedAxis, TwoPartySpec,
    };
    pub use vcabench_fingerprint::{
        CentroidModel, Classifier, FingerprintBank, RuleClassifier, VcaFamily,
    };
    pub use vcabench_harness::{
        run_campaign, run_campaign_cached, run_campaign_cached_traced, run_competition,
        run_multiparty, run_spec, run_spec_infer, run_spec_observe, run_spec_traced, run_two_party,
        CompetitionConfig, Competitor, TwoPartyOutcome,
    };
    pub use vcabench_infer::{Estimator, HeuristicEstimator, LinearModel, TapBank, Vantage};
    pub use vcabench_netsim::{LinkConfig, Network, RateProfile};
    pub use vcabench_observe::{diagnose, diagnose_jsonl, Diagnosis, ObserveConfig, SpanBuilder};
    pub use vcabench_simcore::{SimDuration, SimRng, SimTime};
    pub use vcabench_telemetry::{EventKind, EventLog, Telemetry};
    pub use vcabench_transport::Wire;
    pub use vcabench_vca::{
        multiparty_call, two_party_call, wire_call, wire_call_at, VcaClient, VcaKind, ViewMode,
    };
}
