//! Edge-case and seed-regression tests for [`SimRng`].
//!
//! Two kinds of guarantee are pinned here. The *semantic* ones — fork label
//! independence, degenerate `lo == hi` ranges, full-domain `int_range` —
//! protect the properties components rely on. The *stream-regression* ones
//! hard-code the exact bits a fixed seed produces today: any change to the
//! generator, the fork derivation, or the range-mapping arithmetic shifts
//! every baseline in the repo, so it must show up as a loud test failure
//! rather than as silently drifted experiment numbers.

use vcabench_simcore::SimRng;

// ---------------------------------------------------------------------------
// fork: label independence
// ---------------------------------------------------------------------------

#[test]
fn fork_labels_yield_unrelated_streams() {
    let root = SimRng::seed_from_u64(0xC0FFEE);
    let mut enc = root.fork("encoder");
    let mut net = root.fork("network");
    // Not just the first draw: the streams stay apart over a long prefix.
    let a: Vec<u64> = (0..64).map(|_| enc.uniform().to_bits()).collect();
    let b: Vec<u64> = (0..64).map(|_| net.uniform().to_bits()).collect();
    assert_ne!(a, b, "distinct labels must derive distinct streams");
    assert!(
        a.iter().zip(&b).filter(|(x, y)| x == y).count() < 4,
        "streams should be essentially uncorrelated, not merely unequal"
    );
}

#[test]
fn fork_same_label_is_reproducible_across_instances() {
    let a = SimRng::seed_from_u64(17).fork("media").fork("layer0");
    let b = SimRng::seed_from_u64(17).fork("media").fork("layer0");
    let (mut a, mut b) = (a, b);
    for _ in 0..32 {
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }
}

#[test]
fn fork_order_does_not_matter() {
    // `fork` takes `&self` and clones the parent internally, so the order in
    // which components derive their sub-streams can never perturb them.
    let root = SimRng::seed_from_u64(99);
    let mut enc_first = root.fork("encoder");
    let _net = root.fork("network");
    let mut enc_second = root.fork("encoder");
    for _ in 0..32 {
        assert_eq!(
            enc_first.uniform().to_bits(),
            enc_second.uniform().to_bits()
        );
    }
}

#[test]
fn fork_labels_differing_only_in_suffix_diverge() {
    // FNV-1a is sensitive to every byte; near-identical labels (the realistic
    // failure mode: "flow-1" vs "flow-2") must still split.
    let root = SimRng::seed_from_u64(1);
    let mut f1 = root.fork("flow-1");
    let mut f2 = root.fork("flow-2");
    let mut f10 = root.fork("flow-10");
    let x1 = f1.uniform().to_bits();
    assert_ne!(x1, f2.uniform().to_bits());
    assert_ne!(x1, f10.uniform().to_bits());
}

#[test]
fn empty_label_is_a_valid_distinct_stream() {
    let root = SimRng::seed_from_u64(5);
    let mut empty = root.fork("");
    let mut named = root.fork("x");
    assert_ne!(empty.uniform().to_bits(), named.uniform().to_bits());
}

// ---------------------------------------------------------------------------
// uniform_range / int_range boundaries
// ---------------------------------------------------------------------------

#[test]
fn uniform_range_lo_equals_hi_returns_lo_without_consuming_entropy() {
    let mut a = SimRng::seed_from_u64(11);
    let mut b = SimRng::seed_from_u64(11);
    assert_eq!(a.uniform_range(2.5, 2.5), 2.5);
    // The degenerate draw short-circuits before touching the stream, so the
    // next draw still matches a generator that never made it.
    assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
}

#[test]
fn uniform_range_negative_and_huge_spans_stay_in_bounds() {
    let mut rng = SimRng::seed_from_u64(13);
    for _ in 0..1000 {
        let x = rng.uniform_range(-5.0, -1.0);
        assert!((-5.0..-1.0).contains(&x), "draw {x} escaped [-5, -1)");
    }
    for _ in 0..1000 {
        let x = rng.uniform_range(-1e300, 1e300);
        assert!(x.is_finite());
        assert!((-1e300..1e300).contains(&x), "draw {x} escaped the span");
    }
}

#[test]
#[should_panic(expected = "empty range")]
fn uniform_range_inverted_bounds_panic() {
    let mut rng = SimRng::seed_from_u64(1);
    let _ = rng.uniform_range(3.0, 2.0);
}

#[test]
fn int_range_lo_equals_hi_is_constant() {
    let mut rng = SimRng::seed_from_u64(21);
    for _ in 0..100 {
        assert_eq!(rng.int_range(7, 7), 7);
    }
    assert_eq!(rng.int_range(0, 0), 0);
    assert_eq!(rng.int_range(u64::MAX, u64::MAX), u64::MAX);
}

#[test]
fn int_range_full_domain_is_valid_and_varies() {
    // `[0, u64::MAX]` inclusive covers the whole domain — the classic
    // overflow trap for half-open range mappings (hi - lo + 1 wraps to 0).
    let mut rng = SimRng::seed_from_u64(31);
    let draws: Vec<u64> = (0..64).map(|_| rng.int_range(0, u64::MAX)).collect();
    let distinct: std::collections::HashSet<_> = draws.iter().collect();
    assert!(
        distinct.len() > 60,
        "full-domain draws should rarely collide"
    );
    // Both halves of the domain get hit in a modest sample.
    assert!(draws.iter().any(|&x| x > u64::MAX / 2));
    assert!(draws.iter().any(|&x| x < u64::MAX / 2));
}

#[test]
fn int_range_tight_bounds_are_inclusive() {
    let mut rng = SimRng::seed_from_u64(41);
    let mut seen = [false; 3];
    for _ in 0..200 {
        let x = rng.int_range(3, 5);
        assert!((3..=5).contains(&x));
        seen[(x - 3) as usize] = true;
    }
    assert_eq!(seen, [true; 3], "all of 3, 4, 5 should appear in 200 draws");
}

#[test]
#[should_panic(expected = "empty range")]
fn int_range_inverted_bounds_panic() {
    let mut rng = SimRng::seed_from_u64(1);
    let _ = rng.int_range(5, 4);
}

// ---------------------------------------------------------------------------
// Seed regression: exact pinned streams
// ---------------------------------------------------------------------------
//
// These constants were captured from the current generator. If one of these
// tests fails, the RNG's output changed — every experiment baseline, golden
// trace, and cached campaign result in the repo is invalidated. That is
// occasionally a deliberate choice, but it must never happen by accident.

#[test]
fn pinned_root_and_fork_streams() {
    let mut root = SimRng::seed_from_u64(0xC0FFEE);
    let mut enc = root.fork("encoder");
    let mut net = root.fork("network");
    assert_eq!(root.uniform().to_bits(), 0x3fe18ec2bd35ed69);
    assert_eq!(enc.uniform().to_bits(), 0x3fe9159ca97cec2e);
    assert_eq!(net.uniform().to_bits(), 0x3fb52c7328504e50);
}

#[test]
fn pinned_full_domain_int_stream() {
    let mut rng = SimRng::seed_from_u64(2021);
    let draws: Vec<u64> = (0..4).map(|_| rng.int_range(0, u64::MAX)).collect();
    assert_eq!(
        draws,
        [
            0xb42534e6b6a994c1,
            0xee71dc9f8c6088c5,
            0x7cedb8fb015ceec0,
            0xdc11ba8ab9f2fe0b,
        ]
    );
}

#[test]
fn pinned_uniform_range_stream() {
    let mut rng = SimRng::seed_from_u64(2021);
    let bits: Vec<u64> = (0..4)
        .map(|_| rng.uniform_range(-1.0, 1.0).to_bits())
        .collect();
    assert_eq!(
        bits,
        [
            0x3fe31d849a0ac7e2,
            0x3fda129a735b54c8,
            0x3fb2a2f5acb4fe00,
            0x3feb9c7727e31822,
        ]
    );
}

#[test]
fn pinned_small_int_range_stream() {
    let mut rng = SimRng::seed_from_u64(2021);
    let draws: Vec<u64> = (0..8).map(|_| rng.int_range(3, 5)).collect();
    assert_eq!(draws, [4, 5, 5, 5, 3, 5, 3, 3]);
}
