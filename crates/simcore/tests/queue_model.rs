//! Differential test: the optimized [`EventQueue`] against a naive
//! sorted-`Vec` reference model.
//!
//! The reference model is the specification: a `Vec` of `(time, seq,
//! payload)` kept explicitly sorted, with cancellation by linear removal.
//! Proptest drives both through randomized schedule/cancel/pop
//! interleavings — including cancel-after-pop, duplicate cancels, and
//! cancels of long-gone ids — and every step must agree on the cancel
//! return value, `peek_time`, `len`, `is_empty`, and the popped
//! `(time, payload)`.

use proptest::prelude::*;
use vcabench_simcore::{EventId, EventQueue, SimTime};

/// The executable specification of EventQueue semantics.
#[derive(Default)]
struct ModelQueue {
    /// Pending events, sorted by `(time, seq)`.
    pending: Vec<(SimTime, u64, u64)>,
    next_seq: u64,
}

impl ModelQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self
            .pending
            .partition_point(|&(t, s, _)| (t, s) < (at, seq));
        self.pending.insert(pos, (at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(pos) => {
                self.pending.remove(pos);
                true
            }
            None => false,
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending.first().map(|&(t, _, _)| t)
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        if self.pending.is_empty() {
            None
        } else {
            let (t, _, p) = self.pending.remove(0);
            Some((t, p))
        }
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// One step of the interleaving. Cancel carries an index into the list of
/// every id ever issued, so it exercises pending, popped, already-cancelled,
/// and slot-reused ids alike.
#[derive(Debug, Clone)]
enum Op {
    Schedule { at_millis: u64, payload: u64 },
    Cancel { pick: usize },
    Pop,
}

/// Decode a raw u64 into an op: schedule-heavy (3/7) so runs grow deep
/// enough to stress the heap, with a small time range forcing plenty of
/// (time, seq) tie-breaks.
fn decode(raw: u64) -> Op {
    match raw % 7 {
        0..=2 => Op::Schedule {
            at_millis: (raw >> 3) % 50,
            payload: raw >> 10,
        },
        3 | 4 => Op::Cancel {
            pick: (raw >> 3) as usize,
        },
        _ => Op::Pop,
    }
}

proptest! {
    #[test]
    fn event_queue_matches_sorted_vec_model(raw_ops in proptest::collection::vec(any::<u64>(), 1..400)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model = ModelQueue::default();
        // Paired ids, in issue order: the model's seq and the queue's EventId.
        let mut issued: Vec<(u64, EventId)> = Vec::new();

        for op in raw_ops.iter().map(|&r| decode(r)) {
            match op {
                Op::Schedule { at_millis, payload } => {
                    let at = SimTime::from_millis(at_millis);
                    let id = q.schedule(at, payload);
                    let seq = model.schedule(at, payload);
                    issued.push((seq, id));
                }
                Op::Cancel { pick } => {
                    if issued.is_empty() {
                        continue;
                    }
                    let (seq, id) = issued[pick % issued.len()];
                    prop_assert_eq!(
                        q.cancel(id),
                        model.cancel(seq),
                        "cancel return value diverged"
                    );
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop(), "pop diverged");
                }
            }
            // Observable state must agree after every single step.
            prop_assert_eq!(q.peek_time(), model.peek_time(), "peek_time diverged");
            prop_assert_eq!(q.len(), model.len(), "len diverged");
            prop_assert_eq!(q.is_empty(), model.len() == 0, "is_empty diverged");
        }

        // Drain: the remaining pop order must match exactly.
        while let Some(expected) = model.pop() {
            prop_assert_eq!(q.pop(), Some(expected), "drain order diverged");
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert!(q.is_empty());
    }

    /// Duplicate cancel and cancel-after-pop always report false on the
    /// real queue, exactly like the model (which simply no longer finds
    /// the id).
    #[test]
    fn second_cancel_is_always_false(at in 0u64..100, cancel_first in any::<bool>()) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(at), 7);
        if cancel_first {
            prop_assert!(q.cancel(id));
        } else {
            prop_assert_eq!(q.pop(), Some((SimTime::from_millis(at), 7)));
        }
        prop_assert!(!q.cancel(id));
        prop_assert!(!q.cancel(id));
    }
}
