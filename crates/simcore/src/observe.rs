//! Simulation invariant checking.
//!
//! The engine and the layers above it (links, transports, controllers)
//! maintain properties that must hold on every event: time never goes
//! backwards, queues conserve packets, rates respect configured bounds.
//! This module provides the shared vocabulary for *auditing* those
//! properties at runtime: a [`Violation`] record, an [`InvariantLog`] that
//! concrete audits accumulate into, and the [`Invariant`]/[`SimObserver`]
//! traits the test kit uses to arm and interrogate checks.
//!
//! The types here are always compiled (they are cheap, inert data); the
//! *hook points* that feed them live behind each crate's `testkit-checks`
//! feature so production builds pay nothing.

use std::fmt;

use crate::time::SimTime;

/// Cap on stored violations per log: a broken invariant usually fires on
/// every subsequent event, and the first few occurrences carry all the
/// diagnostic value. Further violations are counted but not stored.
const MAX_STORED_VIOLATIONS: usize = 32;

/// One observed breach of a simulation invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulation time at which the breach was detected.
    pub at: SimTime,
    /// Name of the invariant that failed (stable, greppable).
    pub invariant: &'static str,
    /// Human-readable specifics (observed vs. expected values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.invariant, self.detail)
    }
}

/// Accumulator shared by concrete audits: counts every check performed and
/// stores the first `MAX_STORED_VIOLATIONS` (32) violations.
///
/// Tracking the check count matters as much as the violations themselves: a
/// suite that reports "no violations" after performing zero checks proves
/// nothing, so the test kit asserts both.
#[derive(Debug, Clone, Default)]
pub struct InvariantLog {
    violations: Vec<Violation>,
    checks: u64,
    suppressed: u64,
}

impl InvariantLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Perform one check: record a violation when `ok` is false. The detail
    /// closure only runs on failure.
    pub fn check(
        &mut self,
        at: SimTime,
        invariant: &'static str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok {
            self.record(at, invariant, detail());
        }
    }

    /// Record a violation directly (for checks counted elsewhere).
    pub fn record(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation {
                at,
                invariant,
                detail,
            });
        } else {
            self.suppressed += 1;
        }
    }

    /// Number of checks performed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Stored violations (capped; see [`InvariantLog::suppressed`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations dropped after the storage cap was reached.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// True if no violation has ever been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }
}

/// A named runtime invariant whose outcome can be interrogated after a run.
pub trait Invariant {
    /// Stable name of the invariant.
    fn name(&self) -> &'static str;
    /// Violations observed so far.
    fn violations(&self) -> &[Violation];
    /// Number of individual checks performed.
    fn checks_performed(&self) -> u64;
    /// True when every check passed.
    fn ok(&self) -> bool {
        self.violations().is_empty()
    }
}

/// An invariant fed by the event loop: it sees the timestamp of every
/// processed event. External observers (the test kit's, for instance) attach
/// to the engine through this trait.
pub trait SimObserver: Invariant {
    /// Called once per processed event with the event's timestamp.
    fn on_event(&mut self, at: SimTime);
}

/// The fundamental engine invariant: processed-event timestamps never
/// decrease.
#[derive(Debug, Clone, Default)]
pub struct MonotonicClock {
    last: Option<SimTime>,
    log: InvariantLog,
}

impl MonotonicClock {
    /// Fresh clock check.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for MonotonicClock {
    fn name(&self) -> &'static str {
        "sim-time-monotonic"
    }

    fn violations(&self) -> &[Violation] {
        self.log.violations()
    }

    fn checks_performed(&self) -> u64 {
        self.log.checks_performed()
    }
}

impl SimObserver for MonotonicClock {
    fn on_event(&mut self, at: SimTime) {
        let last = self.last;
        self.log.check(
            at,
            "sim-time-monotonic",
            last.map(|l| at >= l).unwrap_or(true),
            || {
                format!(
                    "event at {at} after event at {}",
                    last.unwrap_or(SimTime::ZERO)
                )
            },
        );
        self.last = Some(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_checks_and_violations() {
        let mut log = InvariantLog::new();
        log.check(SimTime::ZERO, "x", true, || unreachable!());
        log.check(SimTime::from_secs(1), "x", false, || "boom".into());
        assert_eq!(log.checks_performed(), 2);
        assert_eq!(log.violations().len(), 1);
        assert!(!log.is_clean());
        assert_eq!(log.violations()[0].invariant, "x");
        assert_eq!(log.violations()[0].detail, "boom");
    }

    #[test]
    fn log_caps_stored_violations() {
        let mut log = InvariantLog::new();
        for i in 0..100 {
            log.check(SimTime::from_micros(i), "x", false, || "v".into());
        }
        assert_eq!(log.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(
            log.suppressed(),
            100 - MAX_STORED_VIOLATIONS as u64,
            "overflow counted, not stored"
        );
        assert!(!log.is_clean());
    }

    #[test]
    fn monotonic_clock_accepts_ordered_events() {
        let mut c = MonotonicClock::new();
        for t in [0u64, 5, 5, 9] {
            c.on_event(SimTime::from_micros(t));
        }
        assert!(c.ok());
        assert!(c.checks_performed() > 0);
    }

    #[test]
    fn monotonic_clock_flags_regression() {
        let mut c = MonotonicClock::new();
        c.on_event(SimTime::from_secs(2));
        c.on_event(SimTime::from_secs(1));
        assert!(!c.ok());
        assert_eq!(c.name(), "sim-time-monotonic");
        let v = &c.violations()[0];
        assert!(v.detail.contains("after"), "{}", v.detail);
    }

    #[test]
    fn violation_displays_fields() {
        let v = Violation {
            at: SimTime::from_secs(3),
            invariant: "queue-bound",
            detail: "65537 > 65536".into(),
        };
        let s = v.to_string();
        assert!(s.contains("queue-bound") && s.contains("65537"), "{s}");
    }
}
