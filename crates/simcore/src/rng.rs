//! Seeded, fork-able randomness for deterministic experiments.
//!
//! Every experiment takes a single `u64` seed. Components derive independent
//! sub-streams with [`SimRng::fork`], so adding a new consumer of randomness
//! in one component never perturbs the draws seen by another — the property
//! that keeps regression baselines stable as the codebase grows.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator for simulation components.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent sub-stream labelled by `label`.
    ///
    /// The label participates in the derived seed, so `fork("encoder")` and
    /// `fork("network")` yield unrelated streams even when called in a
    /// different order across versions of the code.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with fresh entropy drawn from a clone
        // of the parent; cloning keeps the parent's own stream untouched.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut parent = self.inner.clone();
        SimRng::seed_from_u64(h ^ parent.next_u64())
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "empty range");
        if hi == lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi >= lo, "empty range");
        self.inner.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn forks_are_label_dependent() {
        let root = SimRng::seed_from_u64(7);
        let mut x = root.fork("encoder");
        let mut y = root.fork("network");
        // Independent labels should (overwhelmingly) diverge immediately.
        assert_ne!(x.uniform().to_bits(), y.uniform().to_bits());
        // Same label from same parent state is reproducible.
        let mut x2 = root.fork("encoder");
        assert_eq!(
            x2.uniform().to_bits(),
            SimRng::seed_from_u64(7).fork("encoder").uniform().to_bits()
        );
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let _ = b.fork("child");
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }
}
