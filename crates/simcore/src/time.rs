//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is expressed in integer microseconds since the start
//! of the simulation. Integer time keeps the engine deterministic: there is
//! no floating-point drift, and two events scheduled for the same instant
//! compare equal exactly.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulation time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration; used as a sentinel for "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl serde::Serialize for SimTime {
    /// Serializes as integer microseconds since simulation start.
    fn to_json_value(&self) -> serde::Value {
        serde::Value::U64(self.0)
    }
}

impl serde::Deserialize for SimTime {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        v.as_u64()
            .map(SimTime::from_micros)
            .ok_or_else(|| serde::DeError::expected("microseconds (unsigned integer)", v))
    }
}

impl serde::Serialize for SimDuration {
    /// Serializes as integer microseconds.
    fn to_json_value(&self) -> serde::Value {
        serde::Value::U64(self.0)
    }
}

impl serde::Deserialize for SimDuration {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        v.as_u64()
            .map(SimDuration::from_micros)
            .ok_or_else(|| serde::DeError::expected("microseconds (unsigned integer)", v))
    }
}

/// Duration needed to serialize `bytes` onto a link running at `bits_per_sec`.
///
/// Rounds up to the next microsecond so a packet never finishes "early",
/// which would let a link momentarily exceed its configured rate.
pub fn transmission_time(bytes: usize, bits_per_sec: f64) -> SimDuration {
    assert!(bits_per_sec > 0.0, "link rate must be positive");
    let bits = bytes as f64 * 8.0;
    SimDuration::from_micros((bits / bits_per_sec * 1e6).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 2, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1500 bytes at 1 Mbps = 12 ms exactly.
        assert_eq!(transmission_time(1500, 1e6), SimDuration::from_millis(12));
        // 1 byte at 1 Gbps = 8 ns -> rounds up to 1 us.
        assert_eq!(transmission_time(1, 1e9), SimDuration::from_micros(1));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(150));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn serde_round_trip_micros() {
        use serde::{Deserialize, Serialize};
        let t = SimTime::from_millis(1500);
        assert_eq!(t.to_json_value(), serde::Value::U64(1_500_000));
        assert_eq!(SimTime::from_json_value(&t.to_json_value()), Ok(t));
        let d = SimDuration::from_secs(2);
        assert_eq!(SimDuration::from_json_value(&d.to_json_value()), Ok(d));
        assert!(SimDuration::from_json_value(&serde::Value::F64(1.5)).is_err());
    }
}
