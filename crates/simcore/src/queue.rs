//! Deterministic event queue.
//!
//! Events carry an arbitrary payload `E` and fire at a [`SimTime`]. Ties are
//! broken by insertion order (a monotonically increasing sequence number), so
//! the pop order is a total order that does not depend on heap internals —
//! a prerequisite for reproducible simulations.
//!
//! Scheduled events can be cancelled by [`EventId`]; cancellation is lazy.
//! Each pending event owns a slot in a generation-counted slab, and the
//! [`EventId`] packs `(generation, slot)`, so cancelling costs one indexed
//! load (no hashing) and stale ids — cancel-after-pop, or an id whose slot
//! has been reused — are rejected by the generation check. Cancelled heap
//! entries are tombstones, dropped when they surface; the queue maintains
//! the invariant that the heap top is never a tombstone, which is what lets
//! [`EventQueue::peek_time`] take `&self`. A live-event counter makes
//! [`EventQueue::len`] O(1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// Packs the slab slot and its generation; ids from popped or cancelled
/// events go stale and can never affect a later event that reuses the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId((gen as u64) << 32 | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Per-slot bookkeeping. A slot is owned by exactly one heap entry from
/// `schedule` until that entry leaves the heap (pop or tombstone drain);
/// only then is the slot recycled, with a bumped generation.
struct Slot {
    gen: u32,
    cancelled: bool,
}

/// A time-ordered queue of events with stable tie-breaking and cancellation.
///
/// ```
/// use vcabench_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "second");
/// let early = q.schedule(SimTime::from_secs(1), "first");
/// q.cancel(early);
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Pending non-cancelled events.
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].cancelled = false;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot count fits u32");
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                });
                slot
            }
        };
        self.live += 1;
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Scheduled {
            at,
            seq,
            slot,
            payload,
        });
        EventId::new(slot, gen)
    }

    /// Cancel a pending event. Returns true if the event was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot()) else {
            return false;
        };
        if slot.gen != id.gen() || slot.cancelled {
            return false;
        }
        slot.cancelled = true;
        self.live -= 1;
        self.drain_tombstones();
        true
    }

    /// Time of the next (non-cancelled) event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The heap top is never a tombstone (see `drain_tombstones`).
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.release(s.slot);
        self.live -= 1;
        self.drain_tombstones();
        Some((s.at, s.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Recycle a slot whose heap entry was just removed.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// Restore the invariant that the heap top is live: drop cancelled
    /// entries until a live one (or nothing) is on top. Amortized O(1) —
    /// every drained entry was pushed exactly once.
    fn drain_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if !self.slots[top.slot as usize].cancelled {
                break;
            }
            let s = self.heap.pop().expect("peeked");
            self.release(s.slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        let base = SimTime::from_secs(10);
        q.schedule(base, 0);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        q.schedule(base, 1);
        q.schedule(base + SimDuration::from_micros(1), 2);
        q.schedule(base, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn peek_then_pop_agree() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(a);
        while let Some(t) = q.peek_time() {
            let (popped_t, _) = q.pop().expect("peek saw an event");
            assert_eq!(popped_t, t, "peek_time and pop must agree");
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_id_cannot_cancel_a_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        // "b" reuses a's slot with a bumped generation.
        let b = q.schedule(SimTime::from_secs(2), "b");
        assert!(!q.cancel(a), "stale id must not cancel the new occupant");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_cancellations_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_secs(i), i))
            .collect();
        assert_eq!(q.len(), 10);
        for id in &ids[..5] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 5);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 5);
        assert!(q.is_empty());
    }
}
