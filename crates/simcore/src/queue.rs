//! Deterministic event queue.
//!
//! Events carry an arbitrary payload `E` and fire at a [`SimTime`]. Ties are
//! broken by insertion order (a monotonically increasing sequence number), so
//! the pop order is a total order that does not depend on heap internals —
//! a prerequisite for reproducible simulations.
//!
//! Scheduled events can be cancelled by [`EventId`]; cancellation is lazy
//! (tombstoned) and O(1).

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of events with stable tie-breaking and cancellation.
///
/// ```
/// use vcabench_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "second");
/// let early = q.schedule(SimTime::from_secs(1), "first");
/// q.cancel(early);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// seq -> cancelled flag for still-pending events.
    live: HashMap<u64, bool>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: HashMap::new(),
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq, false);
        self.heap.push(Scheduled { at, seq, payload });
        EventId(seq)
    }

    /// Cancel a pending event. Returns true if the event was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.live.entry(id.0) {
            Entry::Occupied(mut e) => {
                let was_cancelled = *e.get();
                *e.get_mut() = true;
                !was_cancelled
            }
            Entry::Vacant(_) => false,
        }
    }

    /// Time of the next (non-cancelled) event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let s = self.heap.pop()?;
        self.live.remove(&s.seq);
        Some((s.at, s.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.values().filter(|&&c| !c).count()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.values().all(|&c| c)
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.get(&top.seq).copied().unwrap_or(true) {
                let s = self.heap.pop().expect("peeked");
                self.live.remove(&s.seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "x");
        q.schedule(SimTime::from_secs(2), "y");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::ZERO, ());
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn interleaved_schedule_pop_is_stable() {
        let mut q = EventQueue::new();
        let base = SimTime::from_secs(10);
        q.schedule(base, 0);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        q.schedule(base, 1);
        q.schedule(base + SimDuration::from_micros(1), 2);
        q.schedule(base, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }
}
