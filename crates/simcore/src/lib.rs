//! # vcabench-simcore
//!
//! Deterministic discrete-event simulation engine underpinning vcabench, the
//! reproduction of *"Measuring the Performance and Network Utilization of
//! Popular Video Conferencing Applications"* (IMC 2021).
//!
//! The engine is intentionally minimal and synchronous: a virtual clock
//! ([`SimTime`]), a total-ordered event queue ([`EventQueue`]), and seeded,
//! fork-able randomness ([`SimRng`]). Higher layers (the network simulator,
//! transports, VCA models) define their own event payload types and drive a
//! single queue; there is no async runtime and no wall-clock dependence, so
//! every experiment is exactly reproducible from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod observe;
pub mod queue;
pub mod rng;
pub mod time;

pub use observe::{Invariant, InvariantLog, MonotonicClock, SimObserver, Violation};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use time::{transmission_time, SimDuration, SimTime};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping must yield a non-decreasing time sequence regardless of
        /// the schedule order, and ties must preserve insertion order.
        #[test]
        fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((at, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(idx > lidx, "tie must keep insertion order");
                    }
                }
                last = Some((at, idx));
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn queue_cancel_subset(
            times in proptest::collection::vec(0u64..1_000, 1..100),
            mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let ids: Vec<_> = times.iter().enumerate()
                .map(|(i, t)| (i, q.schedule(SimTime::from_micros(*t), i)))
                .collect();
            let mut kept = Vec::new();
            for (i, id) in &ids {
                if mask.get(*i).copied().unwrap_or(false) {
                    q.cancel(*id);
                } else {
                    kept.push(*i);
                }
            }
            let mut popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, i)| i).collect();
            popped.sort_unstable();
            kept.sort_unstable();
            prop_assert_eq!(popped, kept);
        }

        /// Time arithmetic: (t + d) - t == d for all in-range values.
        #[test]
        fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
            let t = SimTime::from_micros(t);
            let d = SimDuration::from_micros(d);
            prop_assert_eq!((t + d) - t, d);
        }

        /// transmission_time never lets a link exceed its configured rate:
        /// bytes*8 / duration <= rate (duration rounds up).
        #[test]
        fn transmission_time_never_exceeds_rate(bytes in 1usize..65_536, rate_kbps in 1u64..1_000_000) {
            let rate = rate_kbps as f64 * 1_000.0;
            let d = transmission_time(bytes, rate);
            let implied = bytes as f64 * 8.0 / d.as_secs_f64();
            // Allow a sliver of tolerance for the us quantization at huge rates.
            prop_assert!(implied <= rate * 1.001, "implied {implied} > rate {rate}");
        }
    }
}
