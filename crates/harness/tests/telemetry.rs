//! End-to-end telemetry: traced runs emit the paper-relevant events, and
//! traced campaigns are byte-identical across worker counts.

use std::collections::BTreeMap;
use std::path::PathBuf;

use vcabench_campaign::{
    content_hash, Axes, CampaignSpec, ScenarioSpec, ScenarioTemplate, SeedAxis, TwoPartySpec,
};
use vcabench_harness::{run_campaign_cached_traced, run_spec_traced};
use vcabench_netsim::RateProfile;
use vcabench_telemetry::validate_jsonl;
use vcabench_vca::VcaKind;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vcabench-telemetry-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shaped_zoom(seed: u64) -> ScenarioSpec {
    ScenarioSpec::TwoParty(TwoPartySpec {
        kind: VcaKind::Zoom,
        up: RateProfile::constant_mbps(0.5),
        down: RateProfile::constant_mbps(1000.0),
        duration_secs: 20.0,
        seed,
        knobs: None,
    })
}

#[test]
fn traced_shaped_zoom_emits_drop_cc_and_fec_events() {
    let dir = temp_dir("zoom");
    let spec = shaped_zoom(1);
    run_spec_traced("shaped_zoom_s1", &spec, &dir);

    let jsonl = std::fs::read_to_string(dir.join("shaped_zoom_s1.events.jsonl")).unwrap();
    let counts: BTreeMap<String, u64> = validate_jsonl(&jsonl).expect("trace validates");
    // A Zoom call squeezed into 0.5 Mbps must show congestion evidence:
    // queue drops, FBRA state transitions, and FEC-ratio moves.
    assert!(
        counts.get("packet_drop").copied().unwrap_or(0) > 0,
        "{counts:?}"
    );
    assert!(
        counts.get("cc_state").copied().unwrap_or(0) > 0,
        "{counts:?}"
    );
    assert!(
        counts.get("fec_ratio").copied().unwrap_or(0) > 0,
        "{counts:?}"
    );
    assert!(
        jsonl.contains("\"controller\":\"fbra\""),
        "Zoom's controller is FBRA"
    );

    // The manifest ties the trace back to its cache entry.
    let manifest = std::fs::read_to_string(dir.join("shaped_zoom_s1.manifest.json")).unwrap();
    let v: serde_json::Value = serde_json::from_str(&manifest).unwrap();
    assert_eq!(v.get("schema").and_then(|s| s.as_u64()), Some(1));
    assert_eq!(
        v.get("spec_hash").and_then(|s| s.as_str()),
        Some(content_hash(&spec).as_str())
    );
    assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(1));
    let total: u64 = counts.values().sum();
    assert_eq!(v.get("events_total").and_then(|s| s.as_u64()), Some(total));

    // The series CSV has the two-party header and one row per 100 ms bin.
    let csv = std::fs::read_to_string(dir.join("shaped_zoom_s1.series.csv")).unwrap();
    assert!(csv.starts_with("t_secs,up_mbps,down_mbps\n"));
    assert_eq!(csv.lines().count(), 1 + 200, "20 s of 100 ms bins");

    let _ = std::fs::remove_dir_all(&dir);
}

fn small_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "trace_jobs".to_string(),
        scenarios: vec![ScenarioTemplate {
            label: Some("shaped".to_string()),
            base: shaped_zoom(1),
            axes: Some(Axes {
                kinds: Some(vec![VcaKind::Meet, VcaKind::Zoom]),
                up_mbps: None,
                down_mbps: None,
                capacity_mbps: None,
                competitors: None,
                seeds: Some(SeedAxis::Range { base: 1, count: 1 }),
            }),
        }],
    }
}

fn dir_contents(dir: &PathBuf) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        );
    }
    out
}

#[test]
fn traced_campaign_is_byte_identical_across_jobs_and_cache_state() {
    let campaign = small_campaign();
    let (out1, trace1) = (temp_dir("out1"), temp_dir("trace1"));
    let (out4, trace4) = (temp_dir("out4"), temp_dir("trace4"));

    let s1 = run_campaign_cached_traced(&campaign, 1, &out1, false, &trace1).unwrap();
    let s4 = run_campaign_cached_traced(&campaign, 4, &out4, false, &trace4).unwrap();
    assert_eq!(s1.total, 2);
    assert_eq!(s1.results, s4.results);

    let c1 = dir_contents(&trace1);
    let c4 = dir_contents(&trace4);
    assert_eq!(c1.len(), 2 * 3, "three artifacts per run");
    assert_eq!(c1, c4, "trace artifacts must not depend on --jobs");

    // A fully cached re-run into a fresh trace dir backfills identical
    // artifacts even though no run is recomputed for the result store.
    let trace_back = temp_dir("trace-backfill");
    let s_cached = run_campaign_cached_traced(&campaign, 2, &out1, false, &trace_back).unwrap();
    assert_eq!(s_cached.computed, 0, "all runs served from cache");
    assert_eq!(dir_contents(&trace_back), c1);

    for d in [&out1, &trace1, &out4, &trace4, &trace_back] {
        let _ = std::fs::remove_dir_all(d);
    }
}
