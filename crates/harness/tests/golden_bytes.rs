//! Golden-trace byte identity for the optimized engine.
//!
//! Runs every scenario of `examples/specs/trace_smoke.json` through the
//! traced campaign path and asserts the emitted `events.jsonl` bytes are
//! identical to the fixture blessed on the pre-optimization engine. The
//! raw traces are megabytes each, so the fixture pins a digest (the result
//! store's double-FNV idiom) plus byte and line counts per run.
//!
//! Engine optimizations must never change a single simulated byte; if a
//! deliberate behavior change lands, re-bless with:
//!
//! ```text
//! VCABENCH_BLESS=1 cargo test -p vcabench-harness --test golden_bytes
//! ```

use std::path::PathBuf;

use vcabench_campaign::CampaignSpec;
use vcabench_harness::run_spec_traced;

const FIXTURE: &str = "tests/golden/trace_smoke.digests.txt";

fn fnv1a(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 128-bit digest in the style of the campaign result store.
fn digest(bytes: &[u8]) -> String {
    let h1 = fnv1a(0xcbf2_9ce4_8422_2325, bytes);
    let h2 = fnv1a(0x6c62_272e_07bb_0142, bytes);
    format!("{h1:016x}{h2:016x}")
}

fn manifest_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn trace_smoke_events_are_byte_identical_to_blessed_fixture() {
    let spec_path = manifest_path("../../examples/specs/trace_smoke.json");
    let text = std::fs::read_to_string(&spec_path).expect("read trace_smoke.json");
    let campaign = CampaignSpec::from_json(&text).expect("parse trace_smoke.json");
    let runs = campaign.expand().expect("expand trace_smoke.json");
    assert!(!runs.is_empty(), "smoke campaign expands to runs");

    let trace_dir = std::env::temp_dir().join(format!("vcabench-golden-{}", std::process::id()));
    std::fs::create_dir_all(&trace_dir).unwrap();

    let mut lines = Vec::new();
    for run in &runs {
        run_spec_traced(&run.label, &run.spec, &trace_dir);
        let path = trace_dir.join(format!("{}.events.jsonl", run.label));
        let bytes = std::fs::read(&path).expect("trace artifact written");
        let line_count = bytes.iter().filter(|&&b| b == b'\n').count();
        lines.push(format!(
            "{} {} {} {}",
            run.label,
            digest(&bytes),
            bytes.len(),
            line_count
        ));
    }
    let _ = std::fs::remove_dir_all(&trace_dir);
    let mut current = lines.join("\n");
    current.push('\n');

    let fixture_path = manifest_path(FIXTURE);
    if std::env::var("VCABENCH_BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(fixture_path.parent().unwrap()).unwrap();
        std::fs::write(&fixture_path, &current).unwrap();
        eprintln!("blessed {}", fixture_path.display());
        return;
    }
    let blessed = std::fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with VCABENCH_BLESS=1 to create it",
            fixture_path.display()
        )
    });
    assert_eq!(
        current, blessed,
        "events.jsonl bytes changed — the engine no longer simulates the same \
         byte stream; if intentional, re-bless via VCABENCH_BLESS=1"
    );
}
