//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--quick] [--json <path>]
//!
//! experiments:
//!   table2   unconstrained utilization
//!   fig1     static shaping sweeps (a: uplink, b: downlink, c: browser/native)
//!   fig2     encoding parameters vs capacity (Meet, Teams-Chrome)
//!   fig3     freeze ratio and FIR counts
//!   fig4     uplink disruptions (timelines + TTR)      [also runs fig5, fig6]
//!   fig8     VCA vs VCA shares (also fig10)
//!   fig9     VCA vs VCA timelines (Zoom-Zoom, Meet-Meet @0.5; fig11 @1.0)
//!   fig12    VCA vs TCP (iPerf3)                       [also runs fig13]
//!   fig14    Zoom vs Netflix
//!   fig15    call modalities
//!   all      everything above
//! ```
//!
//! `--quick` uses reduced presets (coarser sweeps, fewer repetitions);
//! `--json <path>` additionally writes machine-readable results.

use std::io::Write;

use vcabench_harness::experiments::*;
use vcabench_vca::VcaKind;

struct Args {
    experiment: String,
    quick: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut experiment = String::from("all");
    let mut quick = false;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = it.next(),
            "--help" | "-h" => {
                println!("usage: repro <table2|fig1|fig2|fig3|fig4|fig8|fig9|fig12|fig14|fig15|ext|all> [--quick] [--json <path>]");
                std::process::exit(0);
            }
            other => experiment = other.to_string(),
        }
    }
    Args {
        experiment,
        quick,
        json,
    }
}

fn emit_json(
    json: &mut Option<serde_json::Map<String, serde_json::Value>>,
    key: &str,
    v: impl serde::Serialize,
) {
    if let Some(map) = json.as_mut() {
        map.insert(
            key.to_string(),
            serde_json::to_value(v).expect("serializable result"),
        );
    }
}

fn main() {
    let args = parse_args();
    let mut json_out = args.json.as_ref().map(|_| serde_json::Map::new());
    let all = args.experiment == "all";
    let want = |name: &str| all || args.experiment == name;
    let mut matched = false;

    if want("table2") {
        matched = true;
        let cfg = if args.quick {
            table2::Table2Config::quick()
        } else {
            table2::Table2Config::default()
        };
        let r = table2::run(&cfg);
        table2::print(&r);
        emit_json(&mut json_out, "table2", &r);
        println!();
    }
    if want("fig1") {
        matched = true;
        let cfg = if args.quick {
            fig1::Fig1Config::quick()
        } else {
            fig1::Fig1Config::default()
        };
        let r = fig1::run(&cfg);
        fig1::print(&r);
        emit_json(&mut json_out, "fig1", &r);
        println!();
    }
    if want("fig2") {
        matched = true;
        let cfg = if args.quick {
            fig2::Fig2Config::quick()
        } else {
            fig2::Fig2Config::default()
        };
        let r = fig2::run(&cfg);
        fig2::print(&r);
        emit_json(&mut json_out, "fig2", &r);
        println!();
    }
    if want("fig3") {
        matched = true;
        let cfg = if args.quick {
            fig3::Fig3Config::quick()
        } else {
            fig3::Fig3Config::default()
        };
        let r = fig3::run(&cfg);
        fig3::print(&r);
        emit_json(&mut json_out, "fig3", &r);
        println!();
    }
    if want("fig4") || want("fig5") || want("fig6") {
        matched = true;
        let cfg = if args.quick {
            fig4_5_6::DisruptionConfig::quick()
        } else {
            fig4_5_6::DisruptionConfig::default()
        };
        let r = fig4_5_6::run(&cfg);
        fig4_5_6::print(&r);
        emit_json(&mut json_out, "fig4_5_6", &r);
        println!();
    }
    if want("fig8") || want("fig10") {
        matched = true;
        let cfg = if args.quick {
            fig8_to_11::VcaCompetitionConfig::quick()
        } else {
            fig8_to_11::VcaCompetitionConfig::default()
        };
        let r = fig8_to_11::run(&cfg);
        fig8_to_11::print(&r);
        emit_json(&mut json_out, "fig8_10", &r);
        println!();
    }
    if want("fig9") || want("fig11") {
        matched = true;
        println!("Fig 9/11: single-run competition timelines (summaries)");
        for (a, b, cap, label) in [
            (VcaKind::Zoom, VcaKind::Zoom, 0.5, "fig9a Zoom-Zoom @0.5"),
            (VcaKind::Meet, VcaKind::Meet, 0.5, "fig9b Meet-Meet @0.5"),
            (VcaKind::Teams, VcaKind::Zoom, 1.0, "fig11 Teams-Zoom @1.0"),
        ] {
            let t = fig8_to_11::run_timeline(a, b, cap, 91);
            let from = vcabench_simcore::SimTime::from_secs(90);
            let to = vcabench_simcore::SimTime::from_secs(150);
            let iu = vcabench_harness::TwoPartyOutcome::rate_between(&t.inc_up, from, to);
            let cu = vcabench_harness::TwoPartyOutcome::rate_between(&t.comp_up, from, to);
            let id = vcabench_harness::TwoPartyOutcome::rate_between(&t.inc_down, from, to);
            let cd = vcabench_harness::TwoPartyOutcome::rate_between(&t.comp_down, from, to);
            println!("  {label}: up {iu:.2} vs {cu:.2} | down {id:.2} vs {cd:.2}");
            print!(
                "{}",
                vcabench_harness::render::timeline(
                    "incumbent up",
                    &t.inc_up,
                    cap,
                    Some(30.0),
                    Some(150.0)
                )
            );
            print!(
                "{}",
                vcabench_harness::render::timeline(
                    "competitor up",
                    &t.comp_up,
                    cap,
                    Some(30.0),
                    Some(150.0)
                )
            );
            emit_json(&mut json_out, label, &t);
        }
        println!();
    }
    if want("fig12") || want("fig13") {
        matched = true;
        let cfg = if args.quick {
            fig12_13::TcpCompetitionConfig::quick()
        } else {
            fig12_13::TcpCompetitionConfig::default()
        };
        let r = fig12_13::run(&cfg);
        fig12_13::print(&r);
        let f13 = fig12_13::run_fig13(131);
        println!(
            "Fig 13: Zoom probe burst vs iPerf3 at 2 Mbps: burst at {:?} s",
            f13.burst_at_secs
        );
        print!(
            "{}",
            vcabench_harness::render::timeline(
                "Zoom downlink",
                &f13.zoom,
                1.6,
                Some(30.0),
                Some(150.0)
            )
        );
        print!(
            "{}",
            vcabench_harness::render::timeline(
                "iPerf3 downlink",
                &f13.iperf,
                1.6,
                Some(30.0),
                Some(150.0)
            )
        );
        emit_json(&mut json_out, "fig12", &r);
        emit_json(&mut json_out, "fig13", &f13);
        println!();
    }
    if want("fig14") {
        matched = true;
        let cfg = if args.quick {
            fig14::Fig14Config::quick()
        } else {
            fig14::Fig14Config::default()
        };
        let r = fig14::run(&cfg);
        fig14::print(&r);
        emit_json(&mut json_out, "fig14", &r);
        println!();
    }
    if want("ext") {
        matched = true;
        let cfg = if args.quick {
            ext::ImpairmentsConfig::quick()
        } else {
            ext::ImpairmentsConfig::default()
        };
        let r = ext::impairments::run(&cfg);
        ext::impairments::print(&r);
        emit_json(&mut json_out, "ext_impairments", &r);
        let a = ext::ablation::run(3);
        ext::ablation::print(&a);
        emit_json(&mut json_out, "ext_ablation", &a);
        println!();
    }
    if want("fig15") {
        matched = true;
        let cfg = if args.quick {
            fig15::Fig15Config::quick()
        } else {
            fig15::Fig15Config::default()
        };
        let r = fig15::run(&cfg);
        fig15::print(&r);
        emit_json(&mut json_out, "fig15", &r);
        println!();
    }

    if !matched {
        eprintln!("unknown experiment '{}'; try --help", args.experiment);
        std::process::exit(2);
    }
    if let (Some(path), Some(map)) = (args.json, json_out) {
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(
            serde_json::to_string_pretty(&serde_json::Value::Object(map))
                .expect("serialize")
                .as_bytes(),
        )
        .expect("write json output");
        println!("wrote {path}");
    }
}
