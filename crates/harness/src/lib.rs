//! # vcabench-harness
//!
//! The experiment harness: for every table and figure in *"Measuring the
//! Performance and Network Utilization of Popular Video Conferencing
//! Applications"* (IMC 2021), a module that regenerates it on the simulated
//! substrate — workload, parameter sweep, statistics, and a text rendering
//! of the same rows/series the paper reports.
//!
//! The `repro` binary (in `vcabench-bench`, which sits above this crate)
//! drives everything:
//! `cargo run --release -p vcabench-bench --bin repro -- all --quick`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod fingerprint;
pub mod infer;
pub mod observe;
pub mod profile;
pub mod render;
pub mod run;
pub mod telemetry;

pub use campaign::{
    run_campaign, run_campaign_cached, run_spec, run_spec_metered, run_spec_telemetry,
};
pub use fingerprint::{
    build_identify_report, family_of, fingerprint_suite, fit_centroid, fit_kind_models,
    fp_taps_for, identify_report_json, infer_identify_suite, render_identify_report,
    render_routed_report, routed_report, routed_report_json, run_spec_fingerprint,
    run_spec_fingerprint_metered, run_spec_infer_identify, spec_family, spec_kind, training_suite,
    IdentifyReport, LabeledFingerprint, RoutedReport, DEFAULT_MAX_ROUTED_DELTA,
    DEFAULT_MIN_ID_ACCURACY,
};
pub use infer::{
    build_report, fit_gbt, fit_model, infer_report_json, infer_suite, join_windows, model_registry,
    render_infer_report, run_spec_infer, run_spec_infer_metered, score, taps_for, InferOutcome,
    InferReport, WindowRow, DEFAULT_MAX_BITRATE_ERR, DEFAULT_MAX_BITRATE_ERR_GBT,
    DEFAULT_MIN_FREEZE_RECALL,
};
pub use observe::{
    gate_failures, observe_report_json, observe_suite, pinned_disruption_suite,
    render_observe_report, run_spec_observe, run_spec_observe_metered, ObserveReport, ObserveRun,
    ObserveScenario, OBSERVE_REPORT_SCHEMA,
};
pub use profile::{
    profile_engine, profile_json, profile_two_party, render_profile, PROFILE_SCHEMA,
};
pub use run::{
    run_competition, run_competition_metered, run_multiparty, run_multiparty_metered,
    run_two_party, run_two_party_metered, run_two_party_with, CompetitionConfig,
    CompetitionOutcome, Competitor, MultipartyOutcome, TwoPartyOutcome,
};
pub use telemetry::{run_campaign_cached_traced, run_spec_traced};
