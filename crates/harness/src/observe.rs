//! Observability harness: run scenarios with the streaming diagnoser
//! attached, build the suite report, and gate the pinned disruption
//! scenarios.
//!
//! This is the harness half of `vcabench-observe` (see that crate for
//! the span deriver, anomaly detector, and diff engine). It attaches a
//! [`SpanBuilder`] to live runs exactly like the inference and
//! fingerprinting harnesses attach their banks, diagnoses every run,
//! and — for the pinned suite — asserts the seeded causal story: every
//! disrupted run must contain a freeze explained by the complete
//! disruption → queue-buildup → freeze chain, and every unconstrained
//! run must diagnose perfectly clean. Everything is a pure function of
//! the specs, so reports are byte-identical for any `--jobs` value.

use std::cell::RefCell;
use std::rc::Rc;

use serde_json::{Map, Value};
use vcabench_campaign::{run_indexed, ScenarioSpec, TwoPartySpec};
use vcabench_netsim::{EngineStats, RateProfile};
use vcabench_observe::{diagnose, Diagnosis, ObserveConfig, SpanBuilder};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_telemetry::Telemetry;
use vcabench_vca::VcaKind;

use crate::infer::run_spec_tapped;

/// Schema tag of the suite-level observe report artifact.
pub const OBSERVE_REPORT_SCHEMA: &str = "vcabench-observe-report/v1";

/// One named run to diagnose, with the pinned suite's expectation
/// attached: `Some(true)` = seeded disruption (the causal chain must be
/// found), `Some(false)` = unconstrained (zero anomalies allowed),
/// `None` = no expectation (campaign-spec mode, report only).
#[derive(Debug, Clone)]
pub struct ObserveScenario {
    /// Run label.
    pub name: String,
    /// Gate expectation.
    pub expect: Option<bool>,
    /// The scenario to run.
    pub spec: ScenarioSpec,
}

/// One diagnosed run of a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveRun {
    /// Run label.
    pub name: String,
    /// Gate expectation carried over from the scenario.
    pub expect: Option<bool>,
    /// The full diagnosis.
    pub diagnosis: Diagnosis,
}

/// The suite report: every run diagnosed, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveReport {
    /// Diagnosed runs.
    pub runs: Vec<ObserveRun>,
}

/// Run one scenario with a [`SpanBuilder`] attached (streaming, online —
/// no event log is kept) and diagnose the derived timeline.
pub fn run_spec_observe(spec: &ScenarioSpec, cfg: &ObserveConfig) -> Diagnosis {
    run_spec_observe_metered(spec, cfg).0
}

/// Like [`run_spec_observe`], additionally returning the engine's
/// counters (the `repro bench` observe-stage scenario reads these).
pub fn run_spec_observe_metered(
    spec: &ScenarioSpec,
    cfg: &ObserveConfig,
) -> (Diagnosis, EngineStats) {
    let builder = Rc::new(RefCell::new(SpanBuilder::new(cfg.clone())));
    let tel = Telemetry::attach(builder.clone());
    let (_stats, duration, engine) = run_spec_tapped(spec, &tel);
    drop(tel);
    let builder = Rc::try_unwrap(builder)
        .expect("run finished; the span builder has a sole owner")
        .into_inner();
    (diagnose(builder.finish(duration), cfg), engine)
}

/// The pinned disruption suite: for each VCA family, one two-party run
/// whose uplink collapses mid-call (3 Mbps → 0.3 Mbps) and one fully
/// unconstrained control run. `quick` shortens every run for smoke use;
/// both variants seed the same causal chain.
pub fn pinned_disruption_suite(quick: bool) -> Vec<ObserveScenario> {
    let (total_secs, start_secs, dip_secs) = if quick {
        (30.0, 8.0, 10.0)
    } else {
        (60.0, 20.0, 15.0)
    };
    let kinds = [VcaKind::Meet, VcaKind::Zoom, VcaKind::Teams];
    let mut suite = Vec::new();
    for kind in kinds {
        let up = RateProfile::disruption(
            3.0e6,
            0.3e6,
            SimTime::from_secs_f64(start_secs),
            SimDuration::from_secs_f64(dip_secs),
        );
        suite.push(ObserveScenario {
            name: format!("disrupted_{}", kind.name().to_lowercase()),
            expect: Some(true),
            spec: ScenarioSpec::TwoParty(TwoPartySpec {
                kind,
                up,
                down: RateProfile::constant_mbps(1000.0),
                duration_secs: total_secs,
                seed: 1,
                knobs: None,
            }),
        });
    }
    for kind in kinds {
        suite.push(ObserveScenario {
            name: format!("unconstrained_{}", kind.name().to_lowercase()),
            expect: Some(false),
            spec: crate::campaign::unshaped_two_party(kind, total_secs, 1),
        });
    }
    suite
}

/// Diagnose a suite on `jobs` workers. Output order and bytes are
/// independent of `jobs`.
pub fn observe_suite(
    scenarios: &[ObserveScenario],
    cfg: &ObserveConfig,
    jobs: usize,
) -> ObserveReport {
    let runs = run_indexed(scenarios.len(), jobs, |i| ObserveRun {
        name: scenarios[i].name.clone(),
        expect: scenarios[i].expect,
        diagnosis: run_spec_observe(&scenarios[i].spec, cfg),
    });
    ObserveReport { runs }
}

/// Evaluate the gate: disrupted runs must contain at least one freeze
/// carrying the complete disruption → queue-buildup → freeze chain;
/// unconstrained runs must have zero anomalies and zero freezes. Runs
/// without an expectation are not gated. Returns one message per
/// failure, empty on pass.
pub fn gate_failures(report: &ObserveReport) -> Vec<String> {
    let mut failures = Vec::new();
    for run in &report.runs {
        let h = &run.diagnosis.health;
        match run.expect {
            Some(true) if h.chains_complete == 0 => {
                failures.push(format!(
                    "{}: seeded disruption not diagnosed — {} freezes, {} with the \
                     complete disruption->queue-buildup->freeze chain",
                    run.name, h.freezes, h.chains_complete
                ));
            }
            Some(false) if h.anomalies != 0 || h.freezes != 0 => {
                failures.push(format!(
                    "{}: expected a clean run, found {} anomalies and {} freezes",
                    run.name, h.anomalies, h.freezes
                ));
            }
            _ => {}
        }
    }
    failures
}

/// Render the suite report as deterministic text.
pub fn render_observe_report(report: &ObserveReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("observe: {} runs diagnosed\n", report.runs.len()));
    for run in &report.runs {
        let h = &run.diagnosis.health;
        let classes: Vec<String> = h
            .by_class
            .iter()
            .map(|(class, n)| format!("{class}:{n}"))
            .collect();
        s.push_str(&format!(
            "  {:<22} grade={:<8} score={:<3} spans={:<3} anomalies={} [{}] \
             freezes={} ({:.1}s) chains={}/{}\n",
            run.name,
            h.grade,
            h.score,
            h.spans,
            h.anomalies,
            classes.join(" "),
            h.freezes,
            h.freeze_us as f64 * 1e-6,
            h.chains_complete,
            h.freezes,
        ));
        for ex in &run.diagnosis.explanations {
            s.push_str(&format!(
                "    freeze @ {:.2}s-{:.2}s client {} <- {} verdict={} contributors={}{}\n",
                ex.start.as_secs_f64(),
                ex.end.as_secs_f64(),
                ex.client,
                ex.sender,
                ex.verdict,
                ex.contributors.len(),
                if ex.chain_complete {
                    " chain=complete"
                } else {
                    ""
                },
            ));
        }
        for a in &run.diagnosis.anomalies {
            s.push_str(&format!(
                "    {} [{}] @ {:.2}s-{:.2}s {}: {}\n",
                a.class,
                a.severity.name(),
                a.start.as_secs_f64(),
                a.end.as_secs_f64(),
                a.subject,
                a.detail,
            ));
        }
    }
    s
}

/// Serialize the suite report as a stable JSON artifact (fixed key
/// order, pretty-printed, trailing newline).
pub fn observe_report_json(report: &ObserveReport) -> String {
    let mut root = Map::new();
    root.insert(
        "schema".to_string(),
        Value::String(OBSERVE_REPORT_SCHEMA.to_string()),
    );
    root.insert(
        "runs".to_string(),
        Value::Array(
            report
                .runs
                .iter()
                .map(|run| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(run.name.clone()));
                    o.insert(
                        "expect_disruption".to_string(),
                        match run.expect {
                            Some(b) => Value::Bool(b),
                            None => Value::Null,
                        },
                    );
                    o.insert("diagnosis".to_string(), run.diagnosis.to_json_value());
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    let mut text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable report");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::unshaped_two_party;
    use vcabench_observe::diagnose_jsonl;
    use vcabench_telemetry::{events_jsonl, EventLog};

    fn disrupted_quick(kind: VcaKind) -> ScenarioSpec {
        pinned_disruption_suite(true)
            .into_iter()
            .find(|s| s.spec_kind() == kind && s.expect == Some(true))
            .expect("suite covers every kind")
            .spec
    }

    impl ObserveScenario {
        fn spec_kind(&self) -> VcaKind {
            match &self.spec {
                ScenarioSpec::TwoParty(s) => s.kind,
                other => panic!("pinned suite is two-party only: {other:?}"),
            }
        }
    }

    #[test]
    fn live_and_offline_diagnosis_are_identical() {
        let spec = disrupted_quick(VcaKind::Zoom);
        let cfg = ObserveConfig::default();
        let live = run_spec_observe(&spec, &cfg);
        // Offline: capture the full event log of an identical run, then
        // replay the JSONL export through a fresh builder.
        let (tel, log) = Telemetry::with_log(EventLog::unbounded());
        crate::campaign::run_spec_telemetry(&spec, &tel);
        let jsonl = events_jsonl(&log.borrow());
        let offline = diagnose_jsonl(&jsonl, &cfg, Some(live.timeline.end)).expect("replay");
        assert_eq!(live, offline);
        assert!(!live.timeline.spans.is_empty());
    }

    #[test]
    fn quick_disruption_run_carries_the_complete_chain() {
        let spec = disrupted_quick(VcaKind::Meet);
        let d = run_spec_observe(&spec, &ObserveConfig::default());
        assert!(d.health.freezes > 0, "disruption must freeze the call");
        assert!(
            d.health.chains_complete > 0,
            "chain not found; explanations: {:?}",
            d.explanations
        );
        assert!(
            d.anomalies.iter().any(|a| a.class == "sustained_queue"),
            "queue buildup expected"
        );
    }

    #[test]
    fn quick_unconstrained_run_is_clean() {
        let spec = unshaped_two_party(VcaKind::Teams, 30.0, 1);
        let d = run_spec_observe(&spec, &ObserveConfig::default());
        assert_eq!(d.health.grade, "healthy");
        assert_eq!(d.health.anomalies, 0);
        assert_eq!(d.health.freezes, 0);
        assert_eq!(d.health.score, 100);
    }

    #[test]
    fn suite_output_is_independent_of_jobs() {
        let scenarios: Vec<ObserveScenario> = vec![
            ObserveScenario {
                name: "disrupted_zoom".to_string(),
                expect: Some(true),
                spec: disrupted_quick(VcaKind::Zoom),
            },
            ObserveScenario {
                name: "clean_meet".to_string(),
                expect: Some(false),
                spec: unshaped_two_party(VcaKind::Meet, 12.0, 2),
            },
        ];
        let cfg = ObserveConfig::default();
        let one = observe_suite(&scenarios, &cfg, 1);
        let many = observe_suite(&scenarios, &cfg, 4);
        assert_eq!(one, many);
        assert_eq!(observe_report_json(&one), observe_report_json(&many));
        assert_eq!(render_observe_report(&one), render_observe_report(&many));
    }

    #[test]
    fn gate_flags_the_right_runs() {
        let clean = run_spec_observe(
            &unshaped_two_party(VcaKind::Meet, 10.0, 1),
            &ObserveConfig::default(),
        );
        let report = ObserveReport {
            runs: vec![
                ObserveRun {
                    name: "claims_disruption".to_string(),
                    expect: Some(true),
                    diagnosis: clean.clone(),
                },
                ObserveRun {
                    name: "claims_clean".to_string(),
                    expect: Some(false),
                    diagnosis: clean.clone(),
                },
                ObserveRun {
                    name: "ungated".to_string(),
                    expect: None,
                    diagnosis: clean,
                },
            ],
        };
        let failures = gate_failures(&report);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("claims_disruption:"));
    }

    #[test]
    fn pinned_suite_shape() {
        for quick in [false, true] {
            let suite = pinned_disruption_suite(quick);
            assert_eq!(suite.len(), 6);
            assert_eq!(suite.iter().filter(|s| s.expect == Some(true)).count(), 3);
            let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                names,
                [
                    "disrupted_meet",
                    "disrupted_zoom",
                    "disrupted_teams",
                    "unconstrained_meet",
                    "unconstrained_zoom",
                    "unconstrained_teams",
                ]
            );
        }
    }
}
