//! Shared experiment runners: build a scenario, run it, extract the traces
//! and client statistics every table/figure needs.
//!
//! Each runner mirrors one of the paper's lab procedures (§2.2, §3–§6):
//! two-party calls under shaping profiles, the competition setup of Fig 7,
//! and multiparty calls. Runs are deterministic in their seed.

use vcabench_apps::{
    AbrServer, NetflixClient, NetflixSample, TcpSenderAgent, TcpSinkAgent, YoutubeClient,
};
use vcabench_netsim::{topology, EngineStats, FlowId, Network, NodeId, RateProfile};
use vcabench_simcore::{SimDuration, SimRng, SimTime};
use vcabench_stats::time_to_recovery;
use vcabench_telemetry::Telemetry;
use vcabench_transport::Wire;
use vcabench_vca::{wire_call, StatsSample, VcaClient, VcaKind, ViewMode};

/// Clone one telemetry handle into the engine and every VCA client, so a
/// single recorder sees packet-level and client-level events interleaved
/// in simulation order.
fn attach_telemetry(net: &mut Network<Wire>, tel: &Telemetry, clients: &[NodeId]) {
    if !tel.enabled() {
        return;
    }
    net.set_telemetry(tel.clone());
    for &node in clients {
        net.agent_mut::<VcaClient>(node).set_telemetry(tel.clone());
    }
}

/// Bin width of all bitrate series (matches `netsim::trace::DEFAULT_BIN`).
pub const BIN: SimDuration = SimDuration::from_millis(100);

/// Outcome of a two-party run.
#[derive(Debug, Clone)]
pub struct TwoPartyOutcome {
    /// Call duration simulated.
    pub duration: SimTime,
    /// C1 uplink bitrate series (Mbps per 100 ms bin), all flows on the link.
    pub up_series: Vec<f64>,
    /// C1 downlink bitrate series.
    pub down_series: Vec<f64>,
    /// C2 uplink bitrate series (Fig 6 needs the counter-party's sender).
    pub c2_up_series: Vec<f64>,
    /// C1's per-second WebRTC-style samples.
    pub c1_stats: Vec<StatsSample>,
    /// C2's per-second samples.
    pub c2_stats: Vec<StatsSample>,
    /// FIRs C1 received about its upstream video (Fig 3b).
    pub c1_firs_received: u64,
    /// C1's cumulative freeze time on received video.
    pub c1_freeze_time: SimDuration,
    /// Frames C1 decoded from C2.
    pub c1_frames_decoded: u64,
}

impl TwoPartyOutcome {
    /// Average Mbps of a series over `[from, to)`.
    pub fn rate_between(series: &[f64], from: SimTime, to: SimTime) -> f64 {
        let lo = (from.as_micros() / BIN.as_micros()) as usize;
        let hi = ((to.as_micros() / BIN.as_micros()) as usize).min(series.len());
        if hi <= lo {
            return 0.0;
        }
        series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }

    /// Median Mbps of a series over `[from, to)` (the paper's Fig 1 metric).
    pub fn median_between(series: &[f64], from: SimTime, to: SimTime) -> f64 {
        let lo = (from.as_micros() / BIN.as_micros()) as usize;
        let hi = ((to.as_micros() / BIN.as_micros()) as usize).min(series.len());
        if hi <= lo {
            return 0.0;
        }
        vcabench_stats::median(&series[lo..hi])
    }

    /// Time to recovery per the paper's §4 definition, on the chosen series.
    pub fn ttr(
        &self,
        series: &[f64],
        disruption_start: SimTime,
        disruption_end: SimTime,
    ) -> vcabench_stats::Ttr {
        time_to_recovery(series, BIN, disruption_start, disruption_end)
    }
}

/// Run a two-party call of `kind` with the given shaping profiles on C1's
/// access link.
pub fn run_two_party(
    kind: VcaKind,
    up: RateProfile,
    down: RateProfile,
    duration: SimDuration,
    seed: u64,
) -> TwoPartyOutcome {
    run_two_party_with(kind, up, down, duration, seed, |_| {})
}

/// Like [`run_two_party`], applying `configure` to C1's client before the
/// simulation starts (used by ablation experiments to flip model knobs).
pub fn run_two_party_with(
    kind: VcaKind,
    up: RateProfile,
    down: RateProfile,
    duration: SimDuration,
    seed: u64,
    configure: impl FnOnce(&mut VcaClient),
) -> TwoPartyOutcome {
    run_two_party_telemetry(
        kind,
        up,
        down,
        duration,
        seed,
        &Telemetry::disabled(),
        configure,
    )
}

/// Like [`run_two_party_with`], recording trace events through `tel`.
pub fn run_two_party_telemetry(
    kind: VcaKind,
    up: RateProfile,
    down: RateProfile,
    duration: SimDuration,
    seed: u64,
    tel: &Telemetry,
    configure: impl FnOnce(&mut VcaClient),
) -> TwoPartyOutcome {
    run_two_party_metered(kind, up, down, duration, seed, tel, configure).0
}

/// Like [`run_two_party_telemetry`], additionally returning the engine's
/// throughput counters (the `repro bench` harness reads these).
pub fn run_two_party_metered(
    kind: VcaKind,
    up: RateProfile,
    down: RateProfile,
    duration: SimDuration,
    seed: u64,
    tel: &Telemetry,
    configure: impl FnOnce(&mut VcaClient),
) -> (TwoPartyOutcome, EngineStats) {
    let mut call = vcabench_vca::two_party_call(kind, up, down, seed);
    attach_telemetry(&mut call.net, tel, &call.handles.clients.clone());
    configure(call.net.agent_mut::<VcaClient>(call.topo.c1));
    let end = SimTime::ZERO + duration;
    call.net.run_until(end);
    let up_series = call
        .net
        .link(call.topo.c1_up)
        .traces
        .total()
        .series_mbps(end);
    let down_series = call
        .net
        .link(call.topo.c1_down)
        .traces
        .total()
        .series_mbps(end);
    let c2_up_series = call
        .net
        .link(call.topo.c2_up)
        .traces
        .total()
        .series_mbps(end);
    let engine = call.net.engine_stats();
    let c1: &VcaClient = call.net.agent(call.topo.c1);
    let c2: &VcaClient = call.net.agent(call.topo.c2);
    let outcome = TwoPartyOutcome {
        duration: end,
        up_series,
        down_series,
        c2_up_series,
        c1_stats: c1.stats.samples().to_vec(),
        c2_stats: c2.stats.samples().to_vec(),
        c1_firs_received: c1.firs_received,
        c1_freeze_time: c1
            .primary_freeze()
            .map(|f| f.freeze_time)
            .unwrap_or(SimDuration::ZERO),
        c1_frames_decoded: c1.frames_decoded_from(1),
    };
    (outcome, engine)
}

/// Which application competes with the incumbent VCA (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Competitor {
    /// A second VCA call.
    Vca(VcaKind),
    /// Bulk TCP upload through the bottleneck (iPerf3 client at F1).
    IperfUp,
    /// Bulk TCP download through the bottleneck (iPerf3 reverse mode).
    IperfDown,
    /// Netflix streaming at F1.
    Netflix,
    /// YouTube streaming at F1.
    Youtube,
}

/// Outcome of a competition run.
#[derive(Debug, Clone)]
pub struct CompetitionOutcome {
    /// Simulated duration.
    pub duration: SimTime,
    /// Incumbent C1 uplink series on the shared bottleneck.
    pub inc_up: Vec<f64>,
    /// Incumbent C1 downlink series on the shared bottleneck.
    pub inc_down: Vec<f64>,
    /// Competitor uplink series (data toward the WAN).
    pub comp_up: Vec<f64>,
    /// Competitor downlink series.
    pub comp_down: Vec<f64>,
    /// Netflix client samples, when the competitor is Netflix.
    pub netflix: Option<Vec<NetflixSample>>,
    /// Netflix connections opened in total.
    pub netflix_conns: u64,
    /// Incumbent C1's per-second samples (passive-inference ground truth).
    pub c1_stats: Vec<StatsSample>,
}

impl CompetitionOutcome {
    /// Share of the uplink taken by the incumbent over `[from, to)`.
    pub fn up_share(&self, from: SimTime, to: SimTime) -> f64 {
        let a = TwoPartyOutcome::rate_between(&self.inc_up, from, to);
        let b = TwoPartyOutcome::rate_between(&self.comp_up, from, to);
        if a + b == 0.0 {
            0.0
        } else {
            a / (a + b)
        }
    }

    /// Share of the downlink taken by the incumbent over `[from, to)`.
    pub fn down_share(&self, from: SimTime, to: SimTime) -> f64 {
        let a = TwoPartyOutcome::rate_between(&self.inc_down, from, to);
        let b = TwoPartyOutcome::rate_between(&self.comp_down, from, to);
        if a + b == 0.0 {
            0.0
        } else {
            a / (a + b)
        }
    }
}

/// Parameters of a competition run.
#[derive(Debug, Clone)]
pub struct CompetitionConfig {
    /// Incumbent application.
    pub incumbent: VcaKind,
    /// Competing application.
    pub competitor: Competitor,
    /// Symmetric bottleneck capacity, Mbps.
    pub capacity_mbps: f64,
    /// When the competitor starts (paper: ~30 s in).
    pub competitor_start: SimDuration,
    /// How long the competitor runs (paper: 120 s).
    pub competitor_duration: SimDuration,
    /// Total simulated time.
    pub total: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl CompetitionConfig {
    /// The paper's §5 procedure: competitor enters at 30 s for 120 s; the
    /// incumbent continues one more minute.
    pub fn paper(
        incumbent: VcaKind,
        competitor: Competitor,
        capacity_mbps: f64,
        seed: u64,
    ) -> Self {
        CompetitionConfig {
            incumbent,
            competitor,
            capacity_mbps,
            competitor_start: SimDuration::from_secs(30),
            competitor_duration: SimDuration::from_secs(120),
            total: SimDuration::from_secs(210),
            seed,
        }
    }
}

/// Run a §5 competition experiment.
pub fn run_competition(cfg: &CompetitionConfig) -> CompetitionOutcome {
    run_competition_telemetry(cfg, &Telemetry::disabled())
}

/// Like [`run_competition`], recording trace events through `tel`.
pub fn run_competition_telemetry(cfg: &CompetitionConfig, tel: &Telemetry) -> CompetitionOutcome {
    run_competition_metered(cfg, tel).0
}

/// Like [`run_competition_telemetry`], additionally returning the engine's
/// throughput counters.
pub fn run_competition_metered(
    cfg: &CompetitionConfig,
    tel: &Telemetry,
) -> (CompetitionOutcome, EngineStats) {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::competition(
        &mut net,
        RateProfile::constant_mbps(cfg.capacity_mbps),
        RateProfile::constant_mbps(cfg.capacity_mbps),
    );
    let h1 = wire_call(
        &mut net,
        cfg.incumbent,
        topo.vca_server,
        &[topo.c1, topo.c2],
        &[ViewMode::Gallery, ViewMode::Gallery],
        10,
        &mut rng,
    );
    attach_telemetry(&mut net, tel, &h1.clients.clone());
    let comp_start = SimTime::ZERO + cfg.competitor_start;
    let comp_end = comp_start + cfg.competitor_duration;
    let comp_up_flow = FlowId(70);
    let comp_down_flow = FlowId(71);
    let mut comp_up_flows = vec![comp_up_flow];
    let mut comp_down_flows = vec![comp_down_flow];
    match cfg.competitor {
        Competitor::Vca(kind) => {
            let h2 = vcabench_vca::wire_call_at(
                &mut net,
                kind,
                topo.f_server,
                &[topo.f1, topo.f2],
                &[ViewMode::Gallery, ViewMode::Gallery],
                50,
                &mut rng,
                comp_start,
            );
            attach_telemetry(&mut net, tel, &h2.clients.clone());
            comp_up_flows = vec![h2.up_flows[0]];
            comp_down_flows = vec![h2.down_flows[0]];
        }
        Competitor::IperfUp => {
            net.set_agent(
                topo.f1,
                Box::new(TcpSenderAgent::new(
                    1,
                    topo.f_server,
                    comp_up_flow,
                    comp_start,
                    Some(comp_end),
                )),
            );
            net.set_agent(topo.f_server, Box::new(TcpSinkAgent::new(comp_down_flow)));
        }
        Competitor::IperfDown => {
            net.set_agent(
                topo.f_server,
                Box::new(TcpSenderAgent::new(
                    1,
                    topo.f1,
                    comp_down_flow,
                    comp_start,
                    Some(comp_end),
                )),
            );
            net.set_agent(topo.f1, Box::new(TcpSinkAgent::new(comp_up_flow)));
        }
        Competitor::Netflix => {
            net.set_agent(
                topo.f1,
                Box::new(NetflixClient::new(
                    topo.f_server,
                    comp_up_flow,
                    comp_start,
                    Some(comp_end),
                )),
            );
            net.set_agent(topo.f_server, Box::new(AbrServer::new(comp_down_flow)));
        }
        Competitor::Youtube => {
            net.set_agent(
                topo.f1,
                Box::new(YoutubeClient::new(
                    topo.f_server,
                    comp_up_flow,
                    comp_start,
                    Some(comp_end),
                )),
            );
            net.set_agent(topo.f_server, Box::new(AbrServer::new_quic(comp_down_flow)));
        }
    }
    let end = SimTime::ZERO + cfg.total;
    net.run_until(end);

    let up = net.link(topo.bottleneck_up);
    let down = net.link(topo.bottleneck_down);
    let inc_up = up.traces.combined_series_mbps(&[h1.up_flows[0]], end);
    let inc_down = down.traces.combined_series_mbps(&[h1.down_flows[0]], end);
    let comp_up = up.traces.combined_series_mbps(&comp_up_flows, end);
    let comp_down = down.traces.combined_series_mbps(&comp_down_flows, end);
    let (netflix, netflix_conns) = if cfg.competitor == Competitor::Netflix {
        let c: &NetflixClient = net.agent(topo.f1);
        (Some(c.samples.clone()), c.connections_opened)
    } else {
        (None, 0)
    };
    let c1_stats = net.agent::<VcaClient>(topo.c1).stats.samples().to_vec();
    let outcome = CompetitionOutcome {
        duration: end,
        inc_up,
        inc_down,
        comp_up,
        comp_down,
        netflix,
        netflix_conns,
        c1_stats,
    };
    (outcome, net.engine_stats())
}

/// Outcome of a multiparty (§6) run.
#[derive(Debug, Clone)]
pub struct MultipartyOutcome {
    /// C1's downlink average over the steady window, Mbps.
    pub c1_down_mbps: f64,
    /// C1's uplink average, Mbps.
    pub c1_up_mbps: f64,
    /// C1's per-second samples (passive-inference ground truth).
    pub c1_stats: Vec<StatsSample>,
}

/// Run an n-party call; `pin_c1` puts every other participant in speaker
/// mode pinned on C1 (the Fig 15c modality).
pub fn run_multiparty(
    kind: VcaKind,
    n: usize,
    pin_c1: bool,
    duration: SimDuration,
    seed: u64,
) -> MultipartyOutcome {
    run_multiparty_telemetry(kind, n, pin_c1, duration, seed, &Telemetry::disabled())
}

/// Like [`run_multiparty`], recording trace events through `tel`.
pub fn run_multiparty_telemetry(
    kind: VcaKind,
    n: usize,
    pin_c1: bool,
    duration: SimDuration,
    seed: u64,
    tel: &Telemetry,
) -> MultipartyOutcome {
    run_multiparty_metered(kind, n, pin_c1, duration, seed, tel).0
}

/// Like [`run_multiparty_telemetry`], additionally returning the engine's
/// throughput counters.
pub fn run_multiparty_metered(
    kind: VcaKind,
    n: usize,
    pin_c1: bool,
    duration: SimDuration,
    seed: u64,
    tel: &Telemetry,
) -> (MultipartyOutcome, EngineStats) {
    let modes: Vec<ViewMode> = (0..n)
        .map(|i| {
            if pin_c1 && i != 0 {
                ViewMode::Speaker(0)
            } else {
                ViewMode::Gallery
            }
        })
        .collect();
    let mut call = vcabench_vca::multiparty_call(kind, n, &modes, seed);
    attach_telemetry(&mut call.net, tel, &call.handles.clients.clone());
    let end = SimTime::ZERO + duration;
    call.net.run_until(end);
    let settle = SimTime::ZERO + duration / 4;
    let c1_down = call
        .net
        .link(call.topo.downlinks[0])
        .traces
        .total()
        .rate_mbps_between(settle, end);
    let c1_up = call
        .net
        .link(call.topo.uplinks[0])
        .traces
        .total()
        .rate_mbps_between(settle, end);
    let c1_stats = call
        .net
        .agent::<VcaClient>(call.topo.clients[0])
        .stats
        .samples()
        .to_vec();
    let outcome = MultipartyOutcome {
        c1_down_mbps: c1_down,
        c1_up_mbps: c1_up,
        c1_stats,
    };
    (outcome, call.net.engine_stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_helpers_edges() {
        let series = vec![1.0; 100]; // 10 s at 100 ms bins
                                     // Full window.
        let r = TwoPartyOutcome::rate_between(&series, SimTime::ZERO, SimTime::from_secs(10));
        assert!((r - 1.0).abs() < 1e-12);
        // Empty and inverted windows are zero.
        assert_eq!(
            TwoPartyOutcome::rate_between(&series, SimTime::from_secs(5), SimTime::from_secs(5)),
            0.0
        );
        assert_eq!(
            TwoPartyOutcome::rate_between(&series, SimTime::from_secs(8), SimTime::from_secs(2)),
            0.0
        );
        // Windows past the end clamp to the data.
        let r =
            TwoPartyOutcome::rate_between(&series, SimTime::from_secs(9), SimTime::from_secs(99));
        assert!((r - 1.0).abs() < 1e-12);
        // Median of a half-constant window.
        let mut bi = vec![0.0; 50];
        bi.extend(vec![2.0; 50]);
        let m = TwoPartyOutcome::median_between(&bi, SimTime::ZERO, SimTime::from_secs(10));
        assert!((0.0..=2.0).contains(&m));
    }

    #[test]
    fn two_party_runner_produces_series() {
        let out = run_two_party(
            VcaKind::Zoom,
            RateProfile::constant_mbps(1000.0),
            RateProfile::constant_mbps(1000.0),
            SimDuration::from_secs(30),
            1,
        );
        assert_eq!(out.up_series.len(), 300);
        let rate = TwoPartyOutcome::rate_between(
            &out.up_series,
            SimTime::from_secs(15),
            SimTime::from_secs(30),
        );
        assert!(rate > 0.4, "zoom uplink alive: {rate}");
        assert!(!out.c1_stats.is_empty());
        assert!(out.c1_frames_decoded > 100);
    }

    #[test]
    fn competition_runner_iperf() {
        let cfg = CompetitionConfig {
            incumbent: VcaKind::Teams,
            competitor: Competitor::IperfUp,
            capacity_mbps: 2.0,
            competitor_start: SimDuration::from_secs(10),
            competitor_duration: SimDuration::from_secs(40),
            total: SimDuration::from_secs(60),
            seed: 3,
        };
        let out = run_competition(&cfg);
        let share = out.up_share(SimTime::from_secs(25), SimTime::from_secs(50));
        assert!(share < 0.5, "Teams passive vs TCP: share {share}");
        // Before the competitor starts, the incumbent owns the link.
        let early = out.up_share(SimTime::from_secs(5), SimTime::from_secs(10));
        assert!(early > 0.95, "incumbent alone early: {early}");
    }

    #[test]
    fn multiparty_runner_cliffs() {
        let four = run_multiparty(VcaKind::Zoom, 4, false, SimDuration::from_secs(40), 5);
        let five = run_multiparty(VcaKind::Zoom, 5, false, SimDuration::from_secs(40), 5);
        assert!(
            five.c1_up_mbps < four.c1_up_mbps * 0.8,
            "Zoom uplink cliff at n=5: {} vs {}",
            four.c1_up_mbps,
            five.c1_up_mbps
        );
    }
}
