//! Flow-level VCA identification: the harness half of
//! `vcabench-fingerprint`, sitting *ahead of* passive QoE inference.
//!
//! The inference stage (`harness::infer`) presumes the observer knows
//! which application a flow belongs to — its per-VCA calibrated model is
//! selected by the spec's kind. This module removes that assumption: it
//! taps the same two observation points, folds C1's packets into a
//! [`CallFingerprint`], classifies the call with the training-free rules
//! and the frozen centroid model, and scores identification accuracy
//! against the spec's ground truth (confusion matrix, per-family
//! precision/recall). `repro infer --identify` then routes each run
//! through the classifier to pick the per-family calibrated estimator —
//! the full passive pipeline `tap → fingerprint → per-VCA model → QoE`.
//!
//! Everything is a pure function of the specs: suites parallelize with
//! the campaign executor and produce byte-identical reports for any
//! `--jobs` value.

use std::cell::RefCell;
use std::rc::Rc;

use vcabench_campaign::{run_indexed, ScenarioSpec};
use vcabench_fingerprint::{
    CallFingerprint, CentroidModel, Classifier, FingerprintBank, FlowTap, RuleClassifier, Vantage,
    VcaFamily, NUM_FP_FEATURES,
};
use vcabench_infer::{Estimator, KindModels, LinearModel, TapBank};
use vcabench_netsim::EngineStats;
use vcabench_simcore::SimTime;
use vcabench_telemetry::{EventKind, Recorder, Telemetry};
use vcabench_vca::VcaKind;

use crate::infer::{
    bitrate_errors, fit_model, join_windows, run_spec_tapped, taps_for, InferOutcome, MetricScore,
    WindowRow,
};

/// Default gate: minimum identification accuracy over a suite.
pub const DEFAULT_MIN_ID_ACCURACY: f64 = 0.95;

/// Default gate: maximum regression of the identified-routing path's
/// pooled median bitrate error over the spec-routed path, in absolute
/// error (two percentage points).
pub const DEFAULT_MAX_ROUTED_DELTA: f64 = 0.02;

/// The application family a [`VcaKind`] identifies as. Browser variants
/// share the native client's wire behaviour profile, so identification
/// targets the family, not the client build.
pub fn family_of(kind: VcaKind) -> VcaFamily {
    match kind {
        VcaKind::Meet => VcaFamily::Meet,
        VcaKind::Teams | VcaKind::TeamsChrome => VcaFamily::Teams,
        VcaKind::Zoom | VcaKind::ZoomChrome => VcaFamily::Zoom,
    }
}

/// The client kind a scenario runs for C1 (the tapped client).
pub fn spec_kind(spec: &ScenarioSpec) -> VcaKind {
    match spec {
        ScenarioSpec::TwoParty(s) => s.kind,
        ScenarioSpec::Competition(s) => s.incumbent,
        ScenarioSpec::Multiparty(s) => s.kind,
    }
}

/// Ground-truth family of a scenario (what the classifier must recover).
pub fn spec_family(spec: &ScenarioSpec) -> VcaFamily {
    family_of(spec_kind(spec))
}

/// Fingerprint tap placement for a scenario: the same two observation
/// points [`taps_for`] places for inference (C1 uplink pre-queue, C1
/// downlink post-queue; the shared bottleneck under competition),
/// expressed as fingerprint-crate taps.
pub fn fp_taps_for(spec: &ScenarioSpec) -> [FlowTap; 2] {
    let taps = taps_for(spec);
    let conv = |t: vcabench_infer::TapSpec| FlowTap {
        link: t.link,
        flow: t.flow,
        vantage: match t.vantage {
            vcabench_infer::Vantage::Send => Vantage::Send,
            vcabench_infer::Vantage::Recv => Vantage::Recv,
        },
    };
    [conv(taps.send), conv(taps.recv)]
}

/// Run one scenario with the fingerprint bank attached (streaming,
/// online — no event log is kept), returning the call fingerprint.
pub fn run_spec_fingerprint(spec: &ScenarioSpec) -> CallFingerprint {
    run_spec_fingerprint_metered(spec).0
}

/// Like [`run_spec_fingerprint`], additionally returning the engine's
/// counters (the `repro bench` identification-stage scenario reads
/// these).
pub fn run_spec_fingerprint_metered(spec: &ScenarioSpec) -> (CallFingerprint, EngineStats) {
    let taps = fp_taps_for(spec);
    let bank = Rc::new(RefCell::new(FingerprintBank::new(&taps)));
    let tel = Telemetry::attach(bank.clone());
    let (_stats, duration, engine) = run_spec_tapped(spec, &tel);
    drop(tel);
    let bank = Rc::try_unwrap(bank)
        .expect("run finished; the fingerprint bank has a sole owner")
        .into_inner();
    let mut fps = bank.finish(duration);
    let down = fps.pop().expect("recv tap");
    let up = fps.pop().expect("send tap");
    (CallFingerprint { up, down }, engine)
}

/// One scenario's fingerprint with its ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFingerprint {
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth family from the spec.
    pub truth: VcaFamily,
    /// The observed call fingerprint.
    pub fingerprint: CallFingerprint,
}

/// Fingerprint a named-scenario suite on `jobs` workers. Output order
/// and bytes are independent of `jobs`.
pub fn fingerprint_suite(
    scenarios: &[(String, ScenarioSpec)],
    jobs: usize,
) -> Vec<LabeledFingerprint> {
    run_indexed(scenarios.len(), jobs, |i| LabeledFingerprint {
        scenario: scenarios[i].0.clone(),
        truth: spec_family(&scenarios[i].1),
        fingerprint: run_spec_fingerprint(&scenarios[i].1),
    })
}

/// Fit a nearest-centroid model from labeled fingerprints (row order is
/// preserved, so the fit — and the serialized artifact — is
/// byte-identical for any `--jobs` the suite ran with).
pub fn fit_centroid(rows: &[LabeledFingerprint]) -> Option<CentroidModel> {
    let data: Vec<(VcaFamily, [f64; NUM_FP_FEATURES])> = rows
        .iter()
        .map(|r| (r.truth, r.fingerprint.feature_vector()))
        .collect();
    CentroidModel::fit(&data)
}

/// The pinned training campaign the committed centroid artifact is fit
/// over (`repro identify --fit`): per family, an unshaped two-party
/// call, up- and down-shaped calls, a self-competition run on a 2.5 Mbps
/// bottleneck, and a 4-party call — two seeds for the unshaped case.
/// Training must cover the shaped/congested regimes or the centroids
/// only describe happy-path traffic.
pub fn training_suite(quick: bool) -> Vec<(String, ScenarioSpec)> {
    use vcabench_campaign::{CompetitionSpec, CompetitorSpec, MultipartySpec, TwoPartySpec};
    use vcabench_netsim::RateProfile;
    let dur = if quick { 12.0 } else { 30.0 };
    let mut out = Vec::new();
    for kind in VcaKind::NATIVE {
        let tag = vcabench_campaign::slug(kind.name());
        let two_party = |up: f64, down: f64, seed: u64| {
            ScenarioSpec::TwoParty(TwoPartySpec {
                kind,
                up: RateProfile::constant_mbps(up),
                down: RateProfile::constant_mbps(down),
                duration_secs: dur,
                seed,
                knobs: None,
            })
        };
        out.push((
            format!("train_{tag}_unshaped_s1"),
            two_party(1000.0, 1000.0, 1),
        ));
        out.push((
            format!("train_{tag}_unshaped_s2"),
            two_party(1000.0, 1000.0, 2),
        ));
        out.push((format!("train_{tag}_up_0.5"), two_party(0.5, 1000.0, 1)));
        out.push((format!("train_{tag}_down_0.45"), two_party(1000.0, 0.45, 1)));
        let (start, cdur, total) = if quick {
            (4.0, 8.0, 16.0)
        } else {
            (10.0, 30.0, 50.0)
        };
        out.push((
            format!("train_{tag}_competition_2.5"),
            ScenarioSpec::Competition(CompetitionSpec {
                incumbent: kind,
                competitor: CompetitorSpec::Vca(kind),
                capacity_mbps: 2.5,
                competitor_start_secs: Some(start),
                competitor_duration_secs: Some(cdur),
                total_secs: Some(total),
                seed: 1,
            }),
        ));
        out.push((
            format!("train_{tag}_multiparty_4"),
            ScenarioSpec::Multiparty(MultipartySpec {
                kind,
                n: 4,
                pin_c1: Some(false),
                duration_secs: dur,
                seed: 1,
            }),
        ));
    }
    out
}

/// One scenario's identification outcome under both classifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifiedScenario {
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth family.
    pub truth: VcaFamily,
    /// The rule classifier's call.
    pub rule: VcaFamily,
    /// The centroid model's call.
    pub centroid: VcaFamily,
}

/// One classifier's aggregate score over a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierScore {
    /// Classifier name.
    pub classifier: String,
    /// Confusion counts, `[truth.index()][predicted.index()]` in
    /// [`VcaFamily::ALL`] order.
    pub confusion: [[u64; 3]; 3],
    /// Fraction of scenarios identified correctly.
    pub accuracy: f64,
    /// Per-family precision, [`VcaFamily::ALL`] order (1.0 when the
    /// family was never predicted).
    pub precision: [f64; 3],
    /// Per-family recall, [`VcaFamily::ALL`] order (1.0 when the family
    /// never occurred).
    pub recall: [f64; 3],
}

/// The identification report: per-scenario calls plus per-classifier
/// aggregate scores.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifyReport {
    /// Per-scenario outcomes, in suite order.
    pub scenarios: Vec<IdentifiedScenario>,
    /// Aggregate scores: the rule classifier, then the centroid model.
    pub scores: Vec<ClassifierScore>,
}

impl IdentifyReport {
    /// The centroid model's accuracy (the gated headline number).
    pub fn centroid_accuracy(&self) -> f64 {
        self.scores
            .iter()
            .find(|s| s.classifier == "centroid")
            .map(|s| s.accuracy)
            .unwrap_or(0.0)
    }
}

fn score_classifier(name: &str, pairs: &[(VcaFamily, VcaFamily)]) -> ClassifierScore {
    let mut confusion = [[0u64; 3]; 3];
    for (truth, pred) in pairs {
        confusion[truth.index()][pred.index()] += 1;
    }
    let correct: u64 = (0..3).map(|i| confusion[i][i]).sum();
    let total: u64 = pairs.len() as u64;
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    let mut precision = [0.0; 3];
    let mut recall = [0.0; 3];
    for i in 0..3 {
        let predicted: u64 = (0..3).map(|t| confusion[t][i]).sum();
        let actual: u64 = confusion[i].iter().sum();
        precision[i] = ratio(confusion[i][i], predicted);
        recall[i] = ratio(confusion[i][i], actual);
    }
    ClassifierScore {
        classifier: name.to_string(),
        confusion,
        accuracy: ratio(correct, total),
        precision,
        recall,
    }
}

/// Classify every fingerprint with both classifiers and score them
/// against the ground truth.
pub fn build_identify_report(rows: &[LabeledFingerprint], model: &CentroidModel) -> IdentifyReport {
    let rule = RuleClassifier;
    let scenarios: Vec<IdentifiedScenario> = rows
        .iter()
        .map(|r| IdentifiedScenario {
            scenario: r.scenario.clone(),
            truth: r.truth,
            rule: rule.classify(&r.fingerprint),
            centroid: model.classify(&r.fingerprint),
        })
        .collect();
    let pairs = |f: &dyn Fn(&IdentifiedScenario) -> VcaFamily| -> Vec<(VcaFamily, VcaFamily)> {
        scenarios.iter().map(|s| (s.truth, f(s))).collect()
    };
    IdentifyReport {
        scores: vec![
            score_classifier("rule", &pairs(&|s| s.rule)),
            score_classifier("centroid", &pairs(&|s| s.centroid)),
        ],
        scenarios,
    }
}

/// Render the identification report as deterministic text.
pub fn render_identify_report(report: &IdentifyReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "VCA identification: {} scenarios\n",
        report.scenarios.len()
    ));
    for sc in &report.scenarios {
        let mark = |pred: VcaFamily| if pred == sc.truth { ' ' } else { '!' };
        s.push_str(&format!(
            "  {:<28} truth={:<5} rule={:<5}{} centroid={:<5}{}\n",
            sc.scenario,
            sc.truth.name(),
            sc.rule.name(),
            mark(sc.rule),
            sc.centroid.name(),
            mark(sc.centroid),
        ));
    }
    for score in &report.scores {
        s.push_str(&format!(
            "classifier `{}`: accuracy {:.3}\n",
            score.classifier, score.accuracy
        ));
        s.push_str("  confusion (rows=truth, cols=predicted; Meet/Teams/Zoom):\n");
        for (i, fam) in VcaFamily::ALL.iter().enumerate() {
            s.push_str(&format!(
                "    {:<5} {:>3} {:>3} {:>3}   precision {:.2}  recall {:.2}\n",
                fam.name(),
                score.confusion[i][0],
                score.confusion[i][1],
                score.confusion[i][2],
                score.precision[i],
                score.recall[i],
            ));
        }
    }
    s
}

/// Serialize the identification report as a stable JSON artifact (fixed
/// key order — byte-identical for any `--jobs`).
pub fn identify_report_json(report: &IdentifyReport) -> String {
    use serde_json::{Map, Value};
    let mut root = Map::new();
    root.insert(
        "schema".to_string(),
        Value::String("vcabench-identify-report/v1".to_string()),
    );
    root.insert(
        "families".to_string(),
        Value::Array(
            VcaFamily::ALL
                .iter()
                .map(|f| Value::String(f.name().to_string()))
                .collect(),
        ),
    );
    root.insert(
        "scenarios".to_string(),
        Value::Array(
            report
                .scenarios
                .iter()
                .map(|sc| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(sc.scenario.clone()));
                    o.insert(
                        "truth".to_string(),
                        Value::String(sc.truth.name().to_string()),
                    );
                    o.insert(
                        "rule".to_string(),
                        Value::String(sc.rule.name().to_string()),
                    );
                    o.insert(
                        "centroid".to_string(),
                        Value::String(sc.centroid.name().to_string()),
                    );
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    root.insert(
        "classifiers".to_string(),
        Value::Array(
            report
                .scores
                .iter()
                .map(|s| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(s.classifier.clone()));
                    o.insert("accuracy".to_string(), Value::F64(s.accuracy));
                    o.insert(
                        "confusion".to_string(),
                        Value::Array(
                            s.confusion
                                .iter()
                                .map(|row| {
                                    Value::Array(row.iter().map(|&c| Value::U64(c)).collect())
                                })
                                .collect(),
                        ),
                    );
                    let floats =
                        |xs: &[f64; 3]| Value::Array(xs.iter().map(|&x| Value::F64(x)).collect());
                    o.insert("precision".to_string(), floats(&s.precision));
                    o.insert("recall".to_string(), floats(&s.recall));
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    let mut text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable report");
    text.push('\n');
    text
}

/// A tee recorder: every event feeds both the inference tap bank and the
/// fingerprint bank, so the identified-routing path runs each scenario
/// exactly once.
#[derive(Debug)]
struct DualBank {
    infer: TapBank,
    fp: FingerprintBank,
}

impl Recorder for DualBank {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        self.infer.record(at, kind.clone());
        self.fp.record(at, kind);
    }
}

/// Run one scenario with *both* the inference extractors and the
/// fingerprint bank attached, returning the joined inference outcome and
/// the call fingerprint from a single simulation.
pub fn run_spec_infer_identify(spec: &ScenarioSpec) -> (InferOutcome, CallFingerprint) {
    let taps = taps_for(spec);
    let fp_taps = fp_taps_for(spec);
    let bank = Rc::new(RefCell::new(DualBank {
        infer: TapBank::new(&[taps.send, taps.recv]),
        fp: FingerprintBank::new(&fp_taps),
    }));
    let tel = Telemetry::attach(bank.clone());
    let (stats, duration, _engine) = run_spec_tapped(spec, &tel);
    drop(tel);
    let bank = Rc::try_unwrap(bank)
        .expect("run finished; the dual bank has a sole owner")
        .into_inner();
    let mut windows = bank.infer.finish(duration);
    let recv = windows.pop().expect("recv tap");
    let send = windows.pop().expect("send tap");
    let mut fps = bank.fp.finish(duration);
    let fp_down = fps.pop().expect("recv tap");
    let fp_up = fps.pop().expect("send tap");
    (
        InferOutcome {
            send,
            recv,
            stats,
            duration,
        },
        CallFingerprint {
            up: fp_up,
            down: fp_down,
        },
    )
}

/// One scenario's routed-inference outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedScenario {
    /// Scenario name.
    pub scenario: String,
    /// Ground-truth family from the spec.
    pub truth: VcaFamily,
    /// The classifier's call (what routing actually used).
    pub predicted: VcaFamily,
    /// Joined windows.
    pub windows: usize,
}

/// Cross-VCA generalization: a per-family model scored on its own family
/// vs a model trained with that family held out.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossVcaRow {
    /// The held-out family.
    pub held_out: VcaFamily,
    /// Bitrate errors pooled over the held-out family's windows.
    pub windows: usize,
    /// Median error of the model fit on the held-out family itself.
    pub in_domain_median: f64,
    /// Median error of the model fit on the other two families only.
    pub transfer_median: f64,
    /// `transfer_median - in_domain_median`.
    pub gap: f64,
}

/// The identified-routing validation report: classifier-routed per-family
/// estimation vs the spec-routed reference, plus the cross-VCA
/// generalization experiment over the same rows.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedReport {
    /// Per-scenario routing calls, in suite order.
    pub scenarios: Vec<RoutedScenario>,
    /// Identification accuracy of the routing classifier.
    pub id_accuracy: f64,
    /// Pooled bitrate error, per-family models selected by the spec kind.
    pub spec_routed: MetricScore,
    /// Pooled bitrate error, per-family models selected by the classifier.
    pub identified: MetricScore,
    /// `identified.median - spec_routed.median` (positive = the classifier
    /// path is worse).
    pub delta: f64,
    /// Hold-one-family-out generalization rows, [`VcaFamily::ALL`] order.
    pub cross_vca: Vec<CrossVcaRow>,
}

/// Run a named-scenario suite with both banks attached on `jobs`
/// workers, returning each scenario's joined windows and fingerprint.
/// Output order and bytes are independent of `jobs`.
pub fn infer_identify_suite(
    scenarios: &[(String, ScenarioSpec)],
    jobs: usize,
) -> Vec<(Vec<WindowRow>, CallFingerprint)> {
    run_indexed(scenarios.len(), jobs, |i| {
        let (out, fp) = run_spec_infer_identify(&scenarios[i].1);
        (join_windows(&scenarios[i].0, &out), fp)
    })
}

/// Score the identified-routing comparison over precomputed suite runs
/// (from [`infer_identify_suite`]): each scenario's windows are scored
/// through the per-family model selected (a) by the spec's kind and (b)
/// by the centroid classifier, pooling errors across the whole suite
/// before taking medians. Also fits hold-one-family-out models over the
/// same rows for the cross-VCA generalization experiment.
pub fn routed_report(
    scenarios: &[(String, ScenarioSpec)],
    runs: &[(Vec<WindowRow>, CallFingerprint)],
    models: &KindModels,
    classifier: &CentroidModel,
) -> RoutedReport {
    let fallback = LinearModel::builtin();
    let model_for = |family: VcaFamily| -> &dyn Estimator {
        models
            .get(family.name())
            .map(|m| m as &dyn Estimator)
            .unwrap_or(&fallback)
    };
    let mut rows_out = Vec::new();
    let mut spec_errs = Vec::new();
    let mut ident_errs = Vec::new();
    let mut correct = 0usize;
    let mut by_family: [Vec<WindowRow>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for ((name, spec), (rows, fp)) in scenarios.iter().zip(runs.iter()) {
        let truth = spec_family(spec);
        let predicted = classifier.classify(fp);
        if predicted == truth {
            correct += 1;
        }
        spec_errs.extend(bitrate_errors(rows, model_for(truth)));
        ident_errs.extend(bitrate_errors(rows, model_for(predicted)));
        by_family[truth.index()].extend(rows.iter().cloned());
        rows_out.push(RoutedScenario {
            scenario: name.clone(),
            truth,
            predicted,
            windows: rows.len(),
        });
    }
    let cross_vca = VcaFamily::ALL
        .iter()
        .map(|&held_out| {
            let held_rows = &by_family[held_out.index()];
            let others: Vec<WindowRow> = VcaFamily::ALL
                .iter()
                .filter(|&&f| f != held_out)
                .flat_map(|&f| by_family[f.index()].iter().cloned())
                .collect();
            let median = |m: Option<LinearModel>| {
                m.map(|m| MetricScore::from_errors(bitrate_errors(held_rows, &m)).median_rel_err)
                    .unwrap_or(f64::NAN)
            };
            let in_domain_median = median(fit_model(held_rows));
            let transfer_median = median(fit_model(&others));
            CrossVcaRow {
                held_out,
                windows: held_rows.len(),
                in_domain_median,
                transfer_median,
                gap: transfer_median - in_domain_median,
            }
        })
        .collect();
    let spec_routed = MetricScore::from_errors(spec_errs);
    let identified = MetricScore::from_errors(ident_errs);
    RoutedReport {
        id_accuracy: if scenarios.is_empty() {
            1.0
        } else {
            correct as f64 / scenarios.len() as f64
        },
        delta: identified.median_rel_err - spec_routed.median_rel_err,
        scenarios: rows_out,
        spec_routed,
        identified,
        cross_vca,
    }
}

/// Render the routed report as deterministic text.
pub fn render_routed_report(report: &RoutedReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "identified routing: {} scenarios, id accuracy {:.3}\n",
        report.scenarios.len(),
        report.id_accuracy
    ));
    for sc in &report.scenarios {
        let mark = if sc.predicted == sc.truth { ' ' } else { '!' };
        s.push_str(&format!(
            "  {:<28} truth={:<5} routed={:<5}{} windows={}\n",
            sc.scenario,
            sc.truth.name(),
            sc.predicted.name(),
            mark,
            sc.windows
        ));
    }
    s.push_str(&format!(
        "bitrate error (pooled median): spec-routed {:.2}%  identified {:.2}%  delta {:+.2}pp\n",
        report.spec_routed.median_rel_err * 100.0,
        report.identified.median_rel_err * 100.0,
        report.delta * 100.0,
    ));
    s.push_str("cross-VCA generalization (hold one family out):\n");
    for row in &report.cross_vca {
        s.push_str(&format!(
            "  held-out {:<5} windows={:<5} in-domain {:.2}%  transfer {:.2}%  gap {:+.2}pp\n",
            row.held_out.name(),
            row.windows,
            row.in_domain_median * 100.0,
            row.transfer_median * 100.0,
            row.gap * 100.0,
        ));
    }
    s
}

/// Fit the per-family model bundle from suite runs grouped by
/// ground-truth family (used by `repro infer --identify --fit`;
/// families whose rows produce a degenerate fit are dropped).
pub fn fit_kind_models(
    scenarios: &[(String, ScenarioSpec)],
    runs: &[(Vec<WindowRow>, CallFingerprint)],
) -> KindModels {
    let mut by_family: [Vec<WindowRow>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for ((_, spec), (rows, _)) in scenarios.iter().zip(runs.iter()) {
        by_family[spec_family(spec).index()].extend(rows.iter().cloned());
    }
    let mut models = Vec::new();
    for family in VcaFamily::ALL {
        if let Some(m) = fit_model(&by_family[family.index()]) {
            models.push((family.name().to_string(), m));
        }
    }
    KindModels::new(models)
}

/// Serialize the routed report as a stable JSON artifact (fixed key
/// order — byte-identical for any `--jobs`).
pub fn routed_report_json(report: &RoutedReport) -> String {
    use serde_json::{Map, Value};
    let mut root = Map::new();
    root.insert(
        "schema".to_string(),
        Value::String("vcabench-routed-report/v1".to_string()),
    );
    root.insert("id_accuracy".to_string(), Value::F64(report.id_accuracy));
    root.insert(
        "spec_routed_median".to_string(),
        Value::F64(report.spec_routed.median_rel_err),
    );
    root.insert(
        "identified_median".to_string(),
        Value::F64(report.identified.median_rel_err),
    );
    root.insert("delta".to_string(), Value::F64(report.delta));
    root.insert(
        "scenarios".to_string(),
        Value::Array(
            report
                .scenarios
                .iter()
                .map(|sc| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(sc.scenario.clone()));
                    o.insert(
                        "truth".to_string(),
                        Value::String(sc.truth.name().to_string()),
                    );
                    o.insert(
                        "predicted".to_string(),
                        Value::String(sc.predicted.name().to_string()),
                    );
                    o.insert("windows".to_string(), Value::U64(sc.windows as u64));
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    root.insert(
        "cross_vca".to_string(),
        Value::Array(
            report
                .cross_vca
                .iter()
                .map(|row| {
                    let mut o = Map::new();
                    o.insert(
                        "held_out".to_string(),
                        Value::String(row.held_out.name().to_string()),
                    );
                    o.insert("windows".to_string(), Value::U64(row.windows as u64));
                    o.insert(
                        "in_domain_median".to_string(),
                        Value::F64(row.in_domain_median),
                    );
                    o.insert(
                        "transfer_median".to_string(),
                        Value::F64(row.transfer_median),
                    );
                    o.insert("gap".to_string(), Value::F64(row.gap));
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    let mut text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable report");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::unshaped_two_party;
    use vcabench_telemetry::{events_jsonl, replay_jsonl, EventLog};

    #[test]
    fn families_cover_every_kind() {
        for kind in VcaKind::ALL {
            let fam = family_of(kind);
            assert!(VcaFamily::ALL.contains(&fam));
        }
        assert_eq!(family_of(VcaKind::ZoomChrome), VcaFamily::Zoom);
        assert_eq!(family_of(VcaKind::TeamsChrome), VcaFamily::Teams);
    }

    #[test]
    fn fingerprint_taps_mirror_inference_taps() {
        for spec in [
            unshaped_two_party(VcaKind::Meet, 5.0, 1),
            training_suite(true)
                .into_iter()
                .find(|(n, _)| n.contains("competition"))
                .expect("competition training scenario")
                .1,
        ] {
            let infer_taps = taps_for(&spec);
            let [up, down] = fp_taps_for(&spec);
            assert_eq!(up.link, infer_taps.send.link);
            assert_eq!(up.flow, infer_taps.send.flow);
            assert_eq!(up.vantage, Vantage::Send);
            assert_eq!(down.link, infer_taps.recv.link);
            assert_eq!(down.flow, infer_taps.recv.flow);
            assert_eq!(down.vantage, Vantage::Recv);
        }
    }

    #[test]
    fn live_and_offline_fingerprints_are_identical() {
        let spec = unshaped_two_party(VcaKind::Zoom, 8.0, 7);
        let live = run_spec_fingerprint(&spec);
        let (tel, log) = Telemetry::with_log(EventLog::unbounded());
        crate::campaign::run_spec_telemetry(&spec, &tel);
        let jsonl = events_jsonl(&log.borrow());
        let mut bank = FingerprintBank::new(&fp_taps_for(&spec));
        replay_jsonl(&jsonl, &mut bank).expect("replay");
        // Two-party runs end exactly at the spec duration.
        let end = SimTime::ZERO + vcabench_simcore::SimDuration::from_secs_f64(8.0);
        let offline = bank.finish(end);
        let offline = CallFingerprint {
            up: offline[0].clone(),
            down: offline[1].clone(),
        };
        assert_eq!(live, offline);
        assert!(live.up.video_pkts > 0, "uplink saw media");
    }

    #[test]
    fn suite_and_report_are_independent_of_jobs() {
        let scenarios: Vec<(String, ScenarioSpec)> = VcaKind::NATIVE
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                (
                    format!("two_party_{}", vcabench_campaign::slug(kind.name())),
                    unshaped_two_party(kind, 6.0, i as u64 + 1),
                )
            })
            .collect();
        let one = fingerprint_suite(&scenarios, 1);
        let many = fingerprint_suite(&scenarios, 4);
        assert_eq!(one, many);
        let model = CentroidModel::builtin();
        let r1 = build_identify_report(&one, &model);
        let r2 = build_identify_report(&many, &model);
        assert_eq!(identify_report_json(&r1), identify_report_json(&r2));
        assert_eq!(render_identify_report(&r1), render_identify_report(&r2));
    }

    #[test]
    fn dual_bank_matches_the_single_purpose_paths() {
        let spec = unshaped_two_party(VcaKind::Teams, 6.0, 5);
        let (out, fp) = run_spec_infer_identify(&spec);
        let solo_infer = crate::infer::run_spec_infer(&spec);
        let solo_fp = run_spec_fingerprint(&spec);
        assert_eq!(out.send, solo_infer.send);
        assert_eq!(out.recv, solo_infer.recv);
        assert_eq!(fp, solo_fp);
    }

    #[test]
    fn classifier_scores_count_a_known_confusion() {
        use VcaFamily::{Meet, Teams, Zoom};
        let s = score_classifier(
            "test",
            &[(Meet, Meet), (Meet, Teams), (Teams, Teams), (Zoom, Zoom)],
        );
        assert_eq!(s.confusion[0], [1, 1, 0]);
        assert!((s.accuracy - 0.75).abs() < 1e-12);
        assert!((s.recall[0] - 0.5).abs() < 1e-12);
        assert!((s.precision[1] - 0.5).abs() < 1e-12);
        assert_eq!(s.precision[2], 1.0);
    }

    #[test]
    fn training_suite_is_pinned_and_valid() {
        for quick in [false, true] {
            let suite = training_suite(quick);
            assert_eq!(suite.len(), 18);
            for (name, spec) in &suite {
                assert!(name.starts_with("train_"), "{name}");
                spec.validate().expect("training spec valid");
            }
            // Every family appears, and shaped + congested regimes are in.
            for fam in VcaFamily::ALL {
                let n = suite.iter().filter(|(_, s)| spec_family(s) == fam).count();
                assert_eq!(n, 6, "{} scenarios for {}", n, fam.name());
            }
        }
    }
}
