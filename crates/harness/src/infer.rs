//! Passive-inference validation: run scenarios with taps attached, join
//! the estimates against ground-truth stats, score the estimators.
//!
//! This is the harness half of `vcabench-infer` (see that crate for the
//! extraction and estimation layers). For every scenario it places two
//! passive observers on C1's path — a *send* tap before the first queue
//! C1's uplink traffic enters, and a *recv* tap after the last queue its
//! downlink traffic leaves — runs the simulation once with the streaming
//! extractors attached, and joins the per-second window features against
//! the client's own `stats_api` samples:
//!
//! | estimate (passive)            | ground truth (stats API)          |
//! |-------------------------------|-----------------------------------|
//! | send-tap video payload rate   | `send_media_bytes` per-second Δ   |
//! | recv-tap video payload rate   | `recv_media_bytes` per-second Δ   |
//! | recv-tap decodable frames     | `frames_decoded` per-second Δ     |
//! | recv-tap freeze replica       | `freeze_count`/`freeze_time` Δ    |
//!
//! Everything here is a pure function of the specs, so the produced
//! report is byte-identical for any `--jobs` value — [`infer_suite`]
//! parallelizes across scenarios with the campaign executor and
//! reassembles results in input order.

use std::cell::RefCell;
use std::rc::Rc;

use vcabench_campaign::{run_indexed, ScenarioSpec};
use vcabench_infer::{
    feature_vector, gbt_feature_vector, Estimator, GbtModel, GbtParams, HeuristicEstimator,
    LinearModel, TapBank, TapSpec, Vantage, WindowFeatures, NUM_FEATURES, NUM_GBT_FEATURES,
};
use vcabench_netsim::EngineStats;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_telemetry::Telemetry;
use vcabench_vca::{StatsCollector, StatsSample};

use crate::campaign::apply_knobs;
use crate::run::{
    run_competition_metered, run_multiparty_metered, run_two_party_metered, CompetitionConfig,
};

/// Default gate: maximum pooled median relative bitrate error.
pub const DEFAULT_MAX_BITRATE_ERR: f64 = 0.10;
/// Default gate for the GBT estimator: the tree ensemble resolves the
/// FEC regimes the linear discount averages over, so it is held to a
/// tighter pooled median than [`DEFAULT_MAX_BITRATE_ERR`].
pub const DEFAULT_MAX_BITRATE_ERR_GBT: f64 = 0.05;
/// Default gate: minimum freeze recall.
pub const DEFAULT_MIN_FREEZE_RECALL: f64 = 0.8;

/// The workspace-wide model registry: the estimator artifacts committed
/// in `vcabench-infer` (`linear-v1`, `linear-kinds-v1`, `gbt-v1`) plus
/// the identification crate's `centroid-v1`. This is the single lookup
/// the `repro` CLI resolves every frozen model through.
pub fn model_registry() -> vcabench_infer::ModelRegistry {
    let mut reg = vcabench_infer::ModelRegistry::builtin();
    reg.register(vcabench_fingerprint::CentroidModel::registry_entry());
    reg
}

/// The two observation points used to validate a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioTaps {
    /// Pre-queue observer of C1's uplink media flow.
    pub send: TapSpec,
    /// Post-queue observer of C1's downlink media flow.
    pub recv: TapSpec,
}

/// Tap placement for a scenario. Link and flow indices are topology
/// constants: every topology builder creates C1's access links first
/// (uplink 0, downlink 1) and `wire_call` numbers C1's flows from base
/// 10 (up 10, down 11). The competition topology instead taps the shared
/// bottleneck (links 4/5), where the incumbent's traffic actually
/// contends — C1's access links there are unconstrained. A test below
/// pins these constants against the real topology builders.
pub fn taps_for(spec: &ScenarioSpec) -> ScenarioTaps {
    let (up_link, down_link) = match spec {
        ScenarioSpec::Competition(_) => (4, 5),
        ScenarioSpec::TwoParty(_) | ScenarioSpec::Multiparty(_) => (0, 1),
    };
    ScenarioTaps {
        send: TapSpec {
            link: up_link,
            flow: 10,
            vantage: Vantage::Send,
        },
        recv: TapSpec {
            link: down_link,
            flow: 11,
            vantage: Vantage::Recv,
        },
    }
}

/// One scenario's inference run: extracted windows plus ground truth.
#[derive(Debug, Clone)]
pub struct InferOutcome {
    /// Send-tap windows.
    pub send: Vec<WindowFeatures>,
    /// Recv-tap windows.
    pub recv: Vec<WindowFeatures>,
    /// C1's per-second ground-truth samples.
    pub stats: Vec<StatsSample>,
    /// Simulated end time.
    pub duration: SimTime,
}

/// Run one scenario with the two extractors attached (streaming, online —
/// no event log is kept).
pub fn run_spec_infer(spec: &ScenarioSpec) -> InferOutcome {
    run_spec_infer_metered(spec).0
}

/// Like [`run_spec_infer`], additionally returning the engine's counters
/// (the `repro bench` inference-stage scenario reads these).
pub fn run_spec_infer_metered(spec: &ScenarioSpec) -> (InferOutcome, EngineStats) {
    let taps = taps_for(spec);
    let bank = Rc::new(RefCell::new(TapBank::new(&[taps.send, taps.recv])));
    let tel = Telemetry::attach(bank.clone());
    let (stats, duration, engine) = run_spec_tapped(spec, &tel);
    drop(tel);
    let bank = Rc::try_unwrap(bank)
        .expect("run finished; the extractor bank has a sole owner")
        .into_inner();
    let mut windows = bank.finish(duration);
    let recv = windows.pop().expect("recv tap");
    let send = windows.pop().expect("send tap");
    (
        InferOutcome {
            send,
            recv,
            stats,
            duration,
        },
        engine,
    )
}

/// Run one scenario with an already-attached telemetry handle, returning
/// C1's raw per-second stats, the simulated end time, and the engine's
/// counters. Shared by the inference and fingerprinting harness paths —
/// both attach a passive [`vcabench_telemetry::Recorder`] and need the
/// same per-scenario-type dispatch.
pub(crate) fn run_spec_tapped(
    spec: &ScenarioSpec,
    tel: &Telemetry,
) -> (Vec<StatsSample>, SimTime, EngineStats) {
    match spec.normalized() {
        ScenarioSpec::TwoParty(s) => {
            let duration = SimDuration::from_secs_f64(s.duration_secs);
            let knobs = s.knobs.clone();
            let (out, engine) = run_two_party_metered(
                s.kind,
                s.up.clone(),
                s.down.clone(),
                duration,
                s.seed,
                tel,
                |c1| apply_knobs(knobs.as_ref(), c1),
            );
            (out.c1_stats, out.duration, engine)
        }
        ScenarioSpec::Competition(s) => {
            let cfg = CompetitionConfig {
                incumbent: s.incumbent,
                competitor: crate::campaign::competitor_from_spec(s.competitor),
                capacity_mbps: s.capacity_mbps,
                competitor_start: SimDuration::from_secs_f64(
                    s.competitor_start_secs.expect("normalized"),
                ),
                competitor_duration: SimDuration::from_secs_f64(
                    s.competitor_duration_secs.expect("normalized"),
                ),
                total: SimDuration::from_secs_f64(s.total_secs.expect("normalized")),
                seed: s.seed,
            };
            let (out, engine) = run_competition_metered(&cfg, tel);
            (out.c1_stats, out.duration, engine)
        }
        ScenarioSpec::Multiparty(s) => {
            let duration = SimDuration::from_secs_f64(s.duration_secs);
            let (out, engine) = run_multiparty_metered(
                s.kind,
                s.n,
                s.pin_c1.expect("normalized"),
                duration,
                s.seed,
                tel,
            );
            (out.c1_stats, SimTime::ZERO + duration, engine)
        }
    }
}

/// One joined window: passive features plus the ground truth the
/// estimates are scored against (`None` where no stats sample brackets
/// the window — e.g. before the first per-second sample).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Scenario name the window came from.
    pub scenario: String,
    /// Window index (seconds).
    pub window: u64,
    /// Send-tap features.
    pub send: WindowFeatures,
    /// Recv-tap features.
    pub recv: WindowFeatures,
    /// True send media rate, Mbps.
    pub gt_send_mbps: Option<f64>,
    /// True receive media rate, Mbps.
    pub gt_recv_mbps: Option<f64>,
    /// True decoded frames (all remote senders).
    pub gt_frames: Option<u64>,
    /// True freezes registered in the window.
    pub gt_freeze_count: Option<u64>,
    /// True freeze time accumulated in the window, seconds.
    pub gt_freeze_s: Option<f64>,
}

/// Join one scenario's windows against its ground-truth samples.
pub fn join_windows(scenario: &str, out: &InferOutcome) -> Vec<WindowRow> {
    let mut stats = StatsCollector::new();
    for s in &out.stats {
        stats.push(*s);
    }
    let delta = |w: u64, f: &dyn Fn(&StatsSample) -> u64| {
        stats.counter_delta(SimTime::from_secs(w), SimTime::from_secs(w + 1), f)
    };
    out.send
        .iter()
        .zip(out.recv.iter())
        .map(|(send, recv)| {
            let w = send.window;
            WindowRow {
                scenario: scenario.to_string(),
                window: w,
                send: send.clone(),
                recv: recv.clone(),
                gt_send_mbps: delta(w, &|s| s.send_media_bytes).map(|b| b as f64 * 8e-6),
                gt_recv_mbps: delta(w, &|s| s.recv_media_bytes).map(|b| b as f64 * 8e-6),
                gt_frames: delta(w, &|s| s.frames_decoded),
                gt_freeze_count: delta(w, &|s| s.freeze_count),
                gt_freeze_s: delta(w, &|s| s.freeze_time.as_micros()).map(|us| us as f64 * 1e-6),
            }
        })
        .collect()
}

/// Run a named-scenario suite on `jobs` workers. Output order and bytes
/// are independent of `jobs`.
pub fn infer_suite(scenarios: &[(String, ScenarioSpec)], jobs: usize) -> Vec<Vec<WindowRow>> {
    run_indexed(scenarios.len(), jobs, |i| {
        join_windows(&scenarios[i].0, &run_spec_infer(&scenarios[i].1))
    })
}

/// Ground-truth rates below this are skipped for relative error (the
/// ratio is unstable when the true rate is near zero, e.g. during the
/// first ramp-up second or a competition-induced outage).
const MIN_GT_MBPS: f64 = 0.01;
/// Minimum true frames per window for FPS relative error.
const MIN_GT_FRAMES: u64 = 1;
/// Freeze matching tolerance, windows. Both the replica and the client
/// stamp a freeze at its *recovery* frame, but they recover on different
/// timelines: the tap sees queue-retimed packets mid-path, while the
/// client's decode clock stalls through keyframe re-request after a loss
/// — so one client-side freeze episode can resolve as two counts a
/// couple of seconds apart. An estimate within ±2 windows of a true
/// freeze counts as the same episode.
const FREEZE_WINDOW_SLACK: u64 = 2;

/// Accuracy of one metric over a pool of windows: the distribution of
/// `|est − truth| / truth`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScore {
    /// Windows scored.
    pub n: usize,
    /// Median absolute relative error.
    pub median_rel_err: f64,
    /// Mean absolute relative error.
    pub mean_rel_err: f64,
    /// Error CDF: 0th, 10th, …, 100th percentiles.
    pub deciles: Vec<f64>,
}

impl MetricScore {
    /// Summarize a pool of absolute relative errors (deterministic: the
    /// pool is sorted with `total_cmp` before percentiles are read).
    pub fn from_errors(mut errs: Vec<f64>) -> MetricScore {
        errs.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if errs.is_empty() {
                return 0.0;
            }
            let idx = (p * (errs.len() - 1) as f64).round() as usize;
            errs[idx.min(errs.len() - 1)]
        };
        MetricScore {
            n: errs.len(),
            median_rel_err: pct(0.5),
            mean_rel_err: if errs.is_empty() {
                0.0
            } else {
                errs.iter().sum::<f64>() / errs.len() as f64
            },
            deciles: (0..=10).map(|d| pct(d as f64 / 10.0)).collect(),
        }
    }
}

/// Window-level freeze detection quality.
#[derive(Debug, Clone, PartialEq)]
pub struct FreezeScore {
    /// Windows with a true freeze.
    pub gt_windows: usize,
    /// Windows with an estimated freeze.
    pub est_windows: usize,
    /// True freezes matched by an estimate (within the slack).
    pub matched_gt: usize,
    /// Estimated freezes matched by a truth.
    pub matched_est: usize,
    /// `matched_est / est_windows` (1.0 when nothing was estimated).
    pub precision: f64,
    /// `matched_gt / gt_windows` (1.0 when nothing was frozen).
    pub recall: f64,
}

/// One estimator's scores over a window pool.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorScore {
    /// Estimator name.
    pub estimator: String,
    /// Send- and recv-tap bitrate errors pooled (the headline gate).
    pub bitrate: MetricScore,
    /// Send-tap bitrate errors alone.
    pub send_bitrate: MetricScore,
    /// Recv-tap bitrate errors alone.
    pub recv_bitrate: MetricScore,
    /// Decoded-FPS errors (recv tap only).
    pub fps: MetricScore,
    /// Freeze precision/recall (recv tap only).
    pub freeze: FreezeScore,
}

/// Pooled absolute relative bitrate errors of one estimator over joined
/// rows — send and recv taps alike, with the same near-zero ground-truth
/// floor [`score`] applies. The raw pool lets callers (e.g. the
/// fingerprint-routed comparison) merge errors across differently-routed
/// scenario groups before taking a median.
pub fn bitrate_errors(rows: &[WindowRow], est: &dyn Estimator) -> Vec<f64> {
    let rel = |est: f64, gt: f64| (est - gt).abs() / gt;
    let mut errs = Vec::new();
    for row in rows {
        if let Some(gt) = row.gt_send_mbps {
            if gt >= MIN_GT_MBPS {
                errs.push(rel(est.estimate(&row.send).media_mbps, gt));
            }
        }
        if let Some(gt) = row.gt_recv_mbps {
            if gt >= MIN_GT_MBPS {
                errs.push(rel(est.estimate(&row.recv).media_mbps, gt));
            }
        }
    }
    errs
}

/// Score one estimator over joined rows.
pub fn score(rows: &[WindowRow], est: &dyn Estimator) -> EstimatorScore {
    let rel = |est: f64, gt: f64| (est - gt).abs() / gt;
    let mut send_errs = Vec::new();
    let mut recv_errs = Vec::new();
    let mut fps_errs = Vec::new();
    // Freeze-positive windows, per scenario boundary-safe keying.
    let mut gt_pos: Vec<(&str, u64)> = Vec::new();
    let mut est_pos: Vec<(&str, u64)> = Vec::new();
    for row in rows {
        let e_send = est.estimate(&row.send);
        let e_recv = est.estimate(&row.recv);
        if let Some(gt) = row.gt_send_mbps {
            if gt >= MIN_GT_MBPS {
                send_errs.push(rel(e_send.media_mbps, gt));
            }
        }
        if let Some(gt) = row.gt_recv_mbps {
            if gt >= MIN_GT_MBPS {
                recv_errs.push(rel(e_recv.media_mbps, gt));
            }
        }
        if let Some(gt) = row.gt_frames {
            if gt >= MIN_GT_FRAMES {
                fps_errs.push(rel(e_recv.fps, gt as f64));
            }
        }
        if row.gt_freeze_count.unwrap_or(0) > 0 {
            gt_pos.push((&row.scenario, row.window));
        }
        if e_recv.freeze_count > 0 {
            est_pos.push((&row.scenario, row.window));
        }
    }
    let near =
        |a: &(&str, u64), b: &(&str, u64)| a.0 == b.0 && a.1.abs_diff(b.1) <= FREEZE_WINDOW_SLACK;
    let matched_gt = gt_pos
        .iter()
        .filter(|g| est_pos.iter().any(|e| near(g, e)))
        .count();
    let matched_est = est_pos
        .iter()
        .filter(|e| gt_pos.iter().any(|g| near(g, e)))
        .count();
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    let mut pooled = send_errs.clone();
    pooled.extend_from_slice(&recv_errs);
    EstimatorScore {
        estimator: est.name().to_string(),
        bitrate: MetricScore::from_errors(pooled),
        send_bitrate: MetricScore::from_errors(send_errs),
        recv_bitrate: MetricScore::from_errors(recv_errs),
        fps: MetricScore::from_errors(fps_errs),
        freeze: FreezeScore {
            gt_windows: gt_pos.len(),
            est_windows: est_pos.len(),
            matched_gt,
            matched_est,
            precision: ratio(matched_est, est_pos.len()),
            recall: ratio(matched_gt, gt_pos.len()),
        },
    }
}

/// Per-scenario bitrate summary (the EXPERIMENTS.md table rows).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScore {
    /// Scenario name.
    pub scenario: String,
    /// Joined windows.
    pub windows: usize,
    /// Median pooled bitrate error of the heuristic estimator.
    pub heuristic_bitrate_err: f64,
    /// Median pooled bitrate error of the calibrated linear estimator.
    pub calibrated_bitrate_err: f64,
    /// Median pooled bitrate error of the GBT estimator.
    pub gbt_bitrate_err: f64,
    /// True freeze windows in this scenario.
    pub gt_freeze_windows: usize,
}

/// The full validation report.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReport {
    /// Total joined windows.
    pub windows: usize,
    /// Pooled scores per estimator.
    pub estimators: Vec<EstimatorScore>,
    /// Per-scenario summaries, in suite order.
    pub scenarios: Vec<ScenarioScore>,
}

/// Score the suite with the heuristic, calibrated-linear, and GBT
/// estimators.
pub fn build_report(
    per_scenario_rows: &[Vec<WindowRow>],
    model: &LinearModel,
    gbt: &GbtModel,
) -> InferReport {
    let all: Vec<WindowRow> = per_scenario_rows.iter().flatten().cloned().collect();
    let heuristic = score(&all, &HeuristicEstimator);
    let calibrated = score(&all, model);
    let boosted = score(&all, gbt);
    let scenarios = per_scenario_rows
        .iter()
        .filter(|rows| !rows.is_empty())
        .map(|rows| ScenarioScore {
            scenario: rows[0].scenario.clone(),
            windows: rows.len(),
            heuristic_bitrate_err: score(rows, &HeuristicEstimator).bitrate.median_rel_err,
            calibrated_bitrate_err: score(rows, model).bitrate.median_rel_err,
            gbt_bitrate_err: score(rows, gbt).bitrate.median_rel_err,
            gt_freeze_windows: rows
                .iter()
                .filter(|r| r.gt_freeze_count.unwrap_or(0) > 0)
                .count(),
        })
        .collect();
    InferReport {
        windows: all.len(),
        estimators: vec![heuristic, calibrated, boosted],
        scenarios,
    }
}

/// Fit a calibration model from joined rows (bitrate on both taps, FPS
/// on the recv tap; see [`LinearModel::fit`]). Rows are weighted by
/// `1/truth²` so the fit minimizes relative error — the same quantity
/// the accuracy gates measure — with the truth floored to keep
/// near-outage windows from dominating.
pub fn fit_model(rows: &[WindowRow]) -> Option<LinearModel> {
    let rel_weight = |gt: f64, floor: f64| 1.0 / (gt.max(floor) * gt.max(floor));
    let mut bitrate: Vec<([f64; NUM_FEATURES], f64, f64)> = Vec::new();
    let mut fps: Vec<([f64; NUM_FEATURES], f64, f64)> = Vec::new();
    for row in rows {
        if let Some(gt) = row.gt_send_mbps {
            if gt >= MIN_GT_MBPS {
                bitrate.push((feature_vector(&row.send), gt, rel_weight(gt, 0.1)));
            }
        }
        if let Some(gt) = row.gt_recv_mbps {
            if gt >= MIN_GT_MBPS {
                bitrate.push((feature_vector(&row.recv), gt, rel_weight(gt, 0.1)));
            }
        }
        if let Some(gt) = row.gt_frames {
            if gt >= MIN_GT_FRAMES {
                fps.push((
                    feature_vector(&row.recv),
                    gt as f64,
                    rel_weight(gt as f64, 1.0),
                ));
            }
        }
    }
    LinearModel::fit(&bitrate, &fps, 1e-6)
}

/// Fit a GBT model from joined rows with the same target/weight layout
/// as [`fit_model`] (bitrate on both taps, FPS on the recv tap, `1/y²`
/// relative-error weights), over the richer [`gbt_feature_vector`].
/// Deterministic: rows are consumed in order and the trainer has no
/// randomness, so refitting on the same campaign reproduces the frozen
/// artifact byte for byte.
pub fn fit_gbt(rows: &[WindowRow]) -> Option<GbtModel> {
    let rel_weight = |gt: f64, floor: f64| 1.0 / (gt.max(floor) * gt.max(floor));
    let mut bitrate: Vec<([f64; NUM_GBT_FEATURES], f64, f64)> = Vec::new();
    let mut fps: Vec<([f64; NUM_GBT_FEATURES], f64, f64)> = Vec::new();
    for row in rows {
        if let Some(gt) = row.gt_send_mbps {
            if gt >= MIN_GT_MBPS {
                bitrate.push((gbt_feature_vector(&row.send), gt, rel_weight(gt, 0.1)));
            }
        }
        if let Some(gt) = row.gt_recv_mbps {
            if gt >= MIN_GT_MBPS {
                bitrate.push((gbt_feature_vector(&row.recv), gt, rel_weight(gt, 0.1)));
            }
        }
        if let Some(gt) = row.gt_frames {
            if gt >= MIN_GT_FRAMES {
                fps.push((
                    gbt_feature_vector(&row.recv),
                    gt as f64,
                    rel_weight(gt as f64, 1.0),
                ));
            }
        }
    }
    GbtModel::fit(&bitrate, &fps, &GbtParams::default())
}

/// Render the report as deterministic text.
pub fn render_infer_report(report: &InferReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "passive QoE inference: {} joined windows, {} scenarios\n",
        report.windows,
        report.scenarios.len()
    ));
    for est in &report.estimators {
        s.push_str(&format!("estimator `{}`:\n", est.estimator));
        for (label, m) in [
            ("bitrate (pooled)", &est.bitrate),
            ("bitrate (send)", &est.send_bitrate),
            ("bitrate (recv)", &est.recv_bitrate),
            ("fps (recv)", &est.fps),
        ] {
            s.push_str(&format!(
                "  {label:<16} n={:<5} median {:>6.1}%  mean {:>6.1}%  p90 {:>6.1}%\n",
                m.n,
                m.median_rel_err * 100.0,
                m.mean_rel_err * 100.0,
                m.deciles[9] * 100.0,
            ));
        }
        let f = &est.freeze;
        s.push_str(&format!(
            "  freeze           gt={} est={} precision {:.2} recall {:.2}\n",
            f.gt_windows, f.est_windows, f.precision, f.recall
        ));
    }
    s.push_str("per scenario (median pooled bitrate error):\n");
    for sc in &report.scenarios {
        s.push_str(&format!(
            "  {:<22} windows={:<4} heuristic {:>6.1}%  calibrated {:>6.1}%  gbt {:>6.1}%  \
             freeze-windows={}\n",
            sc.scenario,
            sc.windows,
            sc.heuristic_bitrate_err * 100.0,
            sc.calibrated_bitrate_err * 100.0,
            sc.gbt_bitrate_err * 100.0,
            sc.gt_freeze_windows
        ));
    }
    s
}

/// Serialize the report as a stable JSON artifact (fixed key order).
pub fn infer_report_json(report: &InferReport) -> String {
    use serde_json::{Map, Value};
    let metric = |m: &MetricScore| {
        let mut o = Map::new();
        o.insert("n".to_string(), Value::U64(m.n as u64));
        o.insert("median_rel_err".to_string(), Value::F64(m.median_rel_err));
        o.insert("mean_rel_err".to_string(), Value::F64(m.mean_rel_err));
        o.insert(
            "deciles".to_string(),
            Value::Array(m.deciles.iter().map(|&d| Value::F64(d)).collect()),
        );
        Value::Object(o)
    };
    let mut root = Map::new();
    root.insert(
        "schema".to_string(),
        Value::String("vcabench-infer-report/v1".to_string()),
    );
    root.insert("windows".to_string(), Value::U64(report.windows as u64));
    root.insert(
        "estimators".to_string(),
        Value::Array(
            report
                .estimators
                .iter()
                .map(|e| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(e.estimator.clone()));
                    o.insert("bitrate".to_string(), metric(&e.bitrate));
                    o.insert("send_bitrate".to_string(), metric(&e.send_bitrate));
                    o.insert("recv_bitrate".to_string(), metric(&e.recv_bitrate));
                    o.insert("fps".to_string(), metric(&e.fps));
                    let f = &e.freeze;
                    let mut fz = Map::new();
                    fz.insert("gt_windows".to_string(), Value::U64(f.gt_windows as u64));
                    fz.insert("est_windows".to_string(), Value::U64(f.est_windows as u64));
                    fz.insert("precision".to_string(), Value::F64(f.precision));
                    fz.insert("recall".to_string(), Value::F64(f.recall));
                    o.insert("freeze".to_string(), Value::Object(fz));
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    root.insert(
        "scenarios".to_string(),
        Value::Array(
            report
                .scenarios
                .iter()
                .map(|s| {
                    let mut o = Map::new();
                    o.insert("name".to_string(), Value::String(s.scenario.clone()));
                    o.insert("windows".to_string(), Value::U64(s.windows as u64));
                    o.insert(
                        "heuristic_bitrate_err".to_string(),
                        Value::F64(s.heuristic_bitrate_err),
                    );
                    o.insert(
                        "calibrated_bitrate_err".to_string(),
                        Value::F64(s.calibrated_bitrate_err),
                    );
                    o.insert("gbt_bitrate_err".to_string(), Value::F64(s.gbt_bitrate_err));
                    o.insert(
                        "gt_freeze_windows".to_string(),
                        Value::U64(s.gt_freeze_windows as u64),
                    );
                    Value::Object(o)
                })
                .collect(),
        ),
    );
    let mut text = serde_json::to_string_pretty(&Value::Object(root)).expect("serializable report");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::unshaped_two_party;
    use vcabench_netsim::RateProfile;
    use vcabench_telemetry::{events_jsonl, replay_jsonl, EventLog};
    use vcabench_vca::VcaKind;

    #[test]
    fn tap_constants_match_the_topology_builders() {
        use vcabench_netsim::{topology, Network};
        use vcabench_transport::Wire;
        // Two-party: C1's access links are created first.
        let mut net: Network<Wire> = Network::new();
        let topo = topology::two_party(
            &mut net,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        assert_eq!(topo.c1_up.0, 0);
        assert_eq!(topo.c1_down.0, 1);
        // Competition: the shared bottleneck comes after C1's and F1's
        // duplex access links.
        let mut net: Network<Wire> = Network::new();
        let topo = topology::competition(
            &mut net,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        assert_eq!(topo.bottleneck_up.0, 4);
        assert_eq!(topo.bottleneck_down.0, 5);
        // Multiparty: per-client uplink/downlink pairs, client 0 first.
        let mut net: Network<Wire> = Network::new();
        let topo = topology::multiparty(
            &mut net,
            4,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
        );
        assert_eq!(topo.uplinks[0].0, 0);
        assert_eq!(topo.downlinks[0].0, 1);
        // `wire_call` numbers C1's flows from base 10.
        let call = vcabench_vca::two_party_call(
            VcaKind::Meet,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
            1,
        );
        assert_eq!(call.handles.up_flows[0].0, 10);
        assert_eq!(call.handles.down_flows[0].0, 11);
    }

    #[test]
    fn live_and_offline_extraction_are_identical() {
        let spec = unshaped_two_party(VcaKind::Meet, 8.0, 7);
        let live = run_spec_infer(&spec);
        // Offline: capture the full event log of an identical run, then
        // replay the JSONL export through a fresh bank.
        let (tel, log) = Telemetry::with_log(EventLog::unbounded());
        crate::campaign::run_spec_telemetry(&spec, &tel);
        let jsonl = events_jsonl(&log.borrow());
        let taps = taps_for(&spec);
        let mut bank = TapBank::new(&[taps.send, taps.recv]);
        replay_jsonl(&jsonl, &mut bank).expect("replay");
        let offline = bank.finish(live.duration);
        assert_eq!(live.send, offline[0]);
        assert_eq!(live.recv, offline[1]);
        assert!(!live.send.is_empty());
    }

    #[test]
    fn joined_rows_score_sanely_on_a_short_call() {
        let spec = unshaped_two_party(VcaKind::Meet, 12.0, 3);
        let rows = join_windows("two_party_meet", &run_spec_infer(&spec));
        assert!(!rows.is_empty());
        // Window 0 has no sample at its left endpoint: ground truth None.
        assert!(rows[0].gt_send_mbps.is_none());
        let with_gt = rows.iter().filter(|r| r.gt_recv_mbps.is_some()).count();
        assert!(with_gt >= 8, "most windows join: {with_gt}");
        // Meet sends little FEC, so even the heuristic is close.
        let s = score(&rows, &HeuristicEstimator);
        assert!(
            s.recv_bitrate.median_rel_err < 0.15,
            "recv bitrate err {}",
            s.recv_bitrate.median_rel_err
        );
        assert!(
            s.fps.median_rel_err < 0.25,
            "fps err {}",
            s.fps.median_rel_err
        );
        // Unconstrained call: no freezes on either side.
        assert_eq!(s.freeze.gt_windows, 0);
        assert_eq!(s.freeze.recall, 1.0);
    }

    #[test]
    fn suite_output_is_independent_of_jobs() {
        let scenarios: Vec<(String, ScenarioSpec)> = vec![
            (
                "meet".to_string(),
                unshaped_two_party(VcaKind::Meet, 6.0, 1),
            ),
            (
                "zoom".to_string(),
                unshaped_two_party(VcaKind::Zoom, 6.0, 2),
            ),
            (
                "teams".to_string(),
                unshaped_two_party(VcaKind::Teams, 6.0, 3),
            ),
        ];
        let one = infer_suite(&scenarios, 1);
        let many = infer_suite(&scenarios, 4);
        assert_eq!(one, many);
        let model = LinearModel::builtin();
        let gbt = GbtModel::builtin();
        let r1 = build_report(&one, &model, &gbt);
        let r2 = build_report(&many, &model, &gbt);
        assert_eq!(infer_report_json(&r1), infer_report_json(&r2));
        assert_eq!(render_infer_report(&r1), render_infer_report(&r2));
    }

    #[test]
    fn metric_score_percentiles_are_deterministic() {
        let m = MetricScore::from_errors(vec![0.5, 0.1, 0.3, 0.2, 0.4]);
        assert_eq!(m.n, 5);
        assert!((m.median_rel_err - 0.3).abs() < 1e-12);
        assert!((m.mean_rel_err - 0.3).abs() < 1e-12);
        assert_eq!(m.deciles.len(), 11);
        assert!((m.deciles[0] - 0.1).abs() < 1e-12);
        assert!((m.deciles[10] - 0.5).abs() < 1e-12);
        let empty = MetricScore::from_errors(vec![]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.median_rel_err, 0.0);
    }
}
