//! Traced execution: per-run telemetry artifacts next to the
//! content-addressed result cache.
//!
//! `repro campaign --trace-dir DIR` routes every run through
//! [`run_spec_traced`], which attaches an unbounded event log, executes
//! the scenario, and writes three files named by the run's deterministic
//! label:
//!
//! - `<label>.events.jsonl` — the versioned event trace
//!   (see [`vcabench_telemetry::validate_event_line`] for the schema);
//! - `<label>.series.csv` — the run's headline time series;
//! - `<label>.manifest.json` — a [`RunManifest`] tying the trace to the
//!   spec hash and seed of its cache entry.
//!
//! All artifact bytes are pure functions of the spec, so a traced
//! campaign produces byte-identical files regardless of `--jobs`.

use std::path::Path;

use vcabench_campaign::{
    content_hash, run_cached_with, run_indexed, CampaignSpec, CampaignSummary, ExpandedRun,
    ScenarioOutcome, ScenarioSpec,
};
use vcabench_telemetry::{
    events_jsonl, manifest_json, series_csv, EventLog, RunManifest, Telemetry,
};

use crate::campaign::run_spec_telemetry;

/// Execute one scenario with an unbounded event log attached, then write
/// its three trace artifacts under `trace_dir`.
///
/// Panics on I/O errors — a traced run whose evidence cannot be written
/// is useless, and the campaign executor has no error channel per run.
pub fn run_spec_traced(label: &str, spec: &ScenarioSpec, trace_dir: &Path) -> ScenarioOutcome {
    let (tel, log) = Telemetry::with_log(EventLog::unbounded());
    let outcome = run_spec_telemetry(spec, &tel);
    write_run_artifacts(label, spec, &log.borrow(), &outcome, trace_dir);
    outcome
}

/// Write `<label>.events.jsonl`, `<label>.series.csv` and
/// `<label>.manifest.json` under `dir`.
fn write_run_artifacts(
    label: &str,
    spec: &ScenarioSpec,
    log: &EventLog,
    outcome: &ScenarioOutcome,
    dir: &Path,
) {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("create trace dir {}: {e}", dir.display()));
    let manifest = RunManifest::for_run(label, &content_hash(spec), spec.seed(), log);
    let files = [
        (format!("{label}.events.jsonl"), events_jsonl(log)),
        (format!("{label}.series.csv"), outcome_csv(outcome)),
        (format!("{label}.manifest.json"), manifest_json(&manifest)),
    ];
    for (name, body) in files {
        let path = dir.join(name);
        std::fs::write(&path, body)
            .unwrap_or_else(|e| panic!("write trace artifact {}: {e}", path.display()));
    }
}

/// The headline time series of an outcome as a CSV document.
fn outcome_csv(outcome: &ScenarioOutcome) -> String {
    match outcome {
        ScenarioOutcome::TwoParty(r) => {
            let rows: Vec<Vec<f64>> = r
                .up_series
                .iter()
                .enumerate()
                .map(|(i, &(t, up))| vec![t, up, r.down_series.get(i).map_or(0.0, |s| s.1)])
                .collect();
            series_csv(&["t_secs", "up_mbps", "down_mbps"], &rows)
        }
        ScenarioOutcome::Competition(r) => {
            let at = |series: &[(f64, f64)], i: usize| series.get(i).map_or(0.0, |s| s.1);
            let rows: Vec<Vec<f64>> = r
                .inc_up
                .iter()
                .enumerate()
                .map(|(i, &(t, inc_up))| {
                    vec![
                        t,
                        inc_up,
                        at(&r.inc_down, i),
                        at(&r.comp_up, i),
                        at(&r.comp_down, i),
                    ]
                })
                .collect();
            series_csv(
                &[
                    "t_secs",
                    "inc_up_mbps",
                    "inc_down_mbps",
                    "comp_up_mbps",
                    "comp_down_mbps",
                ],
                &rows,
            )
        }
        ScenarioOutcome::Multiparty(r) => series_csv(
            &["c1_up_mbps", "c1_down_mbps"],
            &[vec![r.c1_up_mbps, r.c1_down_mbps]],
        ),
    }
}

/// Like [`crate::campaign::run_campaign_cached`], writing per-run trace
/// artifacts under `trace_dir`.
///
/// The result cache skips runs whose outcome is already stored, but a
/// trace is evidence about *this* invocation's artifacts: after the cached
/// pass, any run whose manifest is missing from `trace_dir` (served from
/// cache, or sharing a content hash with an earlier label) is re-simulated
/// just to produce its artifacts. Artifact bytes are pure in the spec, so
/// the directory converges to the same content regardless of cache state
/// or `jobs`.
pub fn run_campaign_cached_traced(
    campaign: &CampaignSpec,
    jobs: usize,
    dir: &Path,
    rerun: bool,
    trace_dir: &Path,
) -> Result<CampaignSummary, String> {
    let summary = run_cached_with(campaign, jobs, dir, rerun, &|run: &ExpandedRun| {
        run_spec_traced(&run.label, &run.spec, trace_dir)
    })?;
    let missing: Vec<ExpandedRun> = campaign
        .expand()?
        .into_iter()
        .filter(|run| {
            !trace_dir
                .join(format!("{}.manifest.json", run.label))
                .exists()
        })
        .collect();
    run_indexed(missing.len(), jobs, |i| {
        run_spec_traced(&missing[i].label, &missing[i].spec, trace_dir);
    });
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_campaign::{MultipartyRecord, TwoPartyRecord};

    #[test]
    fn outcome_csv_shapes() {
        let two = ScenarioOutcome::TwoParty(TwoPartyRecord {
            steady_up_mbps: 1.0,
            steady_down_mbps: 1.0,
            ttr_secs: None,
            nominal_mbps: None,
            firs_received: 0,
            freeze_secs: 0.0,
            frames_decoded: 0,
            target_series: vec![],
            up_series: vec![(0.0, 0.5), (0.1, 0.75)],
            down_series: vec![(0.0, 1.5), (0.1, 1.25)],
        });
        assert_eq!(
            outcome_csv(&two),
            "t_secs,up_mbps,down_mbps\n0,0.5,1.5\n0.1,0.75,1.25\n"
        );
        let multi = ScenarioOutcome::Multiparty(MultipartyRecord {
            c1_up_mbps: 2.5,
            c1_down_mbps: 5.0,
        });
        assert_eq!(outcome_csv(&multi), "c1_up_mbps,c1_down_mbps\n2.5,5\n");
    }
}
