//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes a `Config` (with a `quick()` preset), a `run`
//! function returning a serde-serializable result, and a `print` renderer
//! producing the same rows/series the paper reports.

pub mod ext;
pub mod fig1;
pub mod fig12_13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig4_5_6;
pub mod fig8_to_11;
pub mod table2;
