//! **Table 2** — unconstrained network utilization.
//!
//! Paper values (Mbps): Meet 0.95↑/0.84↓, Teams 1.40↑/1.86↓, Zoom 0.78↑/0.95↓.
//! Two-party call on an unconstrained (1 Gbps) access link; average
//! utilization of C1's uplink and downlink over the steady part of the call.

use serde::Serialize;
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_stats::ci90;
use vcabench_vca::VcaKind;

use crate::run::{run_two_party, TwoPartyOutcome};

/// Parameters of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Call length (paper: 2.5 minutes).
    pub call: SimDuration,
    /// Repetitions (paper: 5).
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            call: SimDuration::from_secs(150),
            reps: 5,
            seed: 42,
        }
    }
}

impl Table2Config {
    /// Reduced preset for tests and benches.
    pub fn quick() -> Self {
        Table2Config {
            call: SimDuration::from_secs(60),
            reps: 1,
            seed: 42,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// VCA name.
    pub vca: String,
    /// Mean upstream utilization, Mbps.
    pub up_mbps: f64,
    /// 90% CI half-width on the upstream mean.
    pub up_ci: f64,
    /// Mean downstream utilization, Mbps.
    pub down_mbps: f64,
    /// 90% CI half-width on the downstream mean.
    pub down_ci: f64,
}

/// Full Table 2 result.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// One row per VCA.
    pub rows: Vec<Table2Row>,
}

/// Run the experiment.
pub fn run(cfg: &Table2Config) -> Table2Result {
    let mut rows = Vec::new();
    for kind in VcaKind::NATIVE {
        let mut ups = Vec::new();
        let mut downs = Vec::new();
        for rep in 0..cfg.reps {
            let out = run_two_party(
                kind,
                RateProfile::constant_mbps(1000.0),
                RateProfile::constant_mbps(1000.0),
                cfg.call,
                cfg.seed + rep,
            );
            let settle = SimTime::ZERO + cfg.call / 5;
            let end = out.duration;
            ups.push(TwoPartyOutcome::rate_between(&out.up_series, settle, end));
            downs.push(TwoPartyOutcome::rate_between(&out.down_series, settle, end));
        }
        let u = ci90(&ups);
        let d = ci90(&downs);
        rows.push(Table2Row {
            vca: kind.name().to_string(),
            up_mbps: u.mean,
            up_ci: u.hi - u.mean,
            down_mbps: d.mean,
            down_ci: d.hi - d.mean,
        });
    }
    Table2Result { rows }
}

/// Render the table like the paper's.
pub fn print(result: &Table2Result) {
    println!("Table 2: Unconstrained network utilization (Mbps)");
    println!("{:<8} {:>10} {:>12}", "VCA", "Upstream", "Downstream");
    for r in &result.rows {
        println!(
            "{:<8} {:>6.2}±{:<4.2} {:>6.2}±{:<4.2}",
            r.vca, r.up_mbps, r.up_ci, r.down_mbps, r.down_ci
        );
    }
    println!("(paper:  Meet 0.95/0.84, Teams 1.40/1.86, Zoom 0.78/0.95)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rep_rows_are_well_formed() {
        let result = run(&Table2Config::quick());
        assert_eq!(result.rows.len(), VcaKind::NATIVE.len());
        for r in &result.rows {
            // One repetition: the CI half-width degenerates to exactly zero.
            assert_eq!(r.up_ci, 0.0, "{}: up CI {}", r.vca, r.up_ci);
            assert_eq!(r.down_ci, 0.0, "{}: down CI {}", r.vca, r.down_ci);
            // Every client both sends and receives real media.
            assert!(r.up_mbps > 0.1, "{}: up {}", r.vca, r.up_mbps);
            assert!(r.down_mbps > 0.1, "{}: down {}", r.vca, r.down_mbps);
            assert!(
                r.up_mbps < 10.0 && r.down_mbps < 10.0,
                "{}: implausible",
                r.vca
            );
        }
        let mut names: Vec<&str> = result.rows.iter().map(|r| r.vca.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), result.rows.len(), "duplicate VCA rows");
    }

    #[test]
    fn shape_matches_paper() {
        let result = run(&Table2Config::quick());
        let get = |name: &str| result.rows.iter().find(|r| r.vca == name).unwrap();
        let meet = get("Meet");
        let teams = get("Teams");
        let zoom = get("Zoom");
        // Teams uses by far the most bandwidth in both directions.
        assert!(teams.up_mbps > meet.up_mbps && teams.up_mbps > zoom.up_mbps);
        assert!(teams.down_mbps > meet.down_mbps && teams.down_mbps > zoom.down_mbps);
        // Meet sends more than it receives (simulcast up, one copy down).
        assert!(meet.up_mbps > meet.down_mbps);
        // Zoom receives more than it sends (server-side FEC).
        assert!(zoom.down_mbps > zoom.up_mbps);
        // Absolute bands.
        assert!(
            (0.7..=1.3).contains(&meet.up_mbps),
            "meet up {}",
            meet.up_mbps
        );
        assert!(
            (0.6..=1.2).contains(&zoom.up_mbps),
            "zoom up {}",
            zoom.up_mbps
        );
        assert!(
            (1.2..=2.2).contains(&teams.up_mbps),
            "teams up {}",
            teams.up_mbps
        );
    }
}
