//! **Figures 8–11** — VCA vs. VCA competition on a shared bottleneck (§5.1).
//!
//! Fig 7's setup: incumbent call (C1↔C2) and competing call (F1↔F2) share a
//! symmetrically shaped bottleneck. Fig 8 (uplink shares, 0.5 Mbps) and
//! Fig 10 (downlink shares) are box plots over repetitions; Fig 9 and 11
//! are single-run timelines.
//!
//! Headline shapes: Zoom is aggressive even against itself (incumbent
//! ≥ ~70 %); Meet shares fairly with Meet/Teams but backs off hard when a
//! Zoom client joins; Teams is passive on the downlink.

use serde::Serialize;
use vcabench_campaign::{
    Axes, CampaignSpec, CompetitionSpec, CompetitorSpec, ScenarioOutcome, ScenarioSpec,
    ScenarioTemplate, SeedAxis,
};
use vcabench_simcore::SimTime;
use vcabench_stats::{box_stats, BoxStats};
use vcabench_vca::VcaKind;

use crate::run::{run_competition, CompetitionConfig, Competitor};

/// Parameters of the VCA-vs-VCA study.
#[derive(Debug, Clone)]
pub struct VcaCompetitionConfig {
    /// Bottleneck capacity, Mbps (paper sweeps {0.5, 1, 2, 3, 4, 5}; the
    /// box plots are at 0.5).
    pub capacity_mbps: f64,
    /// Repetitions (paper: 3).
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for VcaCompetitionConfig {
    fn default() -> Self {
        VcaCompetitionConfig {
            capacity_mbps: 0.5,
            reps: 3,
            seed: 81,
        }
    }
}

impl VcaCompetitionConfig {
    /// Reduced preset.
    pub fn quick() -> Self {
        VcaCompetitionConfig {
            capacity_mbps: 0.5,
            reps: 1,
            seed: 81,
        }
    }
}

/// Shares for one (incumbent, competitor) pairing.
#[derive(Debug, Clone, Serialize)]
pub struct PairShares {
    /// Incumbent VCA.
    pub incumbent: String,
    /// Competitor VCA.
    pub competitor: String,
    /// Incumbent's uplink share per repetition.
    pub up_shares: Vec<f64>,
    /// Incumbent's downlink share per repetition.
    pub down_shares: Vec<f64>,
}

impl PairShares {
    /// Box statistics of the uplink shares (Fig 8).
    pub fn up_box(&self) -> BoxStats {
        box_stats(&self.up_shares)
    }
    /// Box statistics of the downlink shares (Fig 10).
    pub fn down_box(&self) -> BoxStats {
        box_stats(&self.down_shares)
    }
    /// Mean uplink share.
    pub fn up_mean(&self) -> f64 {
        vcabench_stats::mean(&self.up_shares)
    }
    /// Mean downlink share.
    pub fn down_mean(&self) -> f64 {
        vcabench_stats::mean(&self.down_shares)
    }
}

/// All pairings (Figs 8 and 10 combined).
#[derive(Debug, Clone, Serialize)]
pub struct VcaCompetitionResult {
    /// Bottleneck capacity used.
    pub capacity_mbps: f64,
    /// Every (incumbent, competitor) pairing.
    pub pairs: Vec<PairShares>,
}

impl VcaCompetitionResult {
    /// Look up a pairing.
    pub fn pair(&self, incumbent: &str, competitor: &str) -> Option<&PairShares> {
        self.pairs
            .iter()
            .find(|p| p.incumbent == incumbent && p.competitor == competitor)
    }
}

/// Run all 9 pairings.
pub fn run(cfg: &VcaCompetitionConfig) -> VcaCompetitionResult {
    let mut pairs = Vec::new();
    for incumbent in VcaKind::NATIVE {
        for competitor in VcaKind::NATIVE {
            let mut up_shares = Vec::new();
            let mut down_shares = Vec::new();
            for rep in 0..cfg.reps {
                let ccfg = CompetitionConfig::paper(
                    incumbent,
                    Competitor::Vca(competitor),
                    cfg.capacity_mbps,
                    cfg.seed + rep,
                );
                let out = run_competition(&ccfg);
                // Measure over the early contention window. (Deviation note:
                // in this model the loss-feedback dynamics slowly erode a
                // same-VCA incumbent's advantage and can even flip the winner
                // after ~60 s; the paper's incumbents held their advantage
                // for the full 120 s. Shares here are measured over the first
                // 45 s of competition. See EXPERIMENTS.md.)
                let from = SimTime::ZERO
                    + ccfg.competitor_start
                    + vcabench_simcore::SimDuration::from_secs(3);
                let to = from + vcabench_simcore::SimDuration::from_secs(45);
                up_shares.push(out.up_share(from, to));
                down_shares.push(out.down_share(from, to));
            }
            pairs.push(PairShares {
                incumbent: incumbent.name().to_string(),
                competitor: competitor.name().to_string(),
                up_shares,
                down_shares,
            });
        }
    }
    VcaCompetitionResult {
        capacity_mbps: cfg.capacity_mbps,
        pairs,
    }
}

/// The 9-pairing study as a declarative campaign: one template whose axes
/// expand incumbent → competitor → seed, matching [`run`]'s loop order.
pub fn campaign_spec(cfg: &VcaCompetitionConfig) -> CampaignSpec {
    CampaignSpec {
        name: "fig8_10".to_string(),
        scenarios: vec![ScenarioTemplate {
            label: Some("fig8".to_string()),
            base: ScenarioSpec::Competition(CompetitionSpec {
                incumbent: VcaKind::NATIVE[0],
                competitor: CompetitorSpec::Vca(VcaKind::NATIVE[0]),
                capacity_mbps: cfg.capacity_mbps,
                competitor_start_secs: None,
                competitor_duration_secs: None,
                total_secs: None,
                seed: cfg.seed,
            }),
            axes: Some(Axes {
                kinds: Some(VcaKind::NATIVE.to_vec()),
                up_mbps: None,
                down_mbps: None,
                capacity_mbps: None,
                competitors: Some(VcaKind::NATIVE.map(CompetitorSpec::Vca).to_vec()),
                seeds: Some(SeedAxis::Range {
                    base: cfg.seed,
                    count: cfg.reps,
                }),
            }),
        }],
    }
}

/// Run the 9 pairings through the campaign engine on `jobs` workers.
/// Numerically identical to [`run`] — the runner measures shares over the
/// same early contention window.
pub fn run_campaign(cfg: &VcaCompetitionConfig, jobs: usize) -> VcaCompetitionResult {
    let results =
        crate::campaign::run_campaign(&campaign_spec(cfg), jobs).expect("fig8 campaign expands");
    let shares: Vec<(f64, f64)> = results
        .iter()
        .map(|r| match &r.outcome {
            ScenarioOutcome::Competition(c) => (c.up_share, c.down_share),
            other => panic!("fig8 expects competition outcomes, got {other:?}"),
        })
        .collect();
    let reps = cfg.reps as usize;
    let mut pairs = Vec::new();
    for (block, incumbent) in VcaKind::NATIVE.iter().enumerate() {
        for (slot, competitor) in VcaKind::NATIVE.iter().enumerate() {
            let offset = (block * VcaKind::NATIVE.len() + slot) * reps;
            let window = &shares[offset..offset + reps];
            pairs.push(PairShares {
                incumbent: incumbent.name().to_string(),
                competitor: competitor.name().to_string(),
                up_shares: window.iter().map(|&(up, _)| up).collect(),
                down_shares: window.iter().map(|&(_, down)| down).collect(),
            });
        }
    }
    VcaCompetitionResult {
        capacity_mbps: cfg.capacity_mbps,
        pairs,
    }
}

/// Capacity sweep of a single pairing (the paper's text: "VCAs can achieve
/// their nominal bitrate when the link capacity is 4 Mbps or greater").
#[derive(Debug, Clone, Serialize)]
pub struct CapacitySweep {
    /// Incumbent VCA.
    pub incumbent: String,
    /// Competitor VCA.
    pub competitor: String,
    /// (capacity, incumbent uplink Mbps, competitor uplink Mbps) rows.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Sweep the bottleneck capacity for a pairing and report absolute rates;
/// at high capacities both calls should reach their nominal bitrates.
pub fn run_capacity_sweep(
    incumbent: VcaKind,
    competitor: VcaKind,
    caps: &[f64],
    seed: u64,
) -> CapacitySweep {
    let mut rows = Vec::new();
    for &cap in caps {
        let ccfg = CompetitionConfig::paper(incumbent, Competitor::Vca(competitor), cap, seed);
        let out = run_competition(&ccfg);
        let from =
            SimTime::ZERO + ccfg.competitor_start + vcabench_simcore::SimDuration::from_secs(15);
        let to = SimTime::ZERO + ccfg.competitor_start + ccfg.competitor_duration;
        rows.push((
            cap,
            crate::run::TwoPartyOutcome::rate_between(&out.inc_up, from, to),
            crate::run::TwoPartyOutcome::rate_between(&out.comp_up, from, to),
        ));
    }
    CapacitySweep {
        incumbent: incumbent.name().into(),
        competitor: competitor.name().into(),
        rows,
    }
}

/// Fig 9/11-style single-run timelines for a pairing.
#[derive(Debug, Clone, Serialize)]
pub struct PairTimeline {
    /// Incumbent VCA.
    pub incumbent: String,
    /// Competitor VCA.
    pub competitor: String,
    /// Capacity, Mbps.
    pub capacity_mbps: f64,
    /// Incumbent uplink Mbps per 100 ms bin.
    pub inc_up: Vec<f64>,
    /// Competitor uplink.
    pub comp_up: Vec<f64>,
    /// Incumbent downlink.
    pub inc_down: Vec<f64>,
    /// Competitor downlink.
    pub comp_down: Vec<f64>,
}

/// Run a single pairing and keep its timelines (Fig 9 at 0.5 Mbps,
/// Fig 11 at 1 Mbps).
pub fn run_timeline(
    incumbent: VcaKind,
    competitor: VcaKind,
    capacity_mbps: f64,
    seed: u64,
) -> PairTimeline {
    let ccfg =
        CompetitionConfig::paper(incumbent, Competitor::Vca(competitor), capacity_mbps, seed);
    let out = run_competition(&ccfg);
    PairTimeline {
        incumbent: incumbent.name().to_string(),
        competitor: competitor.name().to_string(),
        capacity_mbps,
        inc_up: out.inc_up,
        comp_up: out.comp_up,
        inc_down: out.inc_down,
        comp_down: out.comp_down,
    }
}

/// Render the share tables.
pub fn print(result: &VcaCompetitionResult) {
    println!(
        "Fig 8/10: incumbent link share under competition at {} Mbps (white box = incumbent)",
        result.capacity_mbps
    );
    println!(
        "{:<10} {:<10} {:>18} {:>18}",
        "incumbent", "competitor", "up share (med)", "down share (med)"
    );
    for p in &result.pairs {
        println!(
            "{:<10} {:<10} {:>18.2} {:>18.2}",
            p.incumbent,
            p.competitor,
            p.up_box().median,
            p.down_box().median
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shapes() {
        let r = run(&VcaCompetitionConfig::quick());
        // Zoom dominates an incumbent Meet...
        let meet_vs_zoom = r.pair("Meet", "Zoom").unwrap().up_mean();
        assert!(
            meet_vs_zoom < 0.45,
            "Meet backs off to Zoom: {meet_vs_zoom}"
        );
        // ...and holds ≥60% as the incumbent against Meet.
        let zoom_vs_meet = r.pair("Zoom", "Meet").unwrap().up_mean();
        assert!(
            zoom_vs_meet > 0.6,
            "Zoom incumbent dominates Meet: {zoom_vs_meet}"
        );
        // Meet shares with itself roughly fairly.
        let meet_meet = r.pair("Meet", "Meet").unwrap().up_mean();
        assert!(
            (0.35..=0.7).contains(&meet_meet),
            "Meet-Meet fair: {meet_meet}"
        );
        // Zoom is unfair even to itself (incumbent keeps the larger share;
        // the model's advantage is milder than the paper's 75%).
        let zoom_zoom = r.pair("Zoom", "Zoom").unwrap().up_mean();
        assert!(
            zoom_zoom > 0.50,
            "Zoom-Zoom incumbent advantage: {zoom_zoom}"
        );
    }

    #[test]
    fn campaign_route_matches_direct() {
        let cfg = VcaCompetitionConfig::quick();
        let direct = run(&cfg);
        let via_campaign = run_campaign(&cfg, 3);
        assert_eq!(direct.pairs.len(), via_campaign.pairs.len());
        for (a, b) in direct.pairs.iter().zip(&via_campaign.pairs) {
            assert_eq!(a.incumbent, b.incumbent);
            assert_eq!(a.competitor, b.competitor);
            assert_eq!(
                a.up_shares, b.up_shares,
                "{} vs {}",
                a.incumbent, a.competitor
            );
            assert_eq!(a.down_shares, b.down_shares);
        }
    }

    #[test]
    fn high_capacity_removes_contention() {
        // Paper: at ≥4 Mbps both calls reach nominal. Zoom+Zoom nominal sum
        // ≈ 1.7 Mbps, so already at 4 Mbps both run free.
        let sweep = run_capacity_sweep(VcaKind::Zoom, VcaKind::Zoom, &[0.5, 4.0], 9);
        let (_, inc_low, comp_low) = sweep.rows[0];
        let (_, inc_high, comp_high) = sweep.rows[1];
        assert!(
            inc_high > 0.7 && comp_high > 0.7,
            "nominal at 4 Mbps: {inc_high}/{comp_high}"
        );
        assert!(
            inc_low + comp_low < 0.62,
            "contended at 0.5: {inc_low}+{comp_low}"
        );
    }

    #[test]
    fn timelines_have_data() {
        let t = run_timeline(VcaKind::Zoom, VcaKind::Zoom, 0.5, 9);
        assert!(!t.inc_up.is_empty());
        let late = SimTime::from_secs(100);
        let end = SimTime::from_secs(150);
        let inc = crate::run::TwoPartyOutcome::rate_between(&t.inc_up, late, end);
        let comp = crate::run::TwoPartyOutcome::rate_between(&t.comp_up, late, end);
        assert!(inc > 0.0 && comp > 0.0, "both flows alive: {inc}/{comp}");
    }
}
