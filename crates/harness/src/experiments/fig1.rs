//! **Figure 1** — utilization under static shaping (§3.1).
//!
//! * (a) median sent bitrate vs. uplink capacity;
//! * (b) median received bitrate vs. downlink capacity (Meet's simulcast
//!   floor: utilization only 39–70 % below 0.8 Mbps, 0.19 Mbps at 0.5);
//! * (c) native vs. Chrome clients (Teams-Chrome well below Teams-native;
//!   Zoom's two clients indistinguishable).
//!
//! Paper shaping levels: {0.3, 0.4, …, 1.5, 2, 5, 10} Mbps, five 2.5-minute
//! calls each.

use serde::Serialize;
use vcabench_campaign::{
    Axes, CampaignSpec, ScenarioOutcome, ScenarioSpec, ScenarioTemplate, SeedAxis, TwoPartySpec,
};
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_stats::ci90;
use vcabench_vca::VcaKind;

use crate::run::{run_two_party, TwoPartyOutcome};

/// The paper's shaping ladder.
pub const PAPER_CAPS: &[f64] = &[
    0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0, 5.0, 10.0,
];

/// Shaped direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    /// Shape C1's uplink (Fig 1a / 2d–f / 3b).
    Up,
    /// Shape C1's downlink (Fig 1b / 2a–c / 3a).
    Down,
}

/// Parameters of the Fig 1 sweeps.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Capacities to sweep, Mbps.
    pub caps: Vec<f64>,
    /// Call length.
    pub call: SimDuration,
    /// Repetitions per point.
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            caps: PAPER_CAPS.to_vec(),
            call: SimDuration::from_secs(150),
            reps: 5,
            seed: 11,
        }
    }
}

impl Fig1Config {
    /// Reduced preset: a coarse ladder, one rep, shorter calls.
    pub fn quick() -> Self {
        Fig1Config {
            caps: vec![0.3, 0.5, 0.8, 1.0, 2.0, 10.0],
            call: SimDuration::from_secs(120),
            reps: 1,
            seed: 11,
        }
    }
}

/// One (vca, capacity) point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// VCA name.
    pub vca: String,
    /// Shaped capacity, Mbps.
    pub cap_mbps: f64,
    /// Median bitrate on the shaped link, Mbps (mean over reps).
    pub median_mbps: f64,
    /// 90% CI half-width over reps.
    pub ci: f64,
}

/// A full sweep (one panel of Fig 1).
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// Shaped direction.
    pub direction: Direction,
    /// All points, grouped by VCA then capacity.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Look up a point.
    pub fn get(&self, vca: &str, cap: f64) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.vca == vca && (p.cap_mbps - cap).abs() < 1e-9)
    }
}

/// Run one sweep for the given VCA set and direction.
pub fn run_sweep(cfg: &Fig1Config, kinds: &[VcaKind], direction: Direction) -> SweepResult {
    let mut points = Vec::new();
    for &kind in kinds {
        for &cap in &cfg.caps {
            let mut vals = Vec::new();
            for rep in 0..cfg.reps {
                let (up, down) = match direction {
                    Direction::Up => (
                        RateProfile::constant_mbps(cap),
                        RateProfile::constant_mbps(1000.0),
                    ),
                    Direction::Down => (
                        RateProfile::constant_mbps(1000.0),
                        RateProfile::constant_mbps(cap),
                    ),
                };
                let out = run_two_party(kind, up, down, cfg.call, cfg.seed + rep);
                let settle = SimTime::ZERO + cfg.call / 4;
                let series = match direction {
                    Direction::Up => &out.up_series,
                    Direction::Down => &out.down_series,
                };
                vals.push(TwoPartyOutcome::median_between(
                    series,
                    settle,
                    out.duration,
                ));
            }
            let s = ci90(&vals);
            points.push(SweepPoint {
                vca: kind.name().to_string(),
                cap_mbps: cap,
                median_mbps: s.mean,
                ci: s.hi - s.mean,
            });
        }
    }
    SweepResult { direction, points }
}

/// Figure 1 in full: (a) uplink, (b) downlink, (c) browser-vs-native uplink.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// Fig 1a.
    pub uplink: SweepResult,
    /// Fig 1b.
    pub downlink: SweepResult,
    /// Fig 1c (Zoom, Zoom-Chrome, Teams, Teams-Chrome).
    pub browser_native: SweepResult,
}

/// Run all three panels.
pub fn run(cfg: &Fig1Config) -> Fig1Result {
    Fig1Result {
        uplink: run_sweep(cfg, &VcaKind::NATIVE, Direction::Up),
        downlink: run_sweep(cfg, &VcaKind::NATIVE, Direction::Down),
        browser_native: run_sweep(
            cfg,
            &[
                VcaKind::Zoom,
                VcaKind::ZoomChrome,
                VcaKind::Teams,
                VcaKind::TeamsChrome,
            ],
            Direction::Up,
        ),
    }
}

/// The panel's VCA set.
fn panel_kinds(cfg_panel: Panel) -> Vec<VcaKind> {
    match cfg_panel {
        Panel::Uplink | Panel::Downlink => VcaKind::NATIVE.to_vec(),
        Panel::BrowserNative => vec![
            VcaKind::Zoom,
            VcaKind::ZoomChrome,
            VcaKind::Teams,
            VcaKind::TeamsChrome,
        ],
    }
}

#[derive(Debug, Clone, Copy)]
enum Panel {
    Uplink,
    Downlink,
    BrowserNative,
}

const PANELS: [Panel; 3] = [Panel::Uplink, Panel::Downlink, Panel::BrowserNative];

fn panel_template(cfg: &Fig1Config, panel: Panel) -> ScenarioTemplate {
    let (label, direction) = match panel {
        Panel::Uplink => ("fig1a", Direction::Up),
        Panel::Downlink => ("fig1b", Direction::Down),
        Panel::BrowserNative => ("fig1c", Direction::Up),
    };
    let kinds = panel_kinds(panel);
    let (up_axis, down_axis) = match direction {
        Direction::Up => (Some(cfg.caps.clone()), None),
        Direction::Down => (None, Some(cfg.caps.clone())),
    };
    ScenarioTemplate {
        label: Some(label.to_string()),
        base: ScenarioSpec::TwoParty(TwoPartySpec {
            kind: kinds[0],
            up: RateProfile::constant_mbps(1000.0),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs: cfg.call.as_secs_f64(),
            seed: cfg.seed,
            knobs: None,
        }),
        axes: Some(Axes {
            kinds: Some(kinds),
            up_mbps: up_axis,
            down_mbps: down_axis,
            capacity_mbps: None,
            competitors: None,
            seeds: Some(SeedAxis::Range {
                base: cfg.seed,
                count: cfg.reps,
            }),
        }),
    }
}

/// The Fig 1 sweeps as a declarative campaign: one template per panel,
/// expanded kinds → capacities → seeds to match [`run_sweep`]'s run order.
pub fn campaign_spec(cfg: &Fig1Config) -> CampaignSpec {
    CampaignSpec {
        name: "fig1".to_string(),
        scenarios: PANELS.iter().map(|&p| panel_template(cfg, p)).collect(),
    }
}

/// Run Fig 1 through the campaign engine on `jobs` workers. Numerically
/// identical to [`run`] — same runs, same seeds, same statistics.
pub fn run_campaign(cfg: &Fig1Config, jobs: usize) -> Fig1Result {
    let results =
        crate::campaign::run_campaign(&campaign_spec(cfg), jobs).expect("fig1 campaign expands");
    // Expansion order is panel → kind → capacity → seed, so the flat result
    // list slices directly back into the three panels.
    let steady: Vec<(f64, f64)> = results
        .iter()
        .map(|r| match &r.outcome {
            ScenarioOutcome::TwoParty(t) => (t.steady_up_mbps, t.steady_down_mbps),
            other => panic!("fig1 expects two-party outcomes, got {other:?}"),
        })
        .collect();
    let mut offset = 0;
    let mut panels = Vec::new();
    for panel in PANELS {
        let direction = match panel {
            Panel::Uplink | Panel::BrowserNative => Direction::Up,
            Panel::Downlink => Direction::Down,
        };
        let kinds = panel_kinds(panel);
        let mut points = Vec::new();
        for kind in &kinds {
            for &cap in &cfg.caps {
                let vals: Vec<f64> = steady[offset..offset + cfg.reps as usize]
                    .iter()
                    .map(|&(up, down)| match direction {
                        Direction::Up => up,
                        Direction::Down => down,
                    })
                    .collect();
                offset += cfg.reps as usize;
                let s = ci90(&vals);
                points.push(SweepPoint {
                    vca: kind.name().to_string(),
                    cap_mbps: cap,
                    median_mbps: s.mean,
                    ci: s.hi - s.mean,
                });
            }
        }
        panels.push(SweepResult { direction, points });
    }
    assert_eq!(offset, steady.len(), "campaign run count matches the grid");
    let browser_native = panels.pop().expect("three panels");
    let downlink = panels.pop().expect("three panels");
    let uplink = panels.pop().expect("three panels");
    Fig1Result {
        uplink,
        downlink,
        browser_native,
    }
}

fn print_sweep(title: &str, sweep: &SweepResult) {
    println!("{title}");
    let mut vcas: Vec<&str> = sweep.points.iter().map(|p| p.vca.as_str()).collect();
    vcas.dedup();
    print!("{:>6}", "cap");
    for v in &vcas {
        print!(" {v:>14}");
    }
    println!();
    let mut caps: Vec<f64> = sweep.points.iter().map(|p| p.cap_mbps).collect();
    caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    caps.dedup();
    for cap in caps {
        print!("{cap:>6.1}");
        for v in &vcas {
            if let Some(p) = sweep.get(v, cap) {
                print!(" {:>8.2}±{:<5.2}", p.median_mbps, p.ci);
            }
        }
        println!();
    }
}

/// Render all panels.
pub fn print(result: &Fig1Result) {
    print_sweep(
        "Fig 1a: median sent bitrate vs uplink capacity (Mbps)",
        &result.uplink,
    );
    print_sweep(
        "Fig 1b: median received bitrate vs downlink capacity (Mbps)",
        &result.downlink,
    );
    print_sweep(
        "Fig 1c: browser vs native clients, uplink (Mbps)",
        &result.browser_native,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_shapes() {
        let cfg = Fig1Config::quick();
        let sweep = run_sweep(&cfg, &VcaKind::NATIVE, Direction::Up);
        // Efficient utilization at 0.5 Mbps for Teams and Zoom (>85%), Meet
        // at least 60%.
        assert!(sweep.get("Teams", 0.5).unwrap().median_mbps > 0.42);
        assert!(sweep.get("Zoom", 0.5).unwrap().median_mbps > 0.42);
        // Meet's GCC sits at ~60-75% utilization in the 0.5 Mbps band in
        // this model (the paper measured >90%; see EXPERIMENTS.md).
        assert!(sweep.get("Meet", 0.5).unwrap().median_mbps > 0.24);
        // Nominal ordering at 10 Mbps: Teams > Meet > Zoom.
        let t = sweep.get("Teams", 10.0).unwrap().median_mbps;
        let m = sweep.get("Meet", 10.0).unwrap().median_mbps;
        let z = sweep.get("Zoom", 10.0).unwrap().median_mbps;
        assert!(t > m && m > z, "t={t} m={m} z={z}");
    }

    #[test]
    fn downlink_meet_floor() {
        let cfg = Fig1Config::quick();
        let sweep = run_sweep(&cfg, &[VcaKind::Meet], Direction::Down);
        // Meet's downlink floor: ~0.2-0.3 Mbps at 0.5 shaping (the low
        // simulcast copy), i.e. well under 70% utilization.
        let at_half = sweep.get("Meet", 0.5).unwrap().median_mbps;
        assert!(at_half < 0.40, "Meet downlink floor, got {at_half}");
        // Unconstrained downlink near its nominal 0.85.
        let at_ten = sweep.get("Meet", 10.0).unwrap().median_mbps;
        assert!(at_ten > 0.6, "Meet downlink nominal, got {at_ten}");
    }

    #[test]
    fn campaign_route_matches_direct() {
        let cfg = Fig1Config {
            caps: vec![0.5, 10.0],
            call: SimDuration::from_secs(40),
            reps: 2,
            seed: 11,
        };
        let direct = run(&cfg);
        let via_campaign = run_campaign(&cfg, 4);
        for (a, b) in [
            (&direct.uplink, &via_campaign.uplink),
            (&direct.downlink, &via_campaign.downlink),
            (&direct.browser_native, &via_campaign.browser_native),
        ] {
            assert_eq!(a.points.len(), b.points.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.vca, pb.vca);
                assert_eq!(pa.cap_mbps, pb.cap_mbps);
                assert_eq!(pa.median_mbps, pb.median_mbps, "{}@{}", pa.vca, pa.cap_mbps);
                assert_eq!(pa.ci, pb.ci);
            }
        }
    }

    #[test]
    fn chrome_teams_uses_less() {
        let cfg = Fig1Config::quick();
        let sweep = run_sweep(&cfg, &[VcaKind::Teams, VcaKind::TeamsChrome], Direction::Up);
        let native = sweep.get("Teams", 10.0).unwrap().median_mbps;
        let chrome = sweep.get("Teams-Chrome", 10.0).unwrap().median_mbps;
        assert!(
            chrome < native * 0.85,
            "Teams-Chrome {chrome} should sit below native {native}"
        );
    }
}
