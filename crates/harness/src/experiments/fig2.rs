//! **Figure 2** — video encoding parameters under throughput constraints
//! (§3.2), for the two clients whose WebRTC stats the paper can read:
//! Meet and Teams-Chrome.
//!
//! Panels (a–c): FPS, quantization parameter, frame width vs. *downstream*
//! capacity (receiver-side decoded stream). Panels (d–f): the same vs.
//! *upstream* capacity (sender-side encode).
//!
//! Shapes to reproduce: Teams-Chrome degrades all three together (and its
//! frame width *increases* again below 0.35 Mbps — the paper's suspected
//! bug); Meet holds QP/width and drops FPS in the 0.7–1.0 Mbps downstream
//! band, then switches to the low simulcast copy (width falls to 320, FPS
//! jumps back up).

use serde::Serialize;
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_vca::VcaKind;

use crate::experiments::fig1::Direction;
use crate::run::run_two_party;

/// Parameters of the Fig 2 sweeps.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Capacities, Mbps.
    pub caps: Vec<f64>,
    /// Call length.
    pub call: SimDuration,
    /// Repetitions.
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            caps: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.5, 2.0],
            call: SimDuration::from_secs(150),
            reps: 5,
            seed: 21,
        }
    }
}

impl Fig2Config {
    /// Reduced preset.
    pub fn quick() -> Self {
        Fig2Config {
            caps: vec![0.3, 0.5, 0.8, 1.0, 2.0],
            call: SimDuration::from_secs(120),
            reps: 1,
            seed: 21,
        }
    }
}

/// Mean encoding parameters at one point.
#[derive(Debug, Clone, Serialize)]
pub struct EncodingPoint {
    /// VCA name.
    pub vca: String,
    /// Shaped capacity, Mbps.
    pub cap_mbps: f64,
    /// Frames per second.
    pub fps: f64,
    /// Quantization parameter.
    pub qp: f64,
    /// Frame width, px.
    pub width: f64,
}

/// One direction's panel set.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Panels {
    /// Shaped direction.
    pub direction: Direction,
    /// All points.
    pub points: Vec<EncodingPoint>,
}

impl Fig2Panels {
    /// Look up a point.
    pub fn get(&self, vca: &str, cap: f64) -> Option<&EncodingPoint> {
        self.points
            .iter()
            .find(|p| p.vca == vca && (p.cap_mbps - cap).abs() < 1e-9)
    }
}

/// Full Fig 2 result: downstream panels (a–c) and upstream panels (d–f).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Result {
    /// Panels a–c.
    pub down: Fig2Panels,
    /// Panels d–f.
    pub up: Fig2Panels,
}

/// Run one direction.
pub fn run_direction(cfg: &Fig2Config, direction: Direction) -> Fig2Panels {
    let mut points = Vec::new();
    for kind in [VcaKind::Meet, VcaKind::TeamsChrome] {
        for &cap in &cfg.caps {
            let mut fps = Vec::new();
            let mut qp = Vec::new();
            let mut width = Vec::new();
            for rep in 0..cfg.reps {
                let (up, down) = match direction {
                    Direction::Up => (
                        RateProfile::constant_mbps(cap),
                        RateProfile::constant_mbps(1000.0),
                    ),
                    Direction::Down => (
                        RateProfile::constant_mbps(1000.0),
                        RateProfile::constant_mbps(cap),
                    ),
                };
                let out = run_two_party(kind, up, down, cfg.call, cfg.seed + rep);
                let settle = SimTime::ZERO + cfg.call / 4;
                // Downstream constraint: read what C1 *receives* (the stream
                // the SFU/sender adapted for it). Upstream constraint: read
                // what C1 *encodes*.
                for s in &out.c1_stats {
                    if s.t < settle {
                        continue;
                    }
                    match direction {
                        Direction::Down => {
                            if s.recv_fps > 0.0 && s.recv_width > 0 {
                                fps.push(s.recv_fps);
                                qp.push(s.recv_qp);
                                width.push(s.recv_width as f64);
                            }
                        }
                        Direction::Up => {
                            if s.send_fps > 0.0 && s.send_width > 0 {
                                fps.push(s.send_fps);
                                qp.push(s.send_qp);
                                width.push(s.send_width as f64);
                            }
                        }
                    }
                }
            }
            points.push(EncodingPoint {
                vca: kind.name().to_string(),
                cap_mbps: cap,
                fps: vcabench_stats::mean(&fps),
                qp: vcabench_stats::mean(&qp),
                width: vcabench_stats::mean(&width),
            });
        }
    }
    Fig2Panels { direction, points }
}

/// Run both directions.
pub fn run(cfg: &Fig2Config) -> Fig2Result {
    Fig2Result {
        down: run_direction(cfg, Direction::Down),
        up: run_direction(cfg, Direction::Up),
    }
}

fn print_panels(title: &str, p: &Fig2Panels) {
    println!("{title}");
    println!(
        "{:>6} {:>26} {:>26}",
        "cap", "Meet (fps/qp/width)", "Teams-Chrome (fps/qp/width)"
    );
    let mut caps: Vec<f64> = p.points.iter().map(|x| x.cap_mbps).collect();
    caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    caps.dedup();
    for cap in caps {
        print!("{cap:>6.1}");
        for vca in ["Meet", "Teams-Chrome"] {
            if let Some(pt) = p.get(vca, cap) {
                print!("    {:>5.1} / {:>4.1} / {:>5.0}", pt.fps, pt.qp, pt.width);
            }
        }
        println!();
    }
}

/// Render both directions.
pub fn print(result: &Fig2Result) {
    print_panels(
        "Fig 2a-c: encoding parameters vs downstream capacity",
        &result.down,
    );
    print_panels(
        "Fig 2d-f: encoding parameters vs upstream capacity",
        &result.up,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_downstream_simulcast_switch() {
        let cfg = Fig2Config::quick();
        let p = run_direction(&cfg, Direction::Down);
        // At 2 Mbps Meet's receiver sees the 640-wide high copy; at 0.5 the
        // SFU forwards the 320-wide low copy.
        let high = p.get("Meet", 2.0).unwrap();
        let low = p.get("Meet", 0.5).unwrap();
        assert!(high.width > 500.0, "high copy width {}", high.width);
        // The probing SFU occasionally tries the high copy, so the *mean*
        // received width sits a bit above the 320 px low copy.
        assert!(low.width < 460.0, "low copy width {}", low.width);
        // The low copy runs at full frame rate (the paper's surprising
        // "FPS increases as capacity falls further" observation).
        assert!(low.fps > 20.0, "low copy fps {}", low.fps);
    }

    #[test]
    fn teams_upstream_bug_width_rises_at_starvation() {
        let cfg = Fig2Config::quick();
        let p = run_direction(&cfg, Direction::Up);
        let at_05 = p.get("Teams-Chrome", 0.5).unwrap();
        let at_03 = p.get("Teams-Chrome", 0.3).unwrap();
        assert!(
            at_03.width > at_05.width,
            "the emulated Teams width bug: {} at 0.3 vs {} at 0.5",
            at_03.width,
            at_05.width
        );
        // FPS stays roughly constant for Teams.
        assert!((at_05.fps - at_03.fps).abs() < 8.0);
    }

    #[test]
    fn qp_rises_as_capacity_falls() {
        let cfg = Fig2Config::quick();
        let p = run_direction(&cfg, Direction::Up);
        // Meet adapts QP first (its width ladder is the simulcast pair), so
        // QP rises monotonically into the constraint.
        let lo = p.get("Meet", 0.5).unwrap().qp;
        let hi = p.get("Meet", 2.0).unwrap().qp;
        assert!(
            lo > hi,
            "Meet: qp at 0.5 ({lo}) must exceed qp at 2.0 ({hi})"
        );
        // Teams adapts QP *and* width together: within a resolution rung QP
        // rises, and across rungs the width falls — check the width arm.
        let w_lo = p.get("Teams-Chrome", 0.5).unwrap().width;
        let w_hi = p.get("Teams-Chrome", 2.0).unwrap().width;
        assert!(
            w_lo < w_hi,
            "Teams-Chrome: width at 0.5 ({w_lo}) below width at 2.0 ({w_hi})"
        );
    }
}
