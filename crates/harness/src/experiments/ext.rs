//! **Extension experiments** — the paper's §8 future-work directions,
//! implemented on the same substrate:
//!
//! * [`impairments`]: "Other network factors such as latency, packet loss,
//!   and jitter could affect VCA performance and utilization. Future work
//!   could explore the effects of these parameters." — utilization sweeps
//!   over added path latency and random loss.
//! * [`ablation`]: §3.2 suspects the Teams frame-width reversal at 0.3 Mbps
//!   is "a poor design decision or implementation bug" that causes its FIR
//!   storm. The model can run the counterfactual the paper could not:
//!   the same client with the bug disabled.

use serde::Serialize;
use vcabench_netsim::{topology, LinkConfig, Network, RateProfile};
use vcabench_simcore::{SimDuration, SimRng, SimTime};
use vcabench_transport::Wire;
use vcabench_vca::{wire_call, VcaClient, VcaKind, ViewMode};

/// Build a two-party call whose C1 access link carries extra one-way delay
/// and periodic loss, run it, and return (uplink Mbps, frames decoded by C2,
/// C2-side freeze seconds).
fn impaired_two_party(
    kind: VcaKind,
    up_mbps: f64,
    extra_delay: SimDuration,
    loss_rate: f64,
    jitter: SimDuration,
    duration: SimDuration,
    seed: u64,
) -> (f64, u64, f64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net: Network<Wire> = Network::new();
    let c1 = net.add_node();
    let router = net.add_node();
    let server = net.add_node();
    let c2 = net.add_node();

    let access_delay = topology::ACCESS_DELAY + extra_delay;
    let shaped_up = LinkConfig::mbps(up_mbps, access_delay)
        .with_queue_bytes(topology::ACCESS_QUEUE_BYTES)
        .with_loss_rate(loss_rate)
        .with_jitter(jitter);
    let shaped_down = LinkConfig::mbps(1000.0, access_delay)
        .with_queue_bytes(topology::ACCESS_QUEUE_BYTES)
        .with_loss_rate(loss_rate)
        .with_jitter(jitter);
    let fast = LinkConfig::mbps(1000.0, topology::WAN_DELAY).with_queue_bytes(1 << 20);

    let c1_up = net.add_link(c1, router, shaped_up);
    let c1_down = net.add_link(router, c1, shaped_down);
    let wan_up = net.add_link(router, server, fast.clone());
    let wan_down = net.add_link(server, router, fast.clone());
    let c2_up = net.add_link(c2, server, fast.clone());
    let c2_down = net.add_link(server, c2, fast);
    net.default_route(c1, c1_up);
    net.default_route(router, wan_up);
    net.route(router, c1, c1_down);
    net.default_route(c2, c2_up);
    net.route(server, c1, wan_down);
    net.route(server, c2, c2_down);

    wire_call(
        &mut net,
        kind,
        server,
        &[c1, c2],
        &[ViewMode::Gallery, ViewMode::Gallery],
        10,
        &mut rng,
    );
    let end = SimTime::ZERO + duration;
    net.run_until(end);
    let up = net
        .link(c1_up)
        .traces
        .total()
        .rate_mbps_between(SimTime::ZERO + duration / 4, end);
    let c2_agent: &VcaClient = net.agent(c2);
    let frames = c2_agent.frames_decoded_from(0);
    let freeze = c2_agent
        .primary_freeze()
        .map(|f| f.freeze_time.as_secs_f64())
        .unwrap_or(0.0);
    (up, frames, freeze)
}

/// One impairment point.
#[derive(Debug, Clone, Serialize)]
pub struct ImpairmentPoint {
    /// VCA name.
    pub vca: String,
    /// Extra one-way path delay, ms.
    pub extra_delay_ms: u64,
    /// Random loss rate on the access path.
    pub loss_rate: f64,
    /// Jitter amplitude, ms.
    pub jitter_ms: u64,
    /// C1 uplink utilization, Mbps.
    pub up_mbps: f64,
    /// Frames C2 decoded from C1.
    pub frames: u64,
    /// C2-side freeze time, seconds.
    pub freeze_secs: f64,
}

/// Impairment study result.
#[derive(Debug, Clone, Serialize)]
pub struct ImpairmentsResult {
    /// Latency sweep (loss = 0).
    pub latency: Vec<ImpairmentPoint>,
    /// Loss sweep (extra delay = 0).
    pub loss: Vec<ImpairmentPoint>,
    /// Jitter sweep (loss = 0, extra delay = 0).
    pub jitter: Vec<ImpairmentPoint>,
}

/// Parameters for the impairment sweeps.
#[derive(Debug, Clone)]
pub struct ImpairmentsConfig {
    /// Extra one-way delays to test, ms.
    pub delays_ms: Vec<u64>,
    /// Loss rates to test.
    pub loss_rates: Vec<f64>,
    /// Jitter amplitudes to test, ms.
    pub jitters_ms: Vec<u64>,
    /// Call length.
    pub call: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for ImpairmentsConfig {
    fn default() -> Self {
        ImpairmentsConfig {
            delays_ms: vec![0, 25, 50, 100, 200],
            loss_rates: vec![0.0, 0.005, 0.01, 0.02, 0.05],
            jitters_ms: vec![0, 10, 30, 60],
            call: SimDuration::from_secs(90),
            seed: 400,
        }
    }
}

impl ImpairmentsConfig {
    /// Reduced preset.
    pub fn quick() -> Self {
        ImpairmentsConfig {
            delays_ms: vec![0, 100],
            loss_rates: vec![0.0, 0.02],
            jitters_ms: vec![0, 30],
            call: SimDuration::from_secs(60),
            seed: 400,
        }
    }
}

/// The impairment experiments.
pub mod impairments {
    use super::*;

    /// Run both sweeps on an open (10 Mbps) uplink so impairments, not
    /// shaping, dominate.
    pub fn run(cfg: &ImpairmentsConfig) -> ImpairmentsResult {
        let mut latency = Vec::new();
        let mut loss = Vec::new();
        let mut jitter = Vec::new();
        for kind in VcaKind::NATIVE {
            for &d in &cfg.delays_ms {
                let (up, frames, freeze) = impaired_two_party(
                    kind,
                    10.0,
                    SimDuration::from_millis(d),
                    0.0,
                    SimDuration::ZERO,
                    cfg.call,
                    cfg.seed,
                );
                latency.push(ImpairmentPoint {
                    vca: kind.name().into(),
                    extra_delay_ms: d,
                    loss_rate: 0.0,
                    jitter_ms: 0,
                    up_mbps: up,
                    frames,
                    freeze_secs: freeze,
                });
            }
            for &p in &cfg.loss_rates {
                let (up, frames, freeze) = impaired_two_party(
                    kind,
                    10.0,
                    SimDuration::ZERO,
                    p,
                    SimDuration::ZERO,
                    cfg.call,
                    cfg.seed,
                );
                loss.push(ImpairmentPoint {
                    vca: kind.name().into(),
                    extra_delay_ms: 0,
                    loss_rate: p,
                    jitter_ms: 0,
                    up_mbps: up,
                    frames,
                    freeze_secs: freeze,
                });
            }
            for &j in &cfg.jitters_ms {
                let (up, frames, freeze) = impaired_two_party(
                    kind,
                    10.0,
                    SimDuration::ZERO,
                    0.0,
                    SimDuration::from_millis(j),
                    cfg.call,
                    cfg.seed,
                );
                jitter.push(ImpairmentPoint {
                    vca: kind.name().into(),
                    extra_delay_ms: 0,
                    loss_rate: 0.0,
                    jitter_ms: j,
                    up_mbps: up,
                    frames,
                    freeze_secs: freeze,
                });
            }
        }
        ImpairmentsResult {
            latency,
            loss,
            jitter,
        }
    }

    /// Render.
    pub fn print(r: &ImpairmentsResult) {
        println!("Extension: utilization under added path latency (uplink Mbps)");
        println!(
            "{:>8} {:>10} {:>10} {:>12}",
            "VCA", "delay ms", "up Mbps", "freeze s"
        );
        for p in &r.latency {
            println!(
                "{:>8} {:>10} {:>10.2} {:>12.1}",
                p.vca, p.extra_delay_ms, p.up_mbps, p.freeze_secs
            );
        }
        println!("Extension: utilization under random loss");
        println!(
            "{:>8} {:>10} {:>10} {:>12}",
            "VCA", "loss", "up Mbps", "freeze s"
        );
        for p in &r.loss {
            println!(
                "{:>8} {:>9.1}% {:>10.2} {:>12.1}",
                p.vca,
                p.loss_rate * 100.0,
                p.up_mbps,
                p.freeze_secs
            );
        }
        println!("Extension: utilization under jitter");
        println!(
            "{:>8} {:>10} {:>10} {:>12}",
            "VCA", "jitter ms", "up Mbps", "freeze s"
        );
        for p in &r.jitter {
            println!(
                "{:>8} {:>10} {:>10.2} {:>12.1}",
                p.vca, p.jitter_ms, p.up_mbps, p.freeze_secs
            );
        }
    }
}

/// The Teams width-bug ablation.
pub mod ablation {
    use super::*;
    use crate::run::run_two_party_with;

    /// Result of the counterfactual.
    #[derive(Debug, Clone, Serialize)]
    pub struct AblationResult {
        /// FIRs the constrained sender received with the bug enabled.
        pub firs_with_bug: u64,
        /// FIRs with the bug disabled.
        pub firs_without_bug: u64,
        /// Mean sent frame width with the bug.
        pub width_with_bug: f64,
        /// Mean sent frame width without.
        pub width_without_bug: f64,
    }

    /// Run Teams-Chrome at a starved 0.3 Mbps uplink, with and without the
    /// emulated width bug.
    pub fn run(seed: u64) -> AblationResult {
        let call = SimDuration::from_secs(120);
        let shape = RateProfile::constant_mbps(0.3);
        let open = RateProfile::constant_mbps(1000.0);
        let with_bug = run_two_party_with(
            VcaKind::TeamsChrome,
            shape.clone(),
            open.clone(),
            call,
            seed,
            |_| {},
        );
        let without_bug = run_two_party_with(VcaKind::TeamsChrome, shape, open, call, seed, |c| {
            c.set_teams_width_bug(false)
        });
        let mean_width = |stats: &[vcabench_vca::StatsSample]| {
            let xs: Vec<f64> = stats
                .iter()
                .skip(stats.len() / 3)
                .map(|s| s.send_width as f64)
                .collect();
            vcabench_stats::mean(&xs)
        };
        AblationResult {
            firs_with_bug: with_bug.c1_firs_received,
            firs_without_bug: without_bug.c1_firs_received,
            width_with_bug: mean_width(&with_bug.c1_stats),
            width_without_bug: mean_width(&without_bug.c1_stats),
        }
    }

    /// Render.
    pub fn print(r: &AblationResult) {
        println!("Extension: Teams width-bug ablation at 0.3 Mbps uplink");
        println!(
            "  with bug:    width {:>5.0} px, {:>3} FIRs",
            r.width_with_bug, r.firs_with_bug
        );
        println!(
            "  without bug: width {:>5.0} px, {:>3} FIRs",
            r.width_without_bug, r.firs_without_bug
        );
        println!("  (the paper hypothesized the width reversal causes the Fig 3b FIR storm)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hurts_delay_based_meet_least_at_moderate_values() {
        let cfg = ImpairmentsConfig::quick();
        let r = impairments::run(&cfg);
        // Everyone keeps working at +100 ms (VCAs tolerate latency).
        for p in &r.latency {
            if p.extra_delay_ms == 100 {
                assert!(
                    p.up_mbps > 0.25,
                    "{} collapsed at 100 ms: {}",
                    p.vca,
                    p.up_mbps
                );
                assert!(p.frames > 500, "{} stopped decoding: {}", p.vca, p.frames);
            }
        }
    }

    #[test]
    fn loss_hits_teams_hardest() {
        let cfg = ImpairmentsConfig::quick();
        let r = impairments::run(&cfg);
        let rate = |vca: &str, p: f64| {
            r.loss
                .iter()
                .find(|x| x.vca == vca && (x.loss_rate - p).abs() < 1e-9)
                .unwrap()
                .up_mbps
        };
        // Teams' hair-trigger backoff collapses under 2% random loss; Zoom's
        // FEC tolerance keeps it near nominal.
        let teams_drop = rate("Teams", 0.02) / rate("Teams", 0.0);
        let zoom_drop = rate("Zoom", 0.02) / rate("Zoom", 0.0);
        assert!(
            teams_drop < zoom_drop,
            "Teams should lose proportionally more: {teams_drop} vs {zoom_drop}"
        );
        assert!(zoom_drop > 0.8, "Zoom rides out 2% loss: {zoom_drop}");
    }

    #[test]
    fn disabling_the_bug_reduces_firs() {
        let r = ablation::run(3);
        assert!(
            r.width_with_bug > r.width_without_bug,
            "bug raises width: {} vs {}",
            r.width_with_bug,
            r.width_without_bug
        );
        assert!(
            r.firs_with_bug > r.firs_without_bug,
            "bug causes the FIR storm: {} vs {}",
            r.firs_with_bug,
            r.firs_without_bug
        );
    }
}
