//! **Figure 14** — Zoom vs. Netflix on a 0.5 Mbps downlink (§5.3).
//!
//! Paper observations: Zoom holds ~0.4 Mbps while Netflix struggles to
//! exceed 0.1; Netflix opens 28 TCP connections over the 120 s experiment
//! (each carrying >100 kbit), up to 11 in parallel — and it still doesn't
//! help.

use serde::Serialize;
use vcabench_simcore::SimTime;
use vcabench_vca::VcaKind;

use crate::run::{run_competition, CompetitionConfig, Competitor, TwoPartyOutcome};

/// Parameters.
#[derive(Debug, Clone)]
pub struct Fig14Config {
    /// Downlink capacity, Mbps.
    pub capacity_mbps: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig14Config {
    fn default() -> Self {
        Fig14Config {
            capacity_mbps: 0.5,
            seed: 141,
        }
    }
}

impl Fig14Config {
    /// Same run; the experiment is already a single 3.5-minute simulation.
    pub fn quick() -> Self {
        Self::default()
    }
}

/// Fig 14 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Result {
    /// Zoom downlink Mbps per 100 ms bin (panel a).
    pub zoom_series: Vec<f64>,
    /// Netflix downlink Mbps per bin (panel a).
    pub netflix_series: Vec<f64>,
    /// Parallel-connection count per second (panel b).
    pub parallel_conns: Vec<(f64, usize)>,
    /// Total connections opened.
    pub connections_opened: u64,
    /// Peak parallel connections.
    pub max_parallel: usize,
    /// Zoom average during contention, Mbps.
    pub zoom_mbps: f64,
    /// Netflix average during contention, Mbps.
    pub netflix_mbps: f64,
}

/// Reduce per-second client samples to panel b's series and headline peak.
pub fn summarize_parallel(samples: &[vcabench_apps::NetflixSample]) -> (Vec<(f64, usize)>, usize) {
    let series: Vec<(f64, usize)> = samples
        .iter()
        .map(|s| (s.t.as_secs_f64(), s.parallel))
        .collect();
    let max_parallel = samples.iter().map(|s| s.parallel).max().unwrap_or(0);
    (series, max_parallel)
}

/// Run the experiment.
pub fn run(cfg: &Fig14Config) -> Fig14Result {
    let ccfg = CompetitionConfig::paper(
        VcaKind::Zoom,
        Competitor::Netflix,
        cfg.capacity_mbps,
        cfg.seed,
    );
    let out = run_competition(&ccfg);
    let from = SimTime::ZERO + ccfg.competitor_start + ccfg.competitor_duration / 4;
    let to = SimTime::ZERO + ccfg.competitor_start + ccfg.competitor_duration;
    let samples = out.netflix.clone().unwrap_or_default();
    let (parallel_conns, max_parallel) = summarize_parallel(&samples);
    Fig14Result {
        zoom_mbps: TwoPartyOutcome::rate_between(&out.inc_down, from, to),
        netflix_mbps: TwoPartyOutcome::rate_between(&out.comp_down, from, to),
        zoom_series: out.inc_down,
        netflix_series: out.comp_down,
        parallel_conns,
        connections_opened: out.netflix_conns,
        max_parallel,
    }
}

/// Render.
pub fn print(result: &Fig14Result) {
    println!("Fig 14: Netflix vs incumbent Zoom on a 0.5 Mbps downlink");
    println!(
        "  Zoom avg:    {:.2} Mbps   (paper: ~0.4)",
        result.zoom_mbps
    );
    println!(
        "  Netflix avg: {:.2} Mbps   (paper: ~0.1)",
        result.netflix_mbps
    );
    println!(
        "  Netflix connections: {} total, max {} parallel (paper: 28 total, 11 parallel)",
        result.connections_opened, result.max_parallel
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_apps::NetflixSample;
    use vcabench_simcore::SimTime;

    #[test]
    fn parallel_summary_tracks_peak_and_timeline() {
        let mk = |t: u64, parallel: usize, opened: u64| NetflixSample {
            t: SimTime::from_secs(t),
            parallel,
            opened,
            level: 0,
            buffer_s: 0.0,
        };
        let samples = vec![mk(1, 1, 1), mk(2, 4, 6), mk(3, 11, 17), mk(4, 2, 18)];
        let (series, max_parallel) = summarize_parallel(&samples);
        assert_eq!(max_parallel, 11);
        assert_eq!(series.len(), 4);
        assert_eq!(series[2], (3.0, 11));
        // Empty input must not panic and reports no parallelism.
        let (empty, none) = summarize_parallel(&[]);
        assert!(empty.is_empty());
        assert_eq!(none, 0);
    }

    #[test]
    fn zoom_starves_netflix() {
        let r = run(&Fig14Config::quick());
        assert!(
            r.zoom_mbps > 2.0 * r.netflix_mbps,
            "Zoom {:.2} must dominate Netflix {:.2}",
            r.zoom_mbps,
            r.netflix_mbps
        );
        assert!(
            r.zoom_mbps > 0.25,
            "Zoom holds most of the link: {}",
            r.zoom_mbps
        );
        // The multi-connection fan-out happened and did not help.
        assert!(
            r.connections_opened >= 10,
            "many connections: {}",
            r.connections_opened
        );
        assert!(r.max_parallel >= 3, "parallel fan-out: {}", r.max_parallel);
    }
}
