//! **Figure 3** — video freezes under throughput constraints (§3.2).
//!
//! * (a) freeze ratio vs. *downstream* capacity, from the receiver's decoded
//!   frame inter-arrival times (the paper's rule:
//!   freeze ⇔ gap > max(3δ, δ+150 ms));
//! * (b) Full Intra Request count vs. *upstream* capacity — the receiver
//!   cannot decode and requests keyframes; "particularly high for
//!   Teams-Chrome at uplink capacity below 0.5 Mbps" because the
//!   emulated width bug makes it send high-resolution video into a starved
//!   link.

use serde::Serialize;
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_vca::VcaKind;

use crate::run::run_two_party;

/// Parameters of the Fig 3 sweeps.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Capacities, Mbps.
    pub caps: Vec<f64>,
    /// Call length.
    pub call: SimDuration,
    /// Repetitions.
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            caps: vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0, 1.5, 2.0],
            call: SimDuration::from_secs(150),
            reps: 5,
            seed: 31,
        }
    }
}

impl Fig3Config {
    /// Reduced preset.
    pub fn quick() -> Self {
        Fig3Config {
            caps: vec![0.3, 0.5, 1.0, 2.0],
            call: SimDuration::from_secs(80),
            reps: 1,
            seed: 31,
        }
    }
}

/// One (vca, capacity) freeze point.
#[derive(Debug, Clone, Serialize)]
pub struct FreezePoint {
    /// VCA name.
    pub vca: String,
    /// Shaped capacity, Mbps.
    pub cap_mbps: f64,
    /// Freeze ratio (freeze time / call time), downstream panels.
    pub freeze_ratio: f64,
    /// FIRs received by the constrained sender per call, upstream panel.
    pub fir_count: f64,
}

/// Full Fig 3 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Panel (a): downstream freeze ratios.
    pub downstream_freeze: Vec<FreezePoint>,
    /// Panel (b): upstream FIR counts.
    pub upstream_fir: Vec<FreezePoint>,
}

fn find(points: &[FreezePoint], vca: &str, cap: f64) -> Option<FreezePoint> {
    points
        .iter()
        .find(|p| p.vca == vca && (p.cap_mbps - cap).abs() < 1e-9)
        .cloned()
}

impl Fig3Result {
    /// Look up a downstream point.
    pub fn freeze(&self, vca: &str, cap: f64) -> Option<FreezePoint> {
        find(&self.downstream_freeze, vca, cap)
    }
    /// Look up an upstream point.
    pub fn fir(&self, vca: &str, cap: f64) -> Option<FreezePoint> {
        find(&self.upstream_fir, vca, cap)
    }
}

/// Run both panels. The paper reads WebRTC stats, so the VCAs here are Meet
/// and Teams-Chrome.
pub fn run(cfg: &Fig3Config) -> Fig3Result {
    let kinds = [VcaKind::Meet, VcaKind::TeamsChrome];
    let mut downstream_freeze = Vec::new();
    let mut upstream_fir = Vec::new();
    for kind in kinds {
        for &cap in &cfg.caps {
            // Downstream panel.
            let mut ratios = Vec::new();
            for rep in 0..cfg.reps {
                let out = run_two_party(
                    kind,
                    RateProfile::constant_mbps(1000.0),
                    RateProfile::constant_mbps(cap),
                    cfg.call,
                    cfg.seed + rep,
                );
                let dur = out.duration.saturating_since(SimTime::ZERO);
                ratios.push(out.c1_freeze_time.as_secs_f64() / dur.as_secs_f64());
            }
            downstream_freeze.push(FreezePoint {
                vca: kind.name().to_string(),
                cap_mbps: cap,
                freeze_ratio: vcabench_stats::mean(&ratios),
                fir_count: 0.0,
            });
            // Upstream panel.
            let mut firs = Vec::new();
            for rep in 0..cfg.reps {
                let out = run_two_party(
                    kind,
                    RateProfile::constant_mbps(cap),
                    RateProfile::constant_mbps(1000.0),
                    cfg.call,
                    cfg.seed + 100 + rep,
                );
                firs.push(out.c1_firs_received as f64);
            }
            upstream_fir.push(FreezePoint {
                vca: kind.name().to_string(),
                cap_mbps: cap,
                freeze_ratio: 0.0,
                fir_count: vcabench_stats::mean(&firs),
            });
        }
    }
    Fig3Result {
        downstream_freeze,
        upstream_fir,
    }
}

/// Render both panels.
pub fn print(result: &Fig3Result) {
    println!("Fig 3a: freeze ratio vs downstream capacity");
    println!("{:>6} {:>10} {:>14}", "cap", "Meet", "Teams-Chrome");
    let mut caps: Vec<f64> = result
        .downstream_freeze
        .iter()
        .map(|p| p.cap_mbps)
        .collect();
    caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    caps.dedup();
    for &cap in &caps {
        let m = result
            .freeze("Meet", cap)
            .map(|p| p.freeze_ratio)
            .unwrap_or(0.0);
        let t = result
            .freeze("Teams-Chrome", cap)
            .map(|p| p.freeze_ratio)
            .unwrap_or(0.0);
        println!(
            "{cap:>6.1} {m:>9.1}% {t:>13.1}%",
            m = m * 100.0,
            t = t * 100.0
        );
    }
    println!("Fig 3b: FIR count vs upstream capacity (per call)");
    println!("{:>6} {:>10} {:>14}", "cap", "Meet", "Teams-Chrome");
    for &cap in &caps {
        let m = result.fir("Meet", cap).map(|p| p.fir_count).unwrap_or(0.0);
        let t = result
            .fir("Teams-Chrome", cap)
            .map(|p| p.fir_count)
            .unwrap_or(0.0);
        println!("{cap:>6.1} {m:>10.1} {t:>14.1}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freezes_rise_as_downlink_falls() {
        let r = run(&Fig3Config::quick());
        for vca in ["Meet", "Teams-Chrome"] {
            let starved = r.freeze(vca, 0.3).unwrap().freeze_ratio;
            let comfy = r.freeze(vca, 2.0).unwrap().freeze_ratio;
            assert!(
                starved > comfy,
                "{vca}: freeze at 0.3 ({starved}) must exceed at 2.0 ({comfy})"
            );
            assert!(starved > 0.01, "{vca}: starved link must freeze: {starved}");
        }
    }

    #[test]
    fn teams_fir_storm_at_starved_uplink() {
        let r = run(&Fig3Config::quick());
        let teams_starved = r.fir("Teams-Chrome", 0.3).unwrap().fir_count;
        let teams_comfy = r.fir("Teams-Chrome", 2.0).unwrap().fir_count;
        assert!(
            teams_starved > teams_comfy + 2.0,
            "Teams FIR storm: {teams_starved} vs {teams_comfy}"
        );
        // Teams' width bug makes it worse than Meet at 0.3.
        let meet_starved = r.fir("Meet", 0.3).unwrap().fir_count;
        assert!(
            teams_starved > meet_starved,
            "Teams ({teams_starved}) worse than Meet ({meet_starved}) at 0.3"
        );
    }
}
