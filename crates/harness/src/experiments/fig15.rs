//! **Figure 15** — call modalities: participants and viewing mode (§6).
//!
//! * (a) C1's downlink vs. number of participants (gallery mode);
//! * (b) C1's uplink vs. participants — the layout cliffs: Zoom falls
//!   0.8→0.4 Mbps at n=5, Meet 1→0.2 at n=7, Teams flat (fixed 2×2 layout);
//! * (c) C1's uplink when every other participant pins C1 (speaker mode):
//!   Zoom and Meet hold ~1 Mbps regardless of call size; Teams grows from
//!   ~1.25 Mbps (n=3) to ~2.9 Mbps (n=8).

use serde::Serialize;
use vcabench_simcore::SimDuration;
use vcabench_stats::ci90;
use vcabench_vca::VcaKind;

use crate::run::run_multiparty;

/// Parameters of the modality study.
#[derive(Debug, Clone)]
pub struct Fig15Config {
    /// Call sizes to sweep (paper: 2..=8).
    pub sizes: Vec<usize>,
    /// Call length (paper: 2 minutes).
    pub call: SimDuration,
    /// Repetitions (paper: 5).
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Fig15Config {
    fn default() -> Self {
        Fig15Config {
            sizes: (2..=8).collect(),
            call: SimDuration::from_secs(120),
            reps: 5,
            seed: 151,
        }
    }
}

impl Fig15Config {
    /// Reduced preset.
    pub fn quick() -> Self {
        Fig15Config {
            sizes: vec![2, 4, 5, 6, 7, 8],
            call: SimDuration::from_secs(50),
            reps: 1,
            seed: 151,
        }
    }
}

/// One (vca, n) utilization point.
#[derive(Debug, Clone, Serialize)]
pub struct ModalityPoint {
    /// VCA name.
    pub vca: String,
    /// Participants.
    pub n: usize,
    /// C1 downlink, Mbps (mean over reps).
    pub down_mbps: f64,
    /// C1 uplink, Mbps.
    pub up_mbps: f64,
    /// 90% CI half-width on the uplink.
    pub up_ci: f64,
}

/// Full Fig 15 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Result {
    /// Panels (a)+(b): gallery mode sweep.
    pub gallery: Vec<ModalityPoint>,
    /// Panel (c): speaker mode (C1 pinned by everyone), uplink of C1.
    pub speaker: Vec<ModalityPoint>,
}

fn find(points: &[ModalityPoint], vca: &str, n: usize) -> Option<ModalityPoint> {
    points.iter().find(|p| p.vca == vca && p.n == n).cloned()
}

impl Fig15Result {
    /// Gallery point lookup.
    pub fn gallery_at(&self, vca: &str, n: usize) -> Option<ModalityPoint> {
        find(&self.gallery, vca, n)
    }
    /// Speaker point lookup.
    pub fn speaker_at(&self, vca: &str, n: usize) -> Option<ModalityPoint> {
        find(&self.speaker, vca, n)
    }
}

fn sweep(cfg: &Fig15Config, pin_c1: bool) -> Vec<ModalityPoint> {
    let mut points = Vec::new();
    for kind in VcaKind::NATIVE {
        for &n in &cfg.sizes {
            if pin_c1 && n < 3 {
                continue; // speaker mode needs a third party to matter
            }
            let mut downs = Vec::new();
            let mut ups = Vec::new();
            for rep in 0..cfg.reps {
                let out = run_multiparty(kind, n, pin_c1, cfg.call, cfg.seed + rep);
                downs.push(out.c1_down_mbps);
                ups.push(out.c1_up_mbps);
            }
            let u = ci90(&ups);
            points.push(ModalityPoint {
                vca: kind.name().to_string(),
                n,
                down_mbps: vcabench_stats::mean(&downs),
                up_mbps: u.mean,
                up_ci: u.hi - u.mean,
            });
        }
    }
    points
}

/// Run all panels.
pub fn run(cfg: &Fig15Config) -> Fig15Result {
    Fig15Result {
        gallery: sweep(cfg, false),
        speaker: sweep(cfg, true),
    }
}

/// Render.
pub fn print(result: &Fig15Result) {
    println!("Fig 15a/b: gallery-mode utilization vs participants (C1 down / C1 up, Mbps)");
    let mut ns: Vec<usize> = result.gallery.iter().map(|p| p.n).collect();
    ns.sort_unstable();
    ns.dedup();
    print!("{:>8}", "VCA");
    for n in &ns {
        print!(" {:>11}", format!("n={n}"));
    }
    println!();
    for vca in ["Meet", "Teams", "Zoom"] {
        print!("{vca:>8}");
        for &n in &ns {
            if let Some(p) = result.gallery_at(vca, n) {
                print!(" {:>5.1}/{:<5.1}", p.down_mbps, p.up_mbps);
            } else {
                print!(" {:>11}", "-");
            }
        }
        println!();
    }
    println!("Fig 15c: uplink of the pinned participant (speaker mode, Mbps)");
    print!("{:>8}", "VCA");
    for n in &ns {
        if *n >= 3 {
            print!(" {:>7}", format!("n={n}"));
        }
    }
    println!();
    for vca in ["Meet", "Teams", "Zoom"] {
        print!("{vca:>8}");
        for &n in &ns {
            if n < 3 {
                continue;
            }
            if let Some(p) = result.speaker_at(vca, n) {
                print!(" {:>7.2}", p.up_mbps);
            } else {
                print!(" {:>7}", "-");
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_cliffs() {
        let r = run(&Fig15Config::quick());
        // Zoom's uplink cliff at n=5.
        let z4 = r.gallery_at("Zoom", 4).unwrap().up_mbps;
        let z5 = r.gallery_at("Zoom", 5).unwrap().up_mbps;
        assert!(z5 < z4 * 0.8, "Zoom cliff at 5: {z4} -> {z5}");
        // Meet's uplink cliff at n=7.
        let m6 = r.gallery_at("Meet", 6).unwrap().up_mbps;
        let m7 = r.gallery_at("Meet", 7).unwrap().up_mbps;
        assert!(m7 < m6 * 0.5, "Meet cliff at 7: {m6} -> {m7}");
        // Teams' uplink is flat.
        let t2 = r.gallery_at("Teams", 2).unwrap().up_mbps;
        let t8 = r.gallery_at("Teams", 8).unwrap().up_mbps;
        assert!(
            (t8 - t2).abs() < 0.35 * t2,
            "Teams uplink flat: {t2} vs {t8}"
        );
        // Teams' downlink rises to n=5 then drops.
        let t5 = r.gallery_at("Teams", 5).unwrap().down_mbps;
        let t6 = r.gallery_at("Teams", 6).unwrap().down_mbps;
        assert!(t5 > t6, "Teams downlink peak at 5: {t5} vs {t6}");
    }

    #[test]
    fn speaker_mode_shapes() {
        let r = run(&Fig15Config::quick());
        // Zoom and Meet pin at ~1 Mbps regardless of call size.
        for vca in ["Zoom", "Meet"] {
            let at4 = r.speaker_at(vca, 4).unwrap().up_mbps;
            let at8 = r.speaker_at(vca, 8).unwrap().up_mbps;
            assert!((0.7..=1.5).contains(&at4), "{vca} pinned ~1 Mbps: {at4}");
            assert!(
                (at8 - at4).abs() < 0.3,
                "{vca} pinned uplink flat in call size: {at4} vs {at8}"
            );
        }
        // Teams grows with the call size.
        let t4 = r.speaker_at("Teams", 4).unwrap().up_mbps;
        let t8 = r.speaker_at("Teams", 8).unwrap().up_mbps;
        assert!(t8 > t4 + 0.5, "Teams pinned uplink grows: {t4} -> {t8}");
        // Pinning raises the sender's uplink vs gallery at the same n.
        let gallery = r.gallery_at("Zoom", 6).unwrap().up_mbps;
        let pinned = r.speaker_at("Zoom", 6).unwrap().up_mbps;
        assert!(
            pinned > gallery,
            "pinning raises uplink: {gallery} -> {pinned}"
        );
    }
}
