//! **Figures 12 and 13** — VCA vs. a long TCP flow (§5.2).
//!
//! iPerf3 (TCP CUBIC) competes with each VCA on a 2 Mbps symmetric link
//! (Fig 12); Fig 13 shows Zoom's spontaneous probe burst knocking iPerf3
//! down mid-experiment.
//!
//! Headline shapes: Teams is extremely passive (≤37 % uplink, ≤20 %
//! downlink even at 2 Mbps); Meet and Zoom reach their nominal rates and
//! leave the rest to TCP; at low capacities Zoom takes ≥75 %.

use serde::Serialize;
use vcabench_simcore::SimTime;
use vcabench_vca::VcaKind;

use crate::run::{run_competition, CompetitionConfig, Competitor, TwoPartyOutcome};

/// Parameters of the TCP-competition study.
#[derive(Debug, Clone)]
pub struct TcpCompetitionConfig {
    /// Bottleneck capacity, Mbps.
    pub capacity_mbps: f64,
    /// Repetitions (paper: 3).
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for TcpCompetitionConfig {
    fn default() -> Self {
        TcpCompetitionConfig {
            capacity_mbps: 2.0,
            reps: 3,
            seed: 121,
        }
    }
}

impl TcpCompetitionConfig {
    /// Reduced preset.
    pub fn quick() -> Self {
        TcpCompetitionConfig {
            capacity_mbps: 2.0,
            reps: 1,
            seed: 121,
        }
    }
}

/// One (vca, direction) row of Fig 12.
#[derive(Debug, Clone, Serialize)]
pub struct TcpShareRow {
    /// VCA name.
    pub vca: String,
    /// VCA uplink rate vs iPerf uplink rate, Mbps (upload competition).
    pub up_vca_mbps: f64,
    /// iPerf rate in the upload run.
    pub up_iperf_mbps: f64,
    /// VCA downlink rate in the download run.
    pub down_vca_mbps: f64,
    /// iPerf rate in the download run.
    pub down_iperf_mbps: f64,
}

/// Fig 12 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Result {
    /// Capacity used.
    pub capacity_mbps: f64,
    /// One row per VCA.
    pub rows: Vec<TcpShareRow>,
}

impl Fig12Result {
    /// Look up a row.
    pub fn row(&self, vca: &str) -> Option<&TcpShareRow> {
        self.rows.iter().find(|r| r.vca == vca)
    }
}

/// Run Fig 12.
pub fn run(cfg: &TcpCompetitionConfig) -> Fig12Result {
    let mut rows = Vec::new();
    for kind in VcaKind::NATIVE {
        let mut uv = Vec::new();
        let mut ui = Vec::new();
        let mut dv = Vec::new();
        let mut di = Vec::new();
        for rep in 0..cfg.reps {
            for (competitor, vca_acc, iperf_acc) in [
                (Competitor::IperfUp, &mut uv, &mut ui),
                (Competitor::IperfDown, &mut dv, &mut di),
            ] {
                let ccfg =
                    CompetitionConfig::paper(kind, competitor, cfg.capacity_mbps, cfg.seed + rep);
                let out = run_competition(&ccfg);
                let from = SimTime::ZERO + ccfg.competitor_start + ccfg.competitor_duration / 4;
                let to = SimTime::ZERO + ccfg.competitor_start + ccfg.competitor_duration;
                match competitor {
                    Competitor::IperfUp => {
                        vca_acc.push(TwoPartyOutcome::rate_between(&out.inc_up, from, to));
                        iperf_acc.push(TwoPartyOutcome::rate_between(&out.comp_up, from, to));
                    }
                    _ => {
                        vca_acc.push(TwoPartyOutcome::rate_between(&out.inc_down, from, to));
                        iperf_acc.push(TwoPartyOutcome::rate_between(&out.comp_down, from, to));
                    }
                }
            }
        }
        rows.push(TcpShareRow {
            vca: kind.name().to_string(),
            up_vca_mbps: vcabench_stats::mean(&uv),
            up_iperf_mbps: vcabench_stats::mean(&ui),
            down_vca_mbps: vcabench_stats::mean(&dv),
            down_iperf_mbps: vcabench_stats::mean(&di),
        });
    }
    Fig12Result {
        capacity_mbps: cfg.capacity_mbps,
        rows,
    }
}

/// Fig 13 result: Zoom + iPerf downlink timelines showing the probe burst.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Result {
    /// Zoom downlink Mbps per 100 ms bin.
    pub zoom: Vec<f64>,
    /// iPerf downlink Mbps per bin.
    pub iperf: Vec<f64>,
    /// When the burst peaked (seconds), if detected.
    pub burst_at_secs: Option<f64>,
}

/// Run Fig 13 (Zoom vs a long TCP download at 2 Mbps).
pub fn run_fig13(seed: u64) -> Fig13Result {
    let ccfg = CompetitionConfig::paper(VcaKind::Zoom, Competitor::IperfDown, 2.0, seed);
    let out = run_competition(&ccfg);
    // Find the probe burst: zoom's downlink rising well above its nominal
    // while the competitor runs.
    let nominal = TwoPartyOutcome::rate_between(
        &out.inc_down,
        SimTime::from_secs(10),
        SimTime::from_secs(28),
    );
    let comp_start = (ccfg.competitor_start.as_millis() / 100) as usize;
    let comp_end = ((ccfg.competitor_start + ccfg.competitor_duration).as_millis() / 100) as usize;
    let burst_at_secs = out
        .inc_down
        .iter()
        .enumerate()
        .skip(comp_start + 100)
        .take(comp_end.saturating_sub(comp_start + 100))
        .find(|(_, &v)| v > nominal * 1.15)
        .map(|(i, _)| i as f64 * 0.1);
    Fig13Result {
        zoom: out.inc_down,
        iperf: out.comp_down,
        burst_at_secs,
    }
}

/// Render Fig 12.
pub fn print(result: &Fig12Result) {
    println!(
        "Fig 12: link sharing with a long TCP (CUBIC) flow at {} Mbps",
        result.capacity_mbps
    );
    println!(
        "{:<8} {:>22} {:>24}",
        "VCA", "uplink (vca/iperf)", "downlink (vca/iperf)"
    );
    for r in &result.rows {
        println!(
            "{:<8} {:>10.2} / {:<9.2} {:>11.2} / {:<9.2}",
            r.vca, r.up_vca_mbps, r.up_iperf_mbps, r.down_vca_mbps, r.down_iperf_mbps
        );
    }
    println!("(paper: Teams ≤37% up / ≤20% down; Meet & Zoom reach nominal at 2 Mbps)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teams_is_passive_against_tcp() {
        let r = run(&TcpCompetitionConfig::quick());
        let teams = r.row("Teams").unwrap();
        let up_share = teams.up_vca_mbps / (teams.up_vca_mbps + teams.up_iperf_mbps);
        let down_share = teams.down_vca_mbps / (teams.down_vca_mbps + teams.down_iperf_mbps);
        assert!(up_share < 0.45, "Teams uplink share {up_share}");
        assert!(down_share < 0.40, "Teams downlink share {down_share}");
        // Meet and Zoom reach roughly their nominal rates at 2 Mbps.
        let meet = r.row("Meet").unwrap();
        assert!(
            meet.up_vca_mbps > 0.6,
            "Meet nominal up: {}",
            meet.up_vca_mbps
        );
        let zoom = r.row("Zoom").unwrap();
        assert!(
            zoom.down_vca_mbps > 0.6,
            "Zoom nominal down: {}",
            zoom.down_vca_mbps
        );
    }

    #[test]
    fn zoom_probe_burst_detected() {
        let r = run_fig13(7);
        assert!(
            r.burst_at_secs.is_some(),
            "Zoom should re-probe above nominal during the TCP competition"
        );
    }
}
