//! **Figures 4, 5, 6** — response to transient network disruptions (§4).
//!
//! Procedure: a 5-minute call; one minute in, the (up|down)link is reduced
//! to {0.25, 0.5, 0.75, 1.0} Mbps for 30 seconds, then restored; four
//! repetitions each.
//!
//! * Fig 4a/5a: bitrate timelines at the 0.25 Mbps level;
//! * Fig 4b/5b: time-to-recovery vs. disruption level (five-second rolling
//!   median reaching the pre-disruption median);
//! * Fig 6: C2's *upstream* during C1's *downlink* disruption — flat for
//!   Meet (the SFU absorbs it), collapsed for Teams (end-to-end control).

use serde::Serialize;
use vcabench_campaign::{
    float_slug, Axes, CampaignSpec, ScenarioSpec, ScenarioTemplate, SeedAxis, TwoPartySpec,
};
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_vca::VcaKind;

use crate::experiments::fig1::Direction;
use crate::run::run_two_party;

/// The paper's disruption levels, Mbps.
pub const PAPER_LEVELS: &[f64] = &[0.25, 0.5, 0.75, 1.0];

/// Parameters of the disruption experiments.
#[derive(Debug, Clone)]
pub struct DisruptionConfig {
    /// Disruption levels, Mbps.
    pub levels: Vec<f64>,
    /// Call length (paper: 5 minutes).
    pub call: SimDuration,
    /// Disruption start (paper: 60 s).
    pub start: SimDuration,
    /// Disruption length (paper: 30 s).
    pub length: SimDuration,
    /// Repetitions (paper: 4).
    pub reps: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for DisruptionConfig {
    fn default() -> Self {
        DisruptionConfig {
            levels: PAPER_LEVELS.to_vec(),
            call: SimDuration::from_secs(300),
            start: SimDuration::from_secs(60),
            length: SimDuration::from_secs(30),
            reps: 4,
            seed: 41,
        }
    }
}

impl DisruptionConfig {
    /// Reduced preset.
    pub fn quick() -> Self {
        DisruptionConfig {
            levels: vec![0.25, 1.0],
            call: SimDuration::from_secs(200),
            start: SimDuration::from_secs(45),
            length: SimDuration::from_secs(30),
            reps: 1,
            seed: 41,
        }
    }
}

/// TTR at one (vca, level) point.
#[derive(Debug, Clone, Serialize)]
pub struct TtrPoint {
    /// VCA name.
    pub vca: String,
    /// Disruption level, Mbps.
    pub level_mbps: f64,
    /// Mean time to recovery, seconds (`None` reps counted as the full
    /// post-disruption window).
    pub ttr_secs: f64,
    /// Nominal (pre-disruption median) bitrate, Mbps.
    pub nominal_mbps: f64,
}

/// Result of one direction's disruption study (Fig 4 or Fig 5).
#[derive(Debug, Clone, Serialize)]
pub struct DisruptionResult {
    /// Shaped direction.
    pub direction: Direction,
    /// TTR grid (panel b).
    pub ttr: Vec<TtrPoint>,
    /// Bitrate timelines at the severest level (panel a), per VCA:
    /// (name, Mbps per 100 ms bin).
    pub timelines: Vec<(String, Vec<f64>)>,
    /// Fig 6 (only for downlink runs): C2 upstream timelines at 0.25 Mbps.
    pub c2_up_timelines: Vec<(String, Vec<f64>)>,
    /// Disruption window (seconds) the timelines were produced under.
    pub window_s: (f64, f64),
}

impl DisruptionResult {
    /// Look up a TTR point.
    pub fn ttr_of(&self, vca: &str, level: f64) -> Option<&TtrPoint> {
        self.ttr
            .iter()
            .find(|p| p.vca == vca && (p.level_mbps - level).abs() < 1e-9)
    }
}

/// Run the disruption study in one direction.
pub fn run_direction(cfg: &DisruptionConfig, direction: Direction) -> DisruptionResult {
    let d_start = SimTime::ZERO + cfg.start;
    let d_end = d_start + cfg.length;
    let mut ttr = Vec::new();
    let mut timelines = Vec::new();
    let mut c2_up_timelines = Vec::new();
    for kind in VcaKind::NATIVE {
        for &level in &cfg.levels {
            let mut ttrs = Vec::new();
            let mut nominals = Vec::new();
            for rep in 0..cfg.reps {
                let profile = RateProfile::disruption(1000e6, level * 1e6, d_start, cfg.length);
                let (up, down) = match direction {
                    Direction::Up => (profile, RateProfile::constant_mbps(1000.0)),
                    Direction::Down => (RateProfile::constant_mbps(1000.0), profile),
                };
                let out = run_two_party(kind, up, down, cfg.call, cfg.seed + rep);
                let series = match direction {
                    Direction::Up => &out.up_series,
                    Direction::Down => &out.down_series,
                };
                let t = out.ttr(series, d_start, d_end);
                nominals.push(t.nominal_mbps);
                let max_window = out.duration.saturating_since(d_end).as_secs_f64();
                ttrs.push(t.ttr.map(|d| d.as_secs_f64()).unwrap_or(max_window));
                if rep == 0 && (level - cfg.levels[0]).abs() < 1e-9 {
                    timelines.push((kind.name().to_string(), series.clone()));
                    if direction == Direction::Down {
                        c2_up_timelines.push((kind.name().to_string(), out.c2_up_series.clone()));
                    }
                }
            }
            ttr.push(TtrPoint {
                vca: kind.name().to_string(),
                level_mbps: level,
                ttr_secs: vcabench_stats::mean(&ttrs),
                nominal_mbps: vcabench_stats::mean(&nominals),
            });
        }
    }
    DisruptionResult {
        direction,
        ttr,
        timelines,
        c2_up_timelines,
        window_s: (
            cfg.start.as_secs_f64(),
            (cfg.start + cfg.length).as_secs_f64(),
        ),
    }
}

/// The §4 disruption grid as a declarative campaign: one template per
/// (direction, level), each swept over the native kinds and the seed range.
/// The campaign runner detects the disruption window from the profile's
/// steps and reports TTR + nominal per run.
pub fn campaign_spec(cfg: &DisruptionConfig) -> CampaignSpec {
    let d_start = SimTime::ZERO + cfg.start;
    let mut scenarios = Vec::new();
    for (fig, direction) in [("fig4", Direction::Up), ("fig5", Direction::Down)] {
        for &level in &cfg.levels {
            let profile = RateProfile::disruption(1000e6, level * 1e6, d_start, cfg.length);
            let (up, down) = match direction {
                Direction::Up => (profile, RateProfile::constant_mbps(1000.0)),
                Direction::Down => (RateProfile::constant_mbps(1000.0), profile),
            };
            scenarios.push(ScenarioTemplate {
                label: Some(format!("{fig}_{}", float_slug(level))),
                base: ScenarioSpec::TwoParty(TwoPartySpec {
                    kind: VcaKind::NATIVE[0],
                    up,
                    down,
                    duration_secs: cfg.call.as_secs_f64(),
                    seed: cfg.seed,
                    knobs: None,
                }),
                axes: Some(Axes {
                    kinds: Some(VcaKind::NATIVE.to_vec()),
                    up_mbps: None,
                    down_mbps: None,
                    capacity_mbps: None,
                    competitors: None,
                    seeds: Some(SeedAxis::Range {
                        base: cfg.seed,
                        count: cfg.reps,
                    }),
                }),
            });
        }
    }
    CampaignSpec {
        name: "fig4_5".to_string(),
        scenarios,
    }
}

/// Full §4 result: Fig 4 (uplink) and Fig 5+6 (downlink).
#[derive(Debug, Clone, Serialize)]
pub struct DisruptionsResult {
    /// Fig 4.
    pub uplink: DisruptionResult,
    /// Fig 5 (+ Fig 6 timelines).
    pub downlink: DisruptionResult,
}

/// Run both directions.
pub fn run(cfg: &DisruptionConfig) -> DisruptionsResult {
    DisruptionsResult {
        uplink: run_direction(cfg, Direction::Up),
        downlink: run_direction(cfg, Direction::Down),
    }
}

fn print_one(title: &str, r: &DisruptionResult) {
    println!("{title}");
    println!(
        "{:>8} {:>8} {:>10} {:>10}",
        "level", "VCA", "TTR (s)", "nominal"
    );
    for p in &r.ttr {
        println!(
            "{:>8.2} {:>8} {:>10.1} {:>10.2}",
            p.level_mbps, p.vca, p.ttr_secs, p.nominal_mbps
        );
    }
}

fn print_timelines(title: &str, r: &DisruptionResult) {
    println!("{title}");
    for (vca, series) in &r.timelines {
        let max = if vca == "Teams" { 2.4 } else { 1.4 };
        print!(
            "{}",
            crate::render::timeline(vca, series, max, Some(r.window_s.0), Some(r.window_s.1))
        );
    }
}

/// Render the TTR tables and the panel-(a) timelines.
pub fn print(result: &DisruptionsResult) {
    print_one(
        "Fig 4b: time to recovery after 30 s uplink disruption",
        &result.uplink,
    );
    print_one(
        "Fig 5b: time to recovery after 30 s downlink disruption",
        &result.downlink,
    );
    print_timelines(
        "Fig 4a: upstream bitrate during the severest uplink disruption",
        &result.uplink,
    );
    print_timelines(
        "Fig 5a: downstream bitrate during the severest downlink disruption",
        &result.downlink,
    );
    // Fig 6 summary: how far C2's upstream fell during C1's downlink
    // disruption, per VCA.
    println!("Fig 6: C2 upstream during C1 downlink disruption (0.25 Mbps)");
    for (vca, series) in &result.downlink.c2_up_timelines {
        let before = crate::run::TwoPartyOutcome::rate_between(
            series,
            SimTime::from_secs(20),
            SimTime::from_secs(40),
        );
        let during = crate::run::TwoPartyOutcome::rate_between(
            series,
            SimTime::from_secs(50),
            SimTime::from_secs(70),
        );
        println!("  {vca}: before={before:.2} Mbps, during={during:.2} Mbps");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_spec_expands_and_round_trips() {
        let cfg = DisruptionConfig::quick();
        let campaign = campaign_spec(&cfg);
        let runs = campaign.expand().unwrap();
        // 2 directions × 2 quick levels × 3 kinds × 1 rep.
        assert_eq!(runs.len(), 12);
        assert_eq!(runs[0].label, "fig4_0_25_meet_s41");
        // The disruption profile survives the JSON round trip intact.
        let text = serde_json::to_string(&campaign).unwrap();
        let back = CampaignSpec::from_json(&text).unwrap();
        assert_eq!(campaign.expand().unwrap(), back.expand().unwrap());
    }

    #[test]
    fn uplink_recovery_is_slow_for_everyone() {
        let cfg = DisruptionConfig::quick();
        let r = run_direction(&cfg, Direction::Up);
        for vca in ["Meet", "Teams", "Zoom"] {
            let t = r.ttr_of(vca, 0.25).unwrap();
            assert!(
                t.ttr_secs > 12.0,
                "{vca} must take a while to recover from 0.25: {}",
                t.ttr_secs
            );
        }
        // Milder disruptions recover faster (or at least not slower by much).
        for vca in ["Meet", "Zoom"] {
            let severe = r.ttr_of(vca, 0.25).unwrap().ttr_secs;
            let mild = r.ttr_of(vca, 1.0).unwrap().ttr_secs;
            assert!(
                mild <= severe + 5.0,
                "{vca}: mild {mild} should not exceed severe {severe}"
            );
        }
    }

    #[test]
    fn downlink_teams_slowest_meet_zoom_fast() {
        let cfg = DisruptionConfig::quick();
        let r = run_direction(&cfg, Direction::Down);
        let teams = r.ttr_of("Teams", 0.25).unwrap().ttr_secs;
        let meet = r.ttr_of("Meet", 0.25).unwrap().ttr_secs;
        let zoom = r.ttr_of("Zoom", 0.25).unwrap().ttr_secs;
        assert!(
            teams > meet && teams > zoom,
            "Teams slowest downlink: t={teams} m={meet} z={zoom}"
        );
        assert!(zoom < 20.0, "Zoom recovers downlink fast: {zoom}");
    }

    #[test]
    fn fig6_meet_c2_keeps_sending_teams_does_not() {
        let cfg = DisruptionConfig::quick();
        let r = run_direction(&cfg, Direction::Down);
        let get = |name: &str| {
            r.c2_up_timelines
                .iter()
                .find(|(v, _)| v == name)
                .map(|(_, s)| s)
                .unwrap()
        };
        let d_start = SimTime::ZERO + cfg.start;
        let probe = |s: &Vec<f64>| {
            let before = crate::run::TwoPartyOutcome::rate_between(
                s,
                d_start - SimDuration::from_secs(25),
                d_start - SimDuration::from_secs(5),
            );
            let during = crate::run::TwoPartyOutcome::rate_between(
                s,
                d_start + SimDuration::from_secs(10),
                d_start + SimDuration::from_secs(28),
            );
            (before, during)
        };
        let (meet_before, meet_during) = probe(get("Meet"));
        let (teams_before, teams_during) = probe(get("Teams"));
        // Meet's sender barely changes (SFU absorbs the disruption).
        assert!(
            meet_during > meet_before * 0.7,
            "Meet C2 keeps sending: {meet_before} -> {meet_during}"
        );
        // Teams' sender collapses (end-to-end adaptation through the relay).
        assert!(
            teams_during < teams_before * 0.5,
            "Teams C2 collapses: {teams_before} -> {teams_during}"
        );
    }
}
