//! Terminal rendering of bitrate timelines — the `repro` binary's stand-in
//! for the paper's timeline figures (4a, 5a, 6, 9, 11, 13, 14a).

/// Unicode block ramp used for sparklines.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Downsample `series` by averaging every `per_char` bins.
pub fn downsample(series: &[f64], per_char: usize) -> Vec<f64> {
    assert!(per_char > 0, "per_char must be positive");
    series
        .chunks(per_char)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Render `series` as a one-line sparkline scaled to `max` (values above
/// `max` clamp to the tallest block).
pub fn sparkline(series: &[f64], max: f64) -> String {
    let max = max.max(1e-9);
    series
        .iter()
        .map(|&v| {
            let frac = (v / max).clamp(0.0, 1.0);
            let idx = ((frac * (BLOCKS.len() - 1) as f64).round()) as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// Render a labelled timeline: a sparkline over 2-second buckets with a
/// marker row highlighting `[mark_from_s, mark_to_s)` (the disruption or
/// competition window).
pub fn timeline(
    label: &str,
    series: &[f64],
    max_mbps: f64,
    mark_from_s: Option<f64>,
    mark_to_s: Option<f64>,
) -> String {
    // 100 ms bins → 2 s per character.
    let per_char = 20;
    let ds = downsample(series, per_char);
    let spark = sparkline(&ds, max_mbps);
    let mut out = format!("  {label:<26} 0..{max_mbps:.1} Mbps\n  |{spark}|\n");
    if let (Some(a), Some(b)) = (mark_from_s, mark_to_s) {
        let marker: String = (0..ds.len())
            .map(|i| {
                let t = i as f64 * per_char as f64 * 0.1;
                if t >= a && t < b {
                    'x'
                } else {
                    '-'
                }
            })
            .collect();
        out.push_str(&format!("  +{marker}+ (x = event window)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_averages() {
        let s = vec![1.0, 3.0, 5.0, 7.0];
        assert_eq!(downsample(&s, 2), vec![2.0, 6.0]);
        assert_eq!(downsample(&s, 4), vec![4.0]);
        // Remainder chunk averages what's left.
        assert_eq!(downsample(&s, 3), vec![3.0, 7.0]);
    }

    #[test]
    fn sparkline_scales_and_clamps() {
        let s = sparkline(&[0.0, 0.5, 1.0, 2.0], 1.0);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[3], '█', "clamped above max");
        assert!(chars[1] > chars[0] && chars[1] < chars[2]);
    }

    #[test]
    fn timeline_includes_marker_window() {
        let series = vec![1.0; 600]; // 60 s of 100 ms bins
        let t = timeline("test", &series, 2.0, Some(20.0), Some(40.0));
        assert!(t.contains('x'), "marker drawn");
        assert!(t.contains("test"));
        // 30 chars wide (600 bins / 20).
        // 1.0/2.0 → index round(0.5·7) = 4 → '▅'; 30 chars (600 bins / 20).
        let spark_line = t.lines().nth(1).unwrap();
        assert_eq!(spark_line.chars().filter(|&c| c == '▅').count(), 30);
    }
}
