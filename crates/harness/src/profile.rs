//! Engine profiling for `repro --profile`: where does simulation time go?
//!
//! Runs a fixed unshaped two-party call per native VCA kind with the
//! engine's wall-clock profiler armed and renders one table per kind plus
//! a merged total. Wall-clock numbers are nondeterministic by nature, so
//! this output is print-only and never enters a trace or manifest.

use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_telemetry::Profiler;
use vcabench_vca::VcaKind;

/// Profile one unshaped two-party call of `kind`.
pub fn profile_two_party(kind: VcaKind, duration: SimDuration, seed: u64) -> Profiler {
    let mut call = vcabench_vca::two_party_call(
        kind,
        RateProfile::constant_mbps(1000.0),
        RateProfile::constant_mbps(1000.0),
        seed,
    );
    call.net.enable_profiler();
    call.net.run_until(SimTime::ZERO + duration);
    call.net.take_profiler().expect("profiler was enabled")
}

/// Profile a fixed two-party workload per native kind at seed 1.
pub fn profile_engine(duration: SimDuration) -> Vec<(VcaKind, Profiler)> {
    VcaKind::NATIVE
        .iter()
        .map(|&kind| (kind, profile_two_party(kind, duration, 1)))
        .collect()
}

/// Render the per-kind tables plus a merged total.
pub fn render_profile(profiles: &[(VcaKind, Profiler)]) -> String {
    let mut out = String::new();
    let mut merged = Profiler::new();
    for (kind, prof) in profiles {
        out.push_str(&format!("== {kind:?} two-party call ==\n"));
        out.push_str(&prof.render_table());
        out.push('\n');
        merged.merge(prof);
    }
    out.push_str("== all kinds combined ==\n");
    out.push_str(&merged.render_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_sees_engine_events() {
        let prof = profile_two_party(VcaKind::Zoom, SimDuration::from_secs(2), 1);
        assert!(prof.total_count() > 0, "engine handled events");
        assert!(
            prof.rows().contains_key("arrive"),
            "packet arrivals profiled: {:?}",
            prof.rows().keys().collect::<Vec<_>>()
        );
        let table = render_profile(&[(VcaKind::Zoom, prof)]);
        assert!(table.contains("all kinds combined"));
    }
}
