//! Engine profiling for `repro --profile`: where does simulation time go?
//!
//! Runs a fixed unshaped two-party call per native VCA kind with the
//! engine's wall-clock profiler armed and renders one table per kind plus
//! a merged total. Wall-clock numbers are nondeterministic by nature, so
//! this output is print-only and never enters a trace or manifest.

use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_telemetry::Profiler;
use vcabench_vca::VcaKind;

/// Profile one unshaped two-party call of `kind`.
pub fn profile_two_party(kind: VcaKind, duration: SimDuration, seed: u64) -> Profiler {
    let mut call = vcabench_vca::two_party_call(
        kind,
        RateProfile::constant_mbps(1000.0),
        RateProfile::constant_mbps(1000.0),
        seed,
    );
    call.net.enable_profiler();
    call.net.run_until(SimTime::ZERO + duration);
    call.net.take_profiler().expect("profiler was enabled")
}

/// Profile a fixed two-party workload per native kind at seed 1.
pub fn profile_engine(duration: SimDuration) -> Vec<(VcaKind, Profiler)> {
    VcaKind::NATIVE
        .iter()
        .map(|&kind| (kind, profile_two_party(kind, duration, 1)))
        .collect()
}

/// Schema tag of the `repro --profile --json` artifact.
pub const PROFILE_SCHEMA: &str = "vcabench-profile/v1";

/// Serialize the per-kind profiles (plus the merged total under the
/// `"all"` key) as a `vcabench-profile/v1` artifact. Key order is fixed,
/// but the wall-clock numbers inside are nondeterministic by nature —
/// the artifact is for inspection and ad-hoc comparison, never for
/// golden diffs.
pub fn profile_json(profiles: &[(VcaKind, Profiler)]) -> String {
    use serde_json::{Map, Value};
    fn profiler_value(prof: &Profiler) -> Value {
        let mut rows = Vec::new();
        for (key, row) in prof.rows() {
            let mut r = Map::new();
            r.insert("event".to_string(), Value::String(key.to_string()));
            r.insert("count".to_string(), Value::U64(row.count));
            r.insert("total_ns".to_string(), Value::U64(row.nanos as u64));
            r.insert("p50_ns".to_string(), Value::U64(row.percentile(0.50)));
            r.insert("p90_ns".to_string(), Value::U64(row.percentile(0.90)));
            r.insert("p99_ns".to_string(), Value::U64(row.percentile(0.99)));
            rows.push(Value::Object(r));
        }
        let mut m = Map::new();
        m.insert("total_events".to_string(), Value::U64(prof.total_count()));
        m.insert(
            "total_ns".to_string(),
            Value::U64(prof.total_nanos() as u64),
        );
        m.insert("rows".to_string(), Value::Array(rows));
        Value::Object(m)
    }
    let mut merged = Profiler::new();
    let mut kinds = Vec::new();
    for (kind, prof) in profiles {
        let mut k = Map::new();
        k.insert("kind".to_string(), Value::String(kind.name().to_string()));
        k.insert("profile".to_string(), profiler_value(prof));
        kinds.push(Value::Object(k));
        merged.merge(prof);
    }
    let mut root = Map::new();
    root.insert(
        "schema".to_string(),
        Value::String(PROFILE_SCHEMA.to_string()),
    );
    root.insert("kinds".to_string(), Value::Array(kinds));
    root.insert("all".to_string(), profiler_value(&merged));
    let mut text =
        serde_json::to_string_pretty(&Value::Object(root)).expect("serializable profile");
    text.push('\n');
    text
}

/// Render the per-kind tables plus a merged total.
pub fn render_profile(profiles: &[(VcaKind, Profiler)]) -> String {
    let mut out = String::new();
    let mut merged = Profiler::new();
    for (kind, prof) in profiles {
        out.push_str(&format!("== {kind:?} two-party call ==\n"));
        out.push_str(&prof.render_table());
        out.push('\n');
        merged.merge(prof);
    }
    out.push_str("== all kinds combined ==\n");
    out.push_str(&merged.render_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_sees_engine_events() {
        let prof = profile_two_party(VcaKind::Zoom, SimDuration::from_secs(2), 1);
        assert!(prof.total_count() > 0, "engine handled events");
        assert!(
            prof.rows().contains_key("arrive"),
            "packet arrivals profiled: {:?}",
            prof.rows().keys().collect::<Vec<_>>()
        );
        let table = render_profile(&[(VcaKind::Zoom, prof.clone())]);
        assert!(table.contains("all kinds combined"));
        assert!(table.contains("p99 ns"), "percentile columns present");
        let json = profile_json(&[(VcaKind::Zoom, prof)]);
        assert!(json.contains("\"schema\": \"vcabench-profile/v1\""));
        assert!(json.contains("\"p50_ns\""));
    }
}
