//! Harness ↔ campaign glue: execute declarative [`ScenarioSpec`]s on the
//! simulator.
//!
//! `vcabench-campaign` owns the spec language, the parallel executor and the
//! result store but deliberately knows nothing about the simulator; this
//! module supplies the runner callback mapping each spec onto the shared
//! runners in [`crate::run`] and summarizing the outcome into the campaign
//! crate's serializable records.

use std::path::Path;

use vcabench_campaign::{
    CampaignSpec, CampaignSummary, CompetitionRecord, CompetitorSpec, MultipartyRecord, RunResult,
    Sample, ScenarioOutcome, ScenarioSpec, TwoPartyRecord,
};
use vcabench_netsim::RateProfile;
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_telemetry::Telemetry;
use vcabench_vca::VcaKind;

use crate::run::{
    run_competition_metered, run_multiparty_metered, run_two_party_metered, CompetitionConfig,
    Competitor, TwoPartyOutcome, BIN,
};
use vcabench_netsim::EngineStats;

/// Offset of the share-measurement window from the competitor's start
/// (Fig 8/10 measure after a 3 s ramp).
pub const SHARE_WINDOW_DELAY: SimDuration = SimDuration::from_secs(3);
/// Length of the share-measurement window (the early contention window;
/// see the deviation note in `experiments::fig8_to_11`).
pub const SHARE_WINDOW_LEN: SimDuration = SimDuration::from_secs(45);

/// Convert a 100 ms-binned Mbps series into `(t_secs, mbps)` samples.
fn samples(series: &[f64]) -> Vec<Sample> {
    series
        .iter()
        .enumerate()
        .map(|(i, &v)| ((i as u64 * BIN.as_micros()) as f64 / 1e6, v))
        .collect()
}

/// Find a disruption window in a shaping profile: the first step that drops
/// the rate, paired with the next step that raises it back.
fn disruption_window(profile: &RateProfile) -> Option<(SimTime, SimTime)> {
    let steps = profile.steps();
    let drop = steps.windows(2).position(|w| w[1].1 < w[0].1)? + 1;
    let recover = steps[drop..]
        .iter()
        .find(|(_, rate)| *rate > steps[drop].1)?;
    Some((steps[drop].0, recover.0))
}

/// Apply a spec's optional client knobs to C1 (shared between the
/// campaign runner and the passive-inference runner in [`crate::infer`]).
pub(crate) fn apply_knobs(
    knobs: Option<&vcabench_campaign::ClientKnobs>,
    c1: &mut vcabench_vca::VcaClient,
) {
    if let Some(knobs) = knobs {
        if let Some(enable) = knobs.teams_width_bug {
            c1.set_teams_width_bug(enable);
        }
        if let (Some(min), Some(max)) = (knobs.min_rate_mbps, knobs.max_rate_mbps) {
            c1.set_rate_bounds(min, max);
        }
    }
}

/// Execute one concrete scenario. Pure in the spec: equal specs produce
/// equal outcomes (the determinism the result cache relies on).
pub fn run_spec(spec: &ScenarioSpec) -> ScenarioOutcome {
    run_spec_telemetry(spec, &Telemetry::disabled())
}

/// Like [`run_spec`], recording trace events through `tel` (the traced
/// campaign path; see [`crate::telemetry::run_spec_traced`]).
pub fn run_spec_telemetry(spec: &ScenarioSpec, tel: &Telemetry) -> ScenarioOutcome {
    run_spec_metered(spec, tel).0
}

/// Like [`run_spec_telemetry`], additionally returning the engine's
/// throughput counters — the measurement source of the `repro bench`
/// harness (see `vcabench-bench`).
pub fn run_spec_metered(spec: &ScenarioSpec, tel: &Telemetry) -> (ScenarioOutcome, EngineStats) {
    match spec.normalized() {
        ScenarioSpec::TwoParty(s) => {
            let duration = SimDuration::from_secs_f64(s.duration_secs);
            let knobs = s.knobs.clone();
            let (out, engine) = run_two_party_metered(
                s.kind,
                s.up.clone(),
                s.down.clone(),
                duration,
                s.seed,
                tel,
                |c1| apply_knobs(knobs.as_ref(), c1),
            );
            let settle = SimTime::ZERO + duration / 4;
            let (ttr_secs, nominal_mbps) = match disruption_window(&s.up)
                .map(|w| (w, &out.up_series))
                .or_else(|| disruption_window(&s.down).map(|w| (w, &out.down_series)))
            {
                Some(((d_start, d_end), series)) => {
                    let ttr = out.ttr(series, d_start, d_end);
                    (ttr.ttr.map(|d| d.as_secs_f64()), Some(ttr.nominal_mbps))
                }
                None => (None, None),
            };
            let record = ScenarioOutcome::TwoParty(TwoPartyRecord {
                steady_up_mbps: TwoPartyOutcome::median_between(
                    &out.up_series,
                    settle,
                    out.duration,
                ),
                steady_down_mbps: TwoPartyOutcome::median_between(
                    &out.down_series,
                    settle,
                    out.duration,
                ),
                ttr_secs,
                nominal_mbps,
                firs_received: out.c1_firs_received,
                freeze_secs: out.c1_freeze_time.as_secs_f64(),
                frames_decoded: out.c1_frames_decoded,
                target_series: out
                    .c1_stats
                    .iter()
                    .map(|s| (s.t.as_secs_f64(), s.target_mbps))
                    .collect(),
                up_series: samples(&out.up_series),
                down_series: samples(&out.down_series),
            });
            (record, engine)
        }
        ScenarioSpec::Competition(s) => {
            let cfg = CompetitionConfig {
                incumbent: s.incumbent,
                competitor: competitor_from_spec(s.competitor),
                capacity_mbps: s.capacity_mbps,
                competitor_start: SimDuration::from_secs_f64(
                    s.competitor_start_secs.expect("normalized"),
                ),
                competitor_duration: SimDuration::from_secs_f64(
                    s.competitor_duration_secs.expect("normalized"),
                ),
                total: SimDuration::from_secs_f64(s.total_secs.expect("normalized")),
                seed: s.seed,
            };
            let (out, engine) = run_competition_metered(&cfg, tel);
            let from = SimTime::ZERO + cfg.competitor_start + SHARE_WINDOW_DELAY;
            let to = from + SHARE_WINDOW_LEN;
            let record = ScenarioOutcome::Competition(CompetitionRecord {
                up_share: out.up_share(from, to),
                down_share: out.down_share(from, to),
                netflix_conns: out.netflix_conns as usize,
                inc_up: samples(&out.inc_up),
                inc_down: samples(&out.inc_down),
                comp_up: samples(&out.comp_up),
                comp_down: samples(&out.comp_down),
            });
            (record, engine)
        }
        ScenarioSpec::Multiparty(s) => {
            let (out, engine) = run_multiparty_metered(
                s.kind,
                s.n,
                s.pin_c1.expect("normalized"),
                SimDuration::from_secs_f64(s.duration_secs),
                s.seed,
                tel,
            );
            let record = ScenarioOutcome::Multiparty(MultipartyRecord {
                c1_up_mbps: out.c1_up_mbps,
                c1_down_mbps: out.c1_down_mbps,
            });
            (record, engine)
        }
    }
}

/// Map the spec-level competitor onto the harness runner's enum.
pub fn competitor_from_spec(spec: CompetitorSpec) -> Competitor {
    match spec {
        CompetitorSpec::Vca(kind) => Competitor::Vca(kind),
        CompetitorSpec::IperfUp => Competitor::IperfUp,
        CompetitorSpec::IperfDown => Competitor::IperfDown,
        CompetitorSpec::Netflix => Competitor::Netflix,
        CompetitorSpec::Youtube => Competitor::Youtube,
    }
}

/// A two-party spec with unconstrained links and no knobs (the usual
/// starting point for campaign templates).
pub fn unshaped_two_party(kind: VcaKind, duration_secs: f64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::TwoParty(vcabench_campaign::TwoPartySpec {
        kind,
        up: RateProfile::constant_mbps(1000.0),
        down: RateProfile::constant_mbps(1000.0),
        duration_secs,
        seed,
        knobs: None,
    })
}

/// Expand and execute a campaign on `jobs` workers (no cache).
pub fn run_campaign(campaign: &CampaignSpec, jobs: usize) -> Result<Vec<RunResult>, String> {
    vcabench_campaign::execute(campaign, jobs, run_spec)
}

/// Expand and execute a campaign with the content-addressed result store
/// under `dir`; cached runs are not recomputed unless `rerun`.
pub fn run_campaign_cached(
    campaign: &CampaignSpec,
    jobs: usize,
    dir: &Path,
    rerun: bool,
) -> Result<CampaignSummary, String> {
    vcabench_campaign::run_cached(campaign, jobs, dir, rerun, &run_spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_campaign::{CompetitionSpec, MultipartySpec};

    #[test]
    fn two_party_spec_matches_direct_runner() {
        let spec = match unshaped_two_party(VcaKind::Zoom, 30.0, 1) {
            ScenarioSpec::TwoParty(mut s) => {
                s.up = RateProfile::constant_mbps(0.8);
                ScenarioSpec::TwoParty(s)
            }
            other => other,
        };
        let outcome = run_spec(&spec);
        let direct = crate::run::run_two_party(
            VcaKind::Zoom,
            RateProfile::constant_mbps(0.8),
            RateProfile::constant_mbps(1000.0),
            SimDuration::from_secs(30),
            1,
        );
        let settle = SimTime::ZERO + SimDuration::from_secs(30) / 4;
        let expect = TwoPartyOutcome::median_between(&direct.up_series, settle, direct.duration);
        match outcome {
            ScenarioOutcome::TwoParty(r) => {
                assert_eq!(r.steady_up_mbps, expect);
                assert_eq!(r.up_series.len(), direct.up_series.len());
                assert!(r.ttr_secs.is_none() && r.nominal_mbps.is_none());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn disruption_window_detection() {
        let flat = RateProfile::constant_mbps(1.0);
        assert_eq!(disruption_window(&flat), None);
        let dip = RateProfile::disruption(
            1e9,
            0.25e6,
            SimTime::from_secs(60),
            SimDuration::from_secs(30),
        );
        let (start, end) = disruption_window(&dip).unwrap();
        assert_eq!(start, SimTime::from_secs(60));
        assert_eq!(end, SimTime::from_secs(90));
    }

    #[test]
    fn competition_and_multiparty_specs_run() {
        let comp = ScenarioSpec::Competition(CompetitionSpec {
            incumbent: VcaKind::Teams,
            competitor: CompetitorSpec::IperfUp,
            capacity_mbps: 2.0,
            competitor_start_secs: Some(10.0),
            competitor_duration_secs: Some(40.0),
            total_secs: Some(60.0),
            seed: 3,
        });
        match run_spec(&comp) {
            ScenarioOutcome::Competition(r) => {
                assert!(r.up_share > 0.0 && r.up_share < 1.0, "share {}", r.up_share);
                assert!(!r.inc_up.is_empty());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let multi = ScenarioSpec::Multiparty(MultipartySpec {
            kind: VcaKind::Meet,
            n: 3,
            pin_c1: None,
            duration_secs: 20.0,
            seed: 5,
        });
        match run_spec(&multi) {
            ScenarioOutcome::Multiparty(r) => assert!(r.c1_up_mbps > 0.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
