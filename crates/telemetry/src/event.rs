//! Typed, sim-timestamped trace events.
//!
//! Every event serializes to one JSON object with a fixed key order:
//! `t` (microseconds of sim time), `kind` (a stable snake_case tag), then
//! the kind's fields in declaration order. The order is part of the trace
//! schema ([`crate::TRACE_SCHEMA_VERSION`]) — byte-identical traces across
//! runs and worker counts are a hard requirement, so nothing here may
//! iterate a hash map or consult a wall clock.

use serde_json::{Map, Value};
use vcabench_simcore::SimTime;

/// What happened, without the timestamp. See [`Event`] for the full record.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A packet was accepted by a link (head-of-line or queued). Queue
    /// depths are sampled *after* the enqueue.
    PacketEnqueued {
        /// Link index the packet entered.
        link: u64,
        /// Flow the packet belongs to.
        flow: u64,
        /// Simulator-global packet id.
        pkt: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// Queued bytes behind the packet in service, after this enqueue.
        queue_bytes: u64,
        /// Queued packets behind the packet in service, after this enqueue.
        queue_pkts: u64,
    },
    /// A packet finished serialization and left the link. Queue depth is
    /// sampled after the departure.
    PacketDequeued {
        /// Link index the packet left.
        link: u64,
        /// Flow the packet belongs to.
        flow: u64,
        /// Simulator-global packet id.
        pkt: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// Queued bytes remaining after this departure.
        queue_bytes: u64,
    },
    /// A packet was dropped at a link.
    PacketDropped {
        /// Link index that dropped the packet.
        link: u64,
        /// Flow the packet belonged to.
        flow: u64,
        /// Simulator-global packet id.
        pkt: u64,
        /// Packet size in bytes.
        bytes: u64,
        /// Queued bytes at drop time.
        queue_bytes: u64,
        /// Why: `"queue_full"` (tail drop) or `"impairment"` (the
        /// deterministic drop-every-N loss model).
        reason: &'static str,
    },
    /// A link's shaping profile stepped to a new service rate.
    RateStep {
        /// Link index whose rate changed.
        link: u64,
        /// New service rate in bits per second.
        bps: f64,
    },
    /// A congestion controller changed state (FBRA ramp/probe/…,
    /// GCC increase/hold/decrease, Teams recover/track).
    CcState {
        /// Client index owning the controller.
        client: u64,
        /// Controller family: `"gcc"`, `"fbra"`, or `"teams"`.
        controller: &'static str,
        /// New state name (stable per-controller vocabulary).
        state: &'static str,
        /// Detector signal that caused the transition (GCC only:
        /// `"overuse"` / `"underuse"` / `"normal"`).
        signal: Option<&'static str>,
        /// Controller send-rate target after the transition, Mbps.
        target_mbps: f64,
    },
    /// The sender's planned FEC ratio changed.
    FecRatio {
        /// Client index.
        client: u64,
        /// Controller-requested FEC fraction of the total budget.
        fraction: f64,
        /// Realized FEC-to-media ratio after stream planning.
        fec_per_media: f64,
    },
    /// The encoder's layer/simulcast plan changed shape.
    LayerSwitch {
        /// Client index.
        client: u64,
        /// Number of simulcast streams in the new plan.
        streams: u64,
        /// Width in pixels of the top layer (0 when no streams).
        top_width: u64,
        /// Frame rate of the top layer (0 when no streams).
        top_fps: f64,
    },
    /// A Full Intra Request was sent or received.
    Fir {
        /// Client index observing the FIR.
        client: u64,
        /// SSRC the request refers to.
        ssrc: u64,
        /// `"sent"` or `"received"`.
        dir: &'static str,
    },
    /// The receive-side freeze detector flagged a new freeze.
    Freeze {
        /// Client index whose render path froze.
        client: u64,
        /// Index of the sending client.
        sender: u64,
        /// Cumulative freeze count for this sender.
        count: u64,
        /// Cumulative freeze time for this sender, milliseconds.
        total_ms: f64,
    },
    /// A testkit invariant violation, interleaved with the packet events
    /// that led up to it (only present when `testkit-checks` is armed).
    InvariantViolation {
        /// Name of the violated invariant.
        invariant: String,
        /// Human-readable violation detail.
        detail: String,
    },
}

/// A trace event: when plus what.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time of emission.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

impl EventKind {
    /// Stable snake_case tag identifying the event kind in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PacketEnqueued { .. } => "packet_enqueue",
            EventKind::PacketDequeued { .. } => "packet_dequeue",
            EventKind::PacketDropped { .. } => "packet_drop",
            EventKind::RateStep { .. } => "rate_step",
            EventKind::CcState { .. } => "cc_state",
            EventKind::FecRatio { .. } => "fec_ratio",
            EventKind::LayerSwitch { .. } => "layer_switch",
            EventKind::Fir { .. } => "fir",
            EventKind::Freeze { .. } => "freeze",
            EventKind::InvariantViolation { .. } => "invariant_violation",
        }
    }

    /// All kind tags the schema defines, sorted (for validators and docs).
    pub const NAMES: [&'static str; 10] = [
        "cc_state",
        "fec_ratio",
        "fir",
        "freeze",
        "invariant_violation",
        "layer_switch",
        "packet_dequeue",
        "packet_drop",
        "packet_enqueue",
        "rate_step",
    ];
}

impl Event {
    /// Serialize to a JSON object with the schema's fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("t".to_string(), Value::U64(self.at.as_micros()));
        m.insert(
            "kind".to_string(),
            Value::String(self.kind.name().to_string()),
        );
        let s = |v: &str| Value::String(v.to_string());
        match &self.kind {
            EventKind::PacketEnqueued {
                link,
                flow,
                pkt,
                bytes,
                queue_bytes,
                queue_pkts,
            } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("flow".to_string(), Value::U64(*flow));
                m.insert("pkt".to_string(), Value::U64(*pkt));
                m.insert("bytes".to_string(), Value::U64(*bytes));
                m.insert("queue_bytes".to_string(), Value::U64(*queue_bytes));
                m.insert("queue_pkts".to_string(), Value::U64(*queue_pkts));
            }
            EventKind::PacketDequeued {
                link,
                flow,
                pkt,
                bytes,
                queue_bytes,
            } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("flow".to_string(), Value::U64(*flow));
                m.insert("pkt".to_string(), Value::U64(*pkt));
                m.insert("bytes".to_string(), Value::U64(*bytes));
                m.insert("queue_bytes".to_string(), Value::U64(*queue_bytes));
            }
            EventKind::PacketDropped {
                link,
                flow,
                pkt,
                bytes,
                queue_bytes,
                reason,
            } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("flow".to_string(), Value::U64(*flow));
                m.insert("pkt".to_string(), Value::U64(*pkt));
                m.insert("bytes".to_string(), Value::U64(*bytes));
                m.insert("queue_bytes".to_string(), Value::U64(*queue_bytes));
                m.insert("reason".to_string(), s(reason));
            }
            EventKind::RateStep { link, bps } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("bps".to_string(), Value::F64(*bps));
            }
            EventKind::CcState {
                client,
                controller,
                state,
                signal,
                target_mbps,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("controller".to_string(), s(controller));
                m.insert("state".to_string(), s(state));
                m.insert("signal".to_string(), signal.map(s).unwrap_or(Value::Null));
                m.insert("target_mbps".to_string(), Value::F64(*target_mbps));
            }
            EventKind::FecRatio {
                client,
                fraction,
                fec_per_media,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("fraction".to_string(), Value::F64(*fraction));
                m.insert("fec_per_media".to_string(), Value::F64(*fec_per_media));
            }
            EventKind::LayerSwitch {
                client,
                streams,
                top_width,
                top_fps,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("streams".to_string(), Value::U64(*streams));
                m.insert("top_width".to_string(), Value::U64(*top_width));
                m.insert("top_fps".to_string(), Value::F64(*top_fps));
            }
            EventKind::Fir { client, ssrc, dir } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("ssrc".to_string(), Value::U64(*ssrc));
                m.insert("dir".to_string(), s(dir));
            }
            EventKind::Freeze {
                client,
                sender,
                count,
                total_ms,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("sender".to_string(), Value::U64(*sender));
                m.insert("count".to_string(), Value::U64(*count));
                m.insert("total_ms".to_string(), Value::F64(*total_ms));
            }
            EventKind::InvariantViolation { invariant, detail } => {
                m.insert("invariant".to_string(), Value::String(invariant.clone()));
                m.insert("detail".to_string(), Value::String(detail.clone()));
            }
        }
        Value::Object(m)
    }

    /// Serialize to one compact JSONL line (no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(&self.to_json_value()).expect("event serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_fixed_and_kind_tags_are_stable() {
        let ev = Event {
            at: SimTime::from_millis(1500),
            kind: EventKind::PacketDropped {
                link: 2,
                flow: 7,
                pkt: 901,
                bytes: 1200,
                queue_bytes: 65_536,
                reason: "queue_full",
            },
        };
        assert_eq!(
            ev.to_jsonl_line(),
            "{\"t\":1500000,\"kind\":\"packet_drop\",\"link\":2,\"flow\":7,\
             \"pkt\":901,\"bytes\":1200,\"queue_bytes\":65536,\"reason\":\"queue_full\"}"
        );
    }

    #[test]
    fn names_list_is_sorted_and_complete() {
        let mut sorted = EventKind::NAMES;
        sorted.sort_unstable();
        assert_eq!(sorted, EventKind::NAMES);
        // Spot-check the mapping both ways for a few kinds.
        let cc = EventKind::CcState {
            client: 0,
            controller: "fbra",
            state: "ramp",
            signal: None,
            target_mbps: 1.0,
        };
        assert!(EventKind::NAMES.contains(&cc.name()));
    }
}
