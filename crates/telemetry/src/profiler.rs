//! A sim-engine profiler: counts and wall-clock-times handled events per
//! type, answering "where does sim time go".
//!
//! Wall-clock durations are nondeterministic by nature, so profiler
//! output is print-only (`repro --profile`) and never enters a trace or
//! manifest. Keys are `&'static str` labels supplied by the engine (one
//! per event type) and rows render sorted by total time.

use std::collections::BTreeMap;
use std::time::Duration;

/// Log2 histogram buckets per [`ProfileRow`]: bucket `b` holds samples
/// in `[2^b, 2^(b+1))` ns (bucket 0 also holds 0 ns; the last bucket is
/// open-ended at ~2.1 s).
pub const HIST_BUCKETS: usize = 32;

/// Accumulated cost of one event type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProfileRow {
    /// Events handled.
    pub count: u64,
    /// Total wall-clock nanoseconds spent handling them.
    pub nanos: u128,
    /// Log2 duration histogram (see [`HIST_BUCKETS`]).
    pub hist: [u64; HIST_BUCKETS],
}

impl ProfileRow {
    /// Histogram bucket index for a sample of `nanos`.
    #[inline]
    fn bucket(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            ((63 - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one sample into the row.
    #[inline]
    fn add(&mut self, nanos: u64) {
        self.count += 1;
        self.nanos += nanos as u128;
        self.hist[Self::bucket(nanos)] += 1;
    }

    /// Approximate `p`-th percentile (0 < p ≤ 1) of the per-event
    /// wall-clock cost in nanoseconds: the upper edge of the log2
    /// bucket the percentile rank falls into (so the estimate is within
    /// 2x of the true sample, biased high). Returns 0 for an empty row.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
            }
        }
        u64::MAX
    }
}

/// Per-event-type count + wall-clock accumulator.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    rows: BTreeMap<&'static str, ProfileRow>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Record one handled event of type `key` that took `elapsed`.
    #[inline]
    pub fn record(&mut self, key: &'static str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.rows.entry(key).or_default().add(nanos);
    }

    /// Rows keyed by event type, sorted by key.
    pub fn rows(&self) -> &BTreeMap<&'static str, ProfileRow> {
        &self.rows
    }

    /// Total events recorded.
    pub fn total_count(&self) -> u64 {
        self.rows.values().map(|r| r.count).sum()
    }

    /// Total wall-clock nanoseconds recorded.
    pub fn total_nanos(&self) -> u128 {
        self.rows.values().map(|r| r.nanos).sum()
    }

    /// Merge another profiler's rows into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (key, row) in &other.rows {
            let mine = self.rows.entry(key).or_default();
            mine.count += row.count;
            mine.nanos += row.nanos;
            for (m, o) in mine.hist.iter_mut().zip(row.hist.iter()) {
                *m += o;
            }
        }
    }

    /// Render the "where does sim time go" table: one row per event type,
    /// sorted by total time descending (ties by name), plus a total row.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(&str, ProfileRow)> = self.rows.iter().map(|(k, r)| (*k, *r)).collect();
        rows.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(b.0)));
        let total = self.total_nanos().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8} {:>7}\n",
            "event", "count", "total ms", "avg ns", "p50 ns", "p90 ns", "p99 ns", "share"
        ));
        for (key, row) in rows {
            let avg = if row.count > 0 {
                row.nanos / row.count as u128
            } else {
                0
            };
            out.push_str(&format!(
                "{:<12} {:>12} {:>12.3} {:>10} {:>8} {:>8} {:>8} {:>6.1}%\n",
                key,
                row.count,
                row.nanos as f64 / 1e6,
                avg,
                row.percentile(0.50),
                row.percentile(0.90),
                row.percentile(0.99),
                100.0 * row.nanos as f64 / total as f64,
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12} {:>12.3}\n",
            "total",
            self.total_count(),
            self.total_nanos() as f64 / 1e6,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merges_and_renders() {
        let mut p = Profiler::new();
        p.record("arrive", Duration::from_nanos(500));
        p.record("arrive", Duration::from_nanos(1500));
        p.record("timer", Duration::from_nanos(1000));
        let mut q = Profiler::new();
        q.record("timer", Duration::from_nanos(3000));
        p.merge(&q);

        assert_eq!(p.total_count(), 4);
        assert_eq!(p.total_nanos(), 6000);
        assert_eq!(p.rows()["arrive"].count, 2);
        assert_eq!(p.rows()["arrive"].nanos, 2000);
        assert_eq!(p.rows()["timer"].count, 2);
        assert_eq!(p.rows()["timer"].nanos, 4000);
        // The merged histogram still holds every sample.
        assert_eq!(p.rows()["timer"].hist.iter().sum::<u64>(), 2);

        let table = p.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("event"));
        assert!(lines[0].contains("p50 ns") && lines[0].contains("p99 ns"));
        // timer (4000 ns) outranks arrive (2000 ns).
        assert!(
            lines[1].starts_with("timer"),
            "table sorted by time: {table}"
        );
        assert!(lines[2].starts_with("arrive"));
        assert!(lines[3].starts_with("total"));
    }

    #[test]
    fn percentiles_over_a_synthetic_distribution() {
        // 89 fast samples at ~100 ns, 10 at ~10 µs, 1 at ~1 ms: p50 must
        // sit in the fast bucket, p90 at its edge, p99 in the middle
        // band, and only the max reaches the slow outlier.
        let mut p = Profiler::new();
        for _ in 0..89 {
            p.record("mixed", Duration::from_nanos(100));
        }
        for _ in 0..10 {
            p.record("mixed", Duration::from_nanos(10_000));
        }
        p.record("mixed", Duration::from_nanos(1_000_000));
        let row = p.rows()["mixed"];
        assert_eq!(row.count, 100);
        // 100 ns lives in bucket 6 ([64, 128)); upper edge 127.
        assert_eq!(row.percentile(0.50), 127);
        assert_eq!(row.percentile(0.89), 127);
        // 10 µs lives in bucket 13 ([8192, 16384)); upper edge 16383.
        assert_eq!(row.percentile(0.90), 16383);
        assert_eq!(row.percentile(0.99), 16383);
        // Only the very top rank sees the 1 ms outlier (bucket 19).
        assert_eq!(row.percentile(1.0), (1 << 20) - 1);
        // Degenerate inputs stay sane.
        assert_eq!(ProfileRow::default().percentile(0.5), 0);
        let mut zero = Profiler::new();
        zero.record("z", Duration::from_nanos(0));
        assert_eq!(zero.rows()["z"].percentile(0.99), 1);
    }
}
