//! A sim-engine profiler: counts and wall-clock-times handled events per
//! type, answering "where does sim time go".
//!
//! Wall-clock durations are nondeterministic by nature, so profiler
//! output is print-only (`repro --profile`) and never enters a trace or
//! manifest. Keys are `&'static str` labels supplied by the engine (one
//! per event type) and rows render sorted by total time.

use std::collections::BTreeMap;
use std::time::Duration;

/// Accumulated cost of one event type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProfileRow {
    /// Events handled.
    pub count: u64,
    /// Total wall-clock nanoseconds spent handling them.
    pub nanos: u128,
}

/// Per-event-type count + wall-clock accumulator.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    rows: BTreeMap<&'static str, ProfileRow>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Record one handled event of type `key` that took `elapsed`.
    #[inline]
    pub fn record(&mut self, key: &'static str, elapsed: Duration) {
        let row = self.rows.entry(key).or_default();
        row.count += 1;
        row.nanos += elapsed.as_nanos();
    }

    /// Rows keyed by event type, sorted by key.
    pub fn rows(&self) -> &BTreeMap<&'static str, ProfileRow> {
        &self.rows
    }

    /// Total events recorded.
    pub fn total_count(&self) -> u64 {
        self.rows.values().map(|r| r.count).sum()
    }

    /// Total wall-clock nanoseconds recorded.
    pub fn total_nanos(&self) -> u128 {
        self.rows.values().map(|r| r.nanos).sum()
    }

    /// Merge another profiler's rows into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (key, row) in &other.rows {
            let mine = self.rows.entry(key).or_default();
            mine.count += row.count;
            mine.nanos += row.nanos;
        }
    }

    /// Render the "where does sim time go" table: one row per event type,
    /// sorted by total time descending (ties by name), plus a total row.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(&str, ProfileRow)> = self.rows.iter().map(|(k, r)| (*k, *r)).collect();
        rows.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(b.0)));
        let total = self.total_nanos().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>10} {:>7}\n",
            "event", "count", "total ms", "avg ns", "share"
        ));
        for (key, row) in rows {
            let avg = if row.count > 0 {
                row.nanos / row.count as u128
            } else {
                0
            };
            out.push_str(&format!(
                "{:<12} {:>12} {:>12.3} {:>10} {:>6.1}%\n",
                key,
                row.count,
                row.nanos as f64 / 1e6,
                avg,
                100.0 * row.nanos as f64 / total as f64,
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>12} {:>12.3}\n",
            "total",
            self.total_count(),
            self.total_nanos() as f64 / 1e6,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merges_and_renders() {
        let mut p = Profiler::new();
        p.record("arrive", Duration::from_nanos(500));
        p.record("arrive", Duration::from_nanos(1500));
        p.record("timer", Duration::from_nanos(1000));
        let mut q = Profiler::new();
        q.record("timer", Duration::from_nanos(3000));
        p.merge(&q);

        assert_eq!(p.total_count(), 4);
        assert_eq!(p.total_nanos(), 6000);
        assert_eq!(
            p.rows()["arrive"],
            ProfileRow {
                count: 2,
                nanos: 2000
            }
        );
        assert_eq!(
            p.rows()["timer"],
            ProfileRow {
                count: 2,
                nanos: 4000
            }
        );

        let table = p.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("event"));
        // timer (4000 ns) outranks arrive (2000 ns).
        assert!(
            lines[1].starts_with("timer"),
            "table sorted by time: {table}"
        );
        assert!(lines[2].starts_with("arrive"));
        assert!(lines[3].starts_with("total"));
    }
}
