//! Trace import: parse exported `.events.jsonl` lines back into typed
//! [`Event`]s.
//!
//! The export half ([`crate::export`]) turns an [`EventLog`](crate::EventLog)
//! into JSONL; this module is its inverse, so offline consumers (the
//! passive-inference subsystem, trace tooling) can replay an artifact
//! through the exact same [`Recorder`](crate::Recorder) implementations
//! that run online. Round-tripping is exact: for every event,
//! `parse_event_line(&ev.to_jsonl_line())` reproduces `ev`.
//!
//! String fields in [`EventKind`] are `&'static str` drawn from closed
//! per-field vocabularies (drop reasons, FIR directions, controller and
//! state names). The importer interns each incoming string against those
//! tables and rejects anything outside them — the same closed-schema
//! stance as [`crate::export::validate_event_line`], but stricter, since
//! the validator only checks types while replay needs exact vocabulary.

use serde_json::Value;
use vcabench_simcore::SimTime;

use crate::event::{Event, EventKind};

/// Closed vocabulary for `packet_drop.reason`.
const REASONS: [&str; 2] = ["impairment", "queue_full"];
/// Closed vocabulary for `fir.dir`.
const DIRS: [&str; 2] = ["received", "sent"];
/// Closed vocabulary for `cc_state.controller`.
const CONTROLLERS: [&str; 3] = ["fbra", "gcc", "teams"];
/// Closed vocabulary for `cc_state.state` (union over controllers).
const STATES: [&str; 11] = [
    "decay",
    "decrease",
    "fall",
    "hold",
    "increase",
    "probe",
    "probe-hold",
    "ramp",
    "recover",
    "stay",
    "track",
];
/// Closed vocabulary for `cc_state.signal`.
const SIGNALS: [&str; 3] = ["normal", "overuse", "underuse"];

/// Intern `s` against a sorted vocabulary table, recovering the
/// `&'static str` the exporter serialized.
fn intern(table: &[&'static str], s: &str, field: &str) -> Result<&'static str, String> {
    table
        .iter()
        .find(|&&t| t == s)
        .copied()
        .ok_or_else(|| format!("unknown `{field}` value `{s}`"))
}

fn get_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("missing or non-uint field `{field}`"))
}

fn get_f64(v: &Value, field: &str) -> Result<f64, String> {
    v.get(field)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("missing or non-numeric field `{field}`"))
}

fn get_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, String> {
    v.get(field)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("missing or non-string field `{field}`"))
}

/// Parse one JSONL trace line into a typed [`Event`].
///
/// Inverse of [`Event::to_jsonl_line`]: the result round-trips back to the
/// same bytes. Unknown kinds, missing fields, and out-of-vocabulary string
/// values are errors.
pub fn parse_event_line(line: &str) -> Result<Event, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("line is not a JSON object".to_string());
    }
    let at = SimTime::from_micros(get_u64(&v, "t")?);
    let kind_tag = get_str(&v, "kind")?;
    let kind = match kind_tag {
        "packet_enqueue" => EventKind::PacketEnqueued {
            link: get_u64(&v, "link")?,
            flow: get_u64(&v, "flow")?,
            pkt: get_u64(&v, "pkt")?,
            bytes: get_u64(&v, "bytes")?,
            queue_bytes: get_u64(&v, "queue_bytes")?,
            queue_pkts: get_u64(&v, "queue_pkts")?,
        },
        "packet_dequeue" => EventKind::PacketDequeued {
            link: get_u64(&v, "link")?,
            flow: get_u64(&v, "flow")?,
            pkt: get_u64(&v, "pkt")?,
            bytes: get_u64(&v, "bytes")?,
            queue_bytes: get_u64(&v, "queue_bytes")?,
        },
        "packet_drop" => EventKind::PacketDropped {
            link: get_u64(&v, "link")?,
            flow: get_u64(&v, "flow")?,
            pkt: get_u64(&v, "pkt")?,
            bytes: get_u64(&v, "bytes")?,
            queue_bytes: get_u64(&v, "queue_bytes")?,
            reason: intern(&REASONS, get_str(&v, "reason")?, "reason")?,
        },
        "rate_step" => EventKind::RateStep {
            link: get_u64(&v, "link")?,
            bps: get_f64(&v, "bps")?,
        },
        "cc_state" => EventKind::CcState {
            client: get_u64(&v, "client")?,
            controller: intern(&CONTROLLERS, get_str(&v, "controller")?, "controller")?,
            state: intern(&STATES, get_str(&v, "state")?, "state")?,
            signal: match v.get("signal") {
                None | Some(Value::Null) => None,
                Some(Value::String(s)) => Some(intern(&SIGNALS, s, "signal")?),
                Some(other) => {
                    return Err(format!("field `signal` has kind {}", other.kind()));
                }
            },
            target_mbps: get_f64(&v, "target_mbps")?,
        },
        "fec_ratio" => EventKind::FecRatio {
            client: get_u64(&v, "client")?,
            fraction: get_f64(&v, "fraction")?,
            fec_per_media: get_f64(&v, "fec_per_media")?,
        },
        "layer_switch" => EventKind::LayerSwitch {
            client: get_u64(&v, "client")?,
            streams: get_u64(&v, "streams")?,
            top_width: get_u64(&v, "top_width")?,
            top_fps: get_f64(&v, "top_fps")?,
        },
        "fir" => EventKind::Fir {
            client: get_u64(&v, "client")?,
            ssrc: get_u64(&v, "ssrc")?,
            dir: intern(&DIRS, get_str(&v, "dir")?, "dir")?,
        },
        "freeze" => EventKind::Freeze {
            client: get_u64(&v, "client")?,
            sender: get_u64(&v, "sender")?,
            count: get_u64(&v, "count")?,
            total_ms: get_f64(&v, "total_ms")?,
        },
        "invariant_violation" => EventKind::InvariantViolation {
            invariant: get_str(&v, "invariant")?.to_string(),
            detail: get_str(&v, "detail")?.to_string(),
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(Event { at, kind })
}

/// Parse a whole JSONL document, feeding each event into `sink` in order.
///
/// Returns the number of events delivered. Errors carry the 1-based line
/// number; timestamps must be non-decreasing, matching the export
/// contract. Streaming: one event is materialized at a time, never the
/// whole document.
pub fn replay_jsonl(text: &str, sink: &mut dyn crate::Recorder) -> Result<u64, String> {
    let mut n = 0u64;
    let mut last_t = SimTime::ZERO;
    for (i, line) in text.lines().enumerate() {
        let ev = parse_event_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if ev.at < last_t {
            return Err(format!(
                "line {}: timestamp {} goes backwards",
                i + 1,
                ev.at.as_micros()
            ));
        }
        last_t = ev.at;
        sink.record(ev.at, ev.kind);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{EventLog, Recorder};

    fn round_trip(ev: Event) {
        let line = ev.to_jsonl_line();
        let back = parse_event_line(&line).expect("parse back");
        assert_eq!(back, ev, "round trip changed the event: {line}");
        assert_eq!(back.to_jsonl_line(), line, "bytes changed");
    }

    #[test]
    fn every_kind_round_trips() {
        let at = SimTime::from_millis(1500);
        let kinds = vec![
            EventKind::PacketEnqueued {
                link: 0,
                flow: 10,
                pkt: 1,
                bytes: 1140,
                queue_bytes: 2280,
                queue_pkts: 2,
            },
            EventKind::PacketDequeued {
                link: 1,
                flow: 11,
                pkt: 2,
                bytes: 168,
                queue_bytes: 0,
            },
            EventKind::PacketDropped {
                link: 4,
                flow: 10,
                pkt: 3,
                bytes: 1140,
                queue_bytes: 65_536,
                reason: "queue_full",
            },
            EventKind::RateStep { link: 0, bps: 5e5 },
            EventKind::CcState {
                client: 0,
                controller: "gcc",
                state: "decrease",
                signal: Some("overuse"),
                target_mbps: 0.75,
            },
            EventKind::CcState {
                client: 1,
                controller: "fbra",
                state: "probe-hold",
                signal: None,
                target_mbps: 1.25,
            },
            EventKind::FecRatio {
                client: 0,
                fraction: 0.3,
                fec_per_media: 0.42857142857142855,
            },
            EventKind::LayerSwitch {
                client: 0,
                streams: 3,
                top_width: 1280,
                top_fps: 25.0,
            },
            EventKind::Fir {
                client: 1,
                ssrc: 5,
                dir: "sent",
            },
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 2,
                total_ms: 612.5,
            },
            EventKind::InvariantViolation {
                invariant: "queue_bound".to_string(),
                detail: "q=70000 > 65536".to_string(),
            },
        ];
        for kind in kinds {
            round_trip(Event { at, kind });
        }
    }

    #[test]
    fn interning_recovers_static_vocab() {
        let ev =
            parse_event_line("{\"t\":1,\"kind\":\"fir\",\"client\":0,\"ssrc\":5,\"dir\":\"sent\"}")
                .unwrap();
        match ev.kind {
            EventKind::Fir { dir, .. } => assert_eq!(dir, "sent"),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_vocabulary_strings() {
        let cases = [
            "{\"t\":1,\"kind\":\"fir\",\"client\":0,\"ssrc\":5,\"dir\":\"upward\"}",
            "{\"t\":1,\"kind\":\"packet_drop\",\"link\":0,\"flow\":1,\"pkt\":2,\
             \"bytes\":3,\"queue_bytes\":4,\"reason\":\"cosmic_ray\"}",
            "{\"t\":1,\"kind\":\"cc_state\",\"client\":0,\"controller\":\"bbr\",\
             \"state\":\"hold\",\"signal\":null,\"target_mbps\":1}",
            "{\"t\":1,\"kind\":\"cc_state\",\"client\":0,\"controller\":\"gcc\",\
             \"state\":\"panic\",\"signal\":null,\"target_mbps\":1}",
            "{\"t\":1,\"kind\":\"cc_state\",\"client\":0,\"controller\":\"gcc\",\
             \"state\":\"hold\",\"signal\":\"chaos\",\"target_mbps\":1}",
        ];
        for line in cases {
            assert!(parse_event_line(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_event_line("not json").is_err());
        assert!(parse_event_line("[1]").is_err());
        assert!(parse_event_line("{\"t\":1,\"kind\":\"no_such_kind\"}").is_err());
        assert!(parse_event_line("{\"kind\":\"fir\"}").is_err(), "missing t");
    }

    #[test]
    fn replay_feeds_a_recorder_and_enforces_order() {
        let mut log = EventLog::unbounded();
        log.record(
            SimTime::from_micros(1),
            EventKind::RateStep { link: 0, bps: 1e6 },
        );
        log.record(
            SimTime::from_micros(2),
            EventKind::Fir {
                client: 0,
                ssrc: 1,
                dir: "received",
            },
        );
        let text = crate::export::events_jsonl(&log);

        let mut replayed = EventLog::unbounded();
        let n = replay_jsonl(&text, &mut replayed).unwrap();
        assert_eq!(n, 2);
        let orig: Vec<Event> = log.events().cloned().collect();
        let back: Vec<Event> = replayed.events().cloned().collect();
        assert_eq!(orig, back);

        let bad = "{\"t\":5,\"kind\":\"fir\",\"client\":0,\"ssrc\":1,\"dir\":\"sent\"}\n\
                   {\"t\":4,\"kind\":\"fir\",\"client\":0,\"ssrc\":1,\"dir\":\"sent\"}\n";
        let mut sink = crate::recorder::NullRecorder;
        let err = replay_jsonl(bad, &mut sink).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }
}
