//! Run-artifact export: versioned JSONL event traces, CSV time series,
//! per-run manifests, and the trace-line validator.
//!
//! A traced run produces three files named by its deterministic run label:
//!
//! - `<label>.events.jsonl` — one [`Event`](crate::Event) per line
//!   (see [`validate_event_line`] for the schema);
//! - `<label>.series.csv` — the run's headline time series, one header
//!   row then one row per sample;
//! - `<label>.manifest.json` — a [`RunManifest`]: schema version, spec
//!   hash, seed, event counts, and a metrics snapshot, tying a cached
//!   outcome back to its trace evidence.
//!
//! All three are pure functions of the event log and outcome, so they are
//! byte-identical across worker counts and invocations.

use std::collections::BTreeMap;

use serde_json::{Map, Value};

use crate::metrics::MetricsRegistry;
use crate::recorder::EventLog;
use crate::TRACE_SCHEMA_VERSION;

/// Serialize an event log as JSONL (one compact object per line, trailing
/// newline after the last event, empty string for an empty log).
pub fn events_jsonl(log: &EventLog) -> String {
    let mut out = String::new();
    for ev in log.events() {
        out.push_str(&ev.to_jsonl_line());
        out.push('\n');
    }
    out
}

/// Expected type of one schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldType {
    /// A non-negative integer (u64).
    UInt,
    /// Any JSON number (integers are fine: `1e6` serializes as `1000000`).
    Num,
    /// A string.
    Str,
    /// A string or `null`.
    StrOrNull,
}

/// Field table for one event kind, in required serialization order.
fn fields_for(kind: &str) -> Option<&'static [(&'static str, FieldType)]> {
    use FieldType::*;
    Some(match kind {
        "packet_enqueue" => &[
            ("link", UInt),
            ("flow", UInt),
            ("pkt", UInt),
            ("bytes", UInt),
            ("queue_bytes", UInt),
            ("queue_pkts", UInt),
        ],
        "packet_dequeue" => &[
            ("link", UInt),
            ("flow", UInt),
            ("pkt", UInt),
            ("bytes", UInt),
            ("queue_bytes", UInt),
        ],
        "packet_drop" => &[
            ("link", UInt),
            ("flow", UInt),
            ("pkt", UInt),
            ("bytes", UInt),
            ("queue_bytes", UInt),
            ("reason", Str),
        ],
        "rate_step" => &[("link", UInt), ("bps", Num)],
        "cc_state" => &[
            ("client", UInt),
            ("controller", Str),
            ("state", Str),
            ("signal", StrOrNull),
            ("target_mbps", Num),
        ],
        "fec_ratio" => &[("client", UInt), ("fraction", Num), ("fec_per_media", Num)],
        "layer_switch" => &[
            ("client", UInt),
            ("streams", UInt),
            ("top_width", UInt),
            ("top_fps", Num),
        ],
        "fir" => &[("client", UInt), ("ssrc", UInt), ("dir", Str)],
        "freeze" => &[
            ("client", UInt),
            ("sender", UInt),
            ("count", UInt),
            ("total_ms", Num),
        ],
        "invariant_violation" => &[("invariant", Str), ("detail", Str)],
        _ => return None,
    })
}

fn type_ok(v: &Value, ty: FieldType) -> bool {
    match ty {
        FieldType::UInt => matches!(v, Value::U64(_)) || matches!(v, Value::I64(n) if *n >= 0),
        FieldType::Num => matches!(v, Value::U64(_) | Value::I64(_) | Value::F64(_)),
        FieldType::Str => matches!(v, Value::String(_)),
        FieldType::StrOrNull => matches!(v, Value::String(_) | Value::Null),
    }
}

/// Validate one JSONL trace line against schema
/// [`TRACE_SCHEMA_VERSION`]. Returns the event kind tag on success.
///
/// Checks: the line parses as a JSON object; `t` is a non-negative
/// integer; `kind` is a known tag; exactly the kind's fields are present
/// with the right types (extra or missing fields are errors — the schema
/// is closed).
pub fn validate_event_line(line: &str) -> Result<String, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let obj = v.as_object().ok_or("line is not a JSON object")?;
    let t = v.get("t").ok_or("missing field `t`")?;
    if !type_ok(t, FieldType::UInt) {
        return Err("field `t` must be a non-negative integer".to_string());
    }
    let kind = v
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or("missing or non-string field `kind`")?
        .to_string();
    let fields = fields_for(&kind).ok_or_else(|| format!("unknown event kind `{kind}`"))?;
    for (name, ty) in fields {
        let val = v
            .get(name)
            .ok_or_else(|| format!("`{kind}` is missing field `{name}`"))?;
        if !type_ok(val, *ty) {
            return Err(format!("`{kind}` field `{name}` has the wrong type"));
        }
    }
    let expected = fields.len() + 2; // + t, kind
    let actual = obj.len();
    if actual != expected {
        return Err(format!(
            "`{kind}` has {actual} fields, schema expects {expected} (closed schema)"
        ));
    }
    Ok(kind)
}

/// Validate a whole JSONL document; on failure reports the 1-based line
/// number. Returns per-kind line counts on success.
pub fn validate_jsonl(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut counts = BTreeMap::new();
    let mut last_t = 0u64;
    for (i, line) in text.lines().enumerate() {
        let kind = validate_event_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        // Sim-time order is part of the contract.
        let t = serde_json::from_str::<Value>(line)
            .ok()
            .and_then(|v| v.get("t").and_then(|t| t.as_u64()))
            .unwrap_or(0);
        if t < last_t {
            return Err(format!("line {}: timestamp {t} goes backwards", i + 1));
        }
        last_t = t;
        *counts.entry(kind).or_insert(0) += 1;
    }
    Ok(counts)
}

/// Per-run manifest tying a trace to the spec and cache entry it came
/// from. Serializes with a fixed key order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Trace schema version ([`TRACE_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Deterministic run label (also the artifact file stem).
    pub label: String,
    /// Content hash of the normalized spec (the result-cache key).
    pub spec_hash: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Total events recorded (including any evicted from a bounded ring).
    pub events_total: u64,
    /// Events present in the exported JSONL.
    pub events_stored: u64,
    /// Events dropped by a bounded ring (`events_total - events_stored`
    /// for a ring; always 0 for the unbounded logs the export paths use).
    pub events_dropped: u64,
    /// Per-kind event counts, sorted by kind tag.
    pub event_counts: BTreeMap<String, u64>,
    /// Metrics snapshot derived from the event log.
    pub metrics: Value,
}

impl RunManifest {
    /// Build a manifest for `label`/`spec_hash`/`seed` from an event log.
    pub fn for_run(label: &str, spec_hash: &str, seed: u64, log: &EventLog) -> Self {
        RunManifest {
            schema: TRACE_SCHEMA_VERSION,
            label: label.to_string(),
            spec_hash: spec_hash.to_string(),
            seed,
            events_total: log.total_recorded(),
            events_stored: log.len() as u64,
            events_dropped: log.dropped_events(),
            event_counts: log
                .counts()
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            metrics: MetricsRegistry::from_events(log).snapshot(),
        }
    }

    /// Serialize with fixed top-level key order and sorted inner keys.
    pub fn to_json_value(&self) -> Value {
        let mut counts = Map::new();
        for (k, &v) in &self.event_counts {
            counts.insert(k.clone(), Value::U64(v));
        }
        let mut m = Map::new();
        m.insert("schema".to_string(), Value::U64(self.schema as u64));
        m.insert("label".to_string(), Value::String(self.label.clone()));
        m.insert(
            "spec_hash".to_string(),
            Value::String(self.spec_hash.clone()),
        );
        m.insert("seed".to_string(), Value::U64(self.seed));
        m.insert("events_total".to_string(), Value::U64(self.events_total));
        m.insert("events_stored".to_string(), Value::U64(self.events_stored));
        m.insert(
            "events_dropped".to_string(),
            Value::U64(self.events_dropped),
        );
        m.insert("event_counts".to_string(), Value::Object(counts));
        m.insert("metrics".to_string(), self.metrics.clone());
        Value::Object(m)
    }
}

/// Pretty-printed manifest JSON (with trailing newline).
pub fn manifest_json(m: &RunManifest) -> String {
    let mut text = serde_json::to_string_pretty(&m.to_json_value())
        .expect("manifest serialization is infallible");
    text.push('\n');
    text
}

/// Render a CSV document: a header row then one row per record, floats
/// via shortest-round-trip formatting (deterministic).
pub fn series_csv(headers: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), headers.len());
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::Recorder;
    use vcabench_simcore::SimTime;

    fn sample_log() -> EventLog {
        let mut log = EventLog::unbounded();
        log.record(
            SimTime::from_micros(10),
            EventKind::RateStep { link: 0, bps: 1e6 },
        );
        log.record(
            SimTime::from_micros(20),
            EventKind::PacketDropped {
                link: 0,
                flow: 3,
                pkt: 42,
                bytes: 1200,
                queue_bytes: 65_536,
                reason: "queue_full",
            },
        );
        log.record(
            SimTime::from_micros(30),
            EventKind::CcState {
                client: 0,
                controller: "gcc",
                state: "decrease",
                signal: Some("overuse"),
                target_mbps: 0.75,
            },
        );
        log
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let text = events_jsonl(&sample_log());
        assert_eq!(text.lines().count(), 3);
        let counts = validate_jsonl(&text).expect("all lines valid");
        assert_eq!(counts["rate_step"], 1);
        assert_eq!(counts["packet_drop"], 1);
        assert_eq!(counts["cc_state"], 1);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_event_line("not json").is_err());
        assert!(validate_event_line("[1,2]").is_err());
        assert!(
            validate_event_line("{\"kind\":\"fir\"}").is_err(),
            "missing t"
        );
        assert!(
            validate_event_line("{\"t\":1,\"kind\":\"no_such_kind\"}").is_err(),
            "unknown kind"
        );
        assert!(
            validate_event_line("{\"t\":1,\"kind\":\"fir\",\"client\":0,\"ssrc\":5}").is_err(),
            "missing dir"
        );
        assert!(
            validate_event_line(
                "{\"t\":1,\"kind\":\"fir\",\"client\":0,\"ssrc\":5,\"dir\":\"sent\",\"extra\":1}"
            )
            .is_err(),
            "closed schema rejects extra fields"
        );
        assert!(
            validate_event_line(
                "{\"t\":1,\"kind\":\"fir\",\"client\":-2,\"ssrc\":5,\"dir\":\"sent\"}"
            )
            .is_err(),
            "negative uint"
        );
        // Out-of-order timestamps fail the document validator.
        let doc = "{\"t\":5,\"kind\":\"fir\",\"client\":0,\"ssrc\":1,\"dir\":\"sent\"}\n\
                   {\"t\":4,\"kind\":\"fir\",\"client\":0,\"ssrc\":1,\"dir\":\"sent\"}\n";
        assert!(validate_jsonl(doc).unwrap_err().contains("backwards"));
    }

    #[test]
    fn manifest_serializes_with_fixed_key_order() {
        let log = sample_log();
        let man = RunManifest::for_run("shaped_zoom_s1", "deadbeef", 7, &log);
        assert_eq!(man.events_total, 3);
        assert_eq!(man.events_stored, 3);
        assert_eq!(man.events_dropped, 0);
        let text = manifest_json(&man);
        let schema_pos = text.find("\"schema\"").unwrap();
        let label_pos = text.find("\"label\"").unwrap();
        let metrics_pos = text.find("\"metrics\"").unwrap();
        assert!(schema_pos < label_pos && label_pos < metrics_pos);
        // Round trip: the manifest stays valid JSON.
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(7));
        assert_eq!(v.get("schema").and_then(|s| s.as_u64()), Some(1));
    }

    #[test]
    fn manifest_reports_ring_overflow() {
        let mut log = EventLog::bounded(2);
        for i in 0..5 {
            log.record(
                SimTime::from_micros(i),
                EventKind::Fir {
                    client: 0,
                    ssrc: 1,
                    dir: "sent",
                },
            );
        }
        let man = RunManifest::for_run("ring", "cafe", 1, &log);
        assert_eq!(man.events_total, 5);
        assert_eq!(man.events_stored, 2);
        assert_eq!(man.events_dropped, 3);
        let text = manifest_json(&man);
        assert!(text.contains("\"events_dropped\": 3"), "{text}");
    }

    #[test]
    fn csv_is_deterministic_shortest_round_trip() {
        let text = series_csv(&["t_secs", "up_mbps"], &[vec![0.0, 1.5], vec![0.1, 0.9375]]);
        assert_eq!(text, "t_secs,up_mbps\n0,1.5\n0.1,0.9375\n");
    }
}
