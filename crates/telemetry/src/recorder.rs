//! The hook half: a [`Recorder`] sink behind a cheap, cloneable
//! [`Telemetry`] handle.
//!
//! Instrumented components (links, clients, controllers) each hold a
//! `Telemetry` clone. Disabled — the `Default` — the handle is `None` and
//! every hook reduces to one branch; the event is built inside a closure
//! that never runs, so the hot path pays no formatting or allocation.
//! This is the runtime analogue of the `testkit-checks` feature, which
//! compiles its audit hooks away entirely: telemetry must be attachable
//! per run (campaign workers trace some runs and not others in the same
//! process), so it gates at runtime instead of compile time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::rc::Rc;

use vcabench_simcore::SimTime;

use crate::event::{Event, EventKind};

/// A sink for trace events.
pub trait Recorder {
    /// Record one event. Called in simulation-time order within a run.
    fn record(&mut self, at: SimTime, kind: EventKind);
}

/// A recorder that discards everything (useful as an explicit sink in
/// tests; production code uses a disabled [`Telemetry`] instead, which
/// never constructs the event at all).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _at: SimTime, _kind: EventKind) {}
}

/// An in-memory event log: optionally bounded (a ring buffer that evicts
/// the oldest events) with per-kind counts that survive eviction.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: VecDeque<Event>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    evicted: u64,
    counts: BTreeMap<&'static str, u64>,
}

impl EventLog {
    /// An unbounded log (export paths want every event).
    pub fn unbounded() -> Self {
        EventLog::default()
    }

    /// A bounded ring keeping only the most recent `capacity` events.
    /// Per-kind counts still reflect everything ever recorded.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        EventLog {
            capacity: Some(capacity),
            ..EventLog::default()
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events dropped by the ring bound — the public name for
    /// [`EventLog::evicted`]. A bounded log silently overwrites its oldest
    /// entries; exporters surface this so a truncated trace is never
    /// mistaken for a complete one.
    pub fn dropped_events(&self) -> u64 {
        self.evicted
    }

    /// Total events ever recorded (held + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.events.len() as u64 + self.evicted
    }

    /// Per-kind counts over everything ever recorded, keyed by the stable
    /// kind tag, in sorted order.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Count for one kind tag.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }
}

impl Recorder for EventLog {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        *self.counts.entry(kind.name()).or_insert(0) += 1;
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.evicted += 1;
            }
        }
        self.events.push_back(Event { at, kind });
    }
}

/// A cheap, cloneable handle to an optional [`Recorder`].
///
/// The default handle is disabled: [`Telemetry::emit`] is then a single
/// branch and its closure argument — which builds the event — never runs.
/// Attach a shared recorder with [`Telemetry::attach`] and clone the
/// handle into every component of one simulation. Handles are
/// intentionally `!Send`: a recorder is owned by the single worker thread
/// that builds and drives one `Network`.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Rc<RefCell<dyn Recorder>>>,
}

impl Telemetry {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A handle feeding `recorder`. Keep a clone of the `Rc` to read the
    /// recorder back after the run.
    pub fn attach(recorder: Rc<RefCell<dyn Recorder>>) -> Self {
        Telemetry {
            sink: Some(recorder),
        }
    }

    /// Convenience: build a shared [`EventLog`] plus a handle feeding it.
    pub fn with_log(log: EventLog) -> (Self, Rc<RefCell<EventLog>>) {
        let rc = Rc::new(RefCell::new(log));
        (Telemetry::attach(rc.clone()), rc)
    }

    /// Whether a recorder is attached. Hooks that need to precompute
    /// event inputs (e.g. sample a queue depth) guard on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record an event. `build` runs only when a recorder is attached, so
    /// disabled hooks never construct the event.
    #[inline]
    pub fn emit(&self, at: SimTime, build: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(at, build());
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir(i: u64) -> EventKind {
        EventKind::Fir {
            client: i,
            ssrc: 1,
            dir: "sent",
        }
    }

    #[test]
    fn bounded_ring_evicts_oldest_but_counts_everything() {
        let mut log = EventLog::bounded(3);
        for i in 0..5 {
            log.record(SimTime::from_micros(i), fir(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        assert_eq!(log.dropped_events(), 2);
        assert_eq!(log.total_recorded(), 5);
        assert_eq!(log.count("fir"), 5);
        let held: Vec<u64> = log.events().map(|e| e.at.as_micros()).collect();
        assert_eq!(held, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn unbounded_log_never_drops() {
        let mut log = EventLog::unbounded();
        for i in 0..1000 {
            log.record(SimTime::from_micros(i), fir(i));
        }
        assert_eq!(log.len(), 1000);
        assert_eq!(log.dropped_events(), 0);
        assert_eq!(log.total_recorded(), 1000);
    }

    #[test]
    fn overflow_drops_exactly_the_excess_and_keeps_order() {
        let cap = 4;
        let mut log = EventLog::bounded(cap);
        // Exactly at capacity: nothing dropped yet.
        for i in 0..cap as u64 {
            log.record(SimTime::from_micros(i), fir(i));
        }
        assert_eq!(log.dropped_events(), 0);
        // One past capacity drops exactly one — the oldest.
        log.record(SimTime::from_micros(99), fir(99));
        assert_eq!(log.dropped_events(), 1);
        assert_eq!(log.len(), cap);
        let first = log.events().next().unwrap().at.as_micros();
        assert_eq!(first, 1, "oldest event was the one dropped");
        // Counts keep reflecting the full history.
        assert_eq!(log.count("fir"), cap as u64 + 1);
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.emit(SimTime::ZERO, || panic!("must not construct when disabled"));
    }

    #[test]
    fn attached_handle_records_through_clones() {
        let (tel, rc) = Telemetry::with_log(EventLog::unbounded());
        let clone = tel.clone();
        tel.emit(SimTime::from_micros(1), || fir(0));
        clone.emit(SimTime::from_micros(2), || fir(1));
        assert_eq!(rc.borrow().len(), 2);
        assert_eq!(rc.borrow().count("fir"), 2);
    }
}
