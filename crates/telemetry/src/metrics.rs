//! Counters, gauges, and histograms with deterministic snapshots.
//!
//! Every collection is a `BTreeMap`, so a snapshot serializes with sorted
//! keys — two runs that record the same values produce byte-identical
//! snapshot JSON, which is what lets manifests be diffed and cached.

use std::collections::BTreeMap;

use serde_json::{Map, Value};

use crate::event::EventKind;
use crate::recorder::EventLog;

/// A fixed-bucket histogram: `bounds` are inclusive upper edges, plus an
/// implicit overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last catches values above all edges.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges
    /// (must be sorted ascending).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (last bucket is overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "bounds".to_string(),
            Value::Array(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
        );
        m.insert(
            "buckets".to_string(),
            Value::Array(self.buckets.iter().map(|&c| Value::U64(c)).collect()),
        );
        m.insert("count".to_string(), Value::U64(self.count));
        m.insert("sum".to_string(), Value::F64(self.sum));
        Value::Object(m)
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter (created at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record an observation into the named histogram, creating it with
    /// `bounds` on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Deterministic snapshot: a JSON object whose keys — sections and
    /// metric names alike — are sorted.
    pub fn snapshot(&self) -> Value {
        let mut counters = Map::new();
        for (k, &v) in &self.counters {
            counters.insert(k.clone(), Value::U64(v));
        }
        let mut gauges = Map::new();
        for (k, &v) in &self.gauges {
            gauges.insert(k.clone(), Value::F64(v));
        }
        let mut histograms = Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_json_value());
        }
        let mut m = Map::new();
        m.insert("counters".to_string(), Value::Object(counters));
        m.insert("gauges".to_string(), Value::Object(gauges));
        m.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(m)
    }

    /// Derive standard run metrics from an event log: per-kind event
    /// counters, drop counters by reason, a queue-depth histogram over
    /// enqueues, and last-seen per-client controller targets.
    pub fn from_events(log: &EventLog) -> Self {
        const QUEUE_BOUNDS: [f64; 6] = [1024.0, 4096.0, 16384.0, 65536.0, 262_144.0, 1_048_576.0];
        let mut reg = MetricsRegistry::new();
        for (kind, &n) in log.counts() {
            reg.inc(&format!("events.{kind}"), n);
        }
        for ev in log.events() {
            match &ev.kind {
                EventKind::PacketDropped { reason, .. } => {
                    reg.inc(&format!("drops.{reason}"), 1);
                }
                EventKind::PacketEnqueued { queue_bytes, .. } => {
                    reg.observe("link.queue_bytes", &QUEUE_BOUNDS, *queue_bytes as f64);
                }
                EventKind::CcState {
                    client,
                    target_mbps,
                    ..
                } => {
                    reg.set_gauge(&format!("cc.c{client}.target_mbps"), *target_mbps);
                }
                EventKind::FecRatio {
                    client,
                    fec_per_media,
                    ..
                } => {
                    reg.set_gauge(&format!("fec.c{client}.per_media"), *fec_per_media);
                }
                _ => {}
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimTime;

    use crate::recorder::Recorder;

    #[test]
    fn snapshot_keys_are_sorted_regardless_of_insertion_order() {
        let mut reg = MetricsRegistry::new();
        reg.inc("zeta", 2);
        reg.inc("alpha", 1);
        reg.set_gauge("z.g", 1.5);
        reg.set_gauge("a.g", -0.25);
        reg.observe("h", &[1.0, 2.0], 1.5);
        let text = serde_json::to_string(&reg.snapshot()).unwrap();
        assert_eq!(
            text,
            "{\"counters\":{\"alpha\":1,\"zeta\":2},\
             \"gauges\":{\"a.g\":-0.25,\"z.g\":1.5},\
             \"histograms\":{\"h\":{\"bounds\":[1,2],\"buckets\":[0,1,0],\"count\":1,\"sum\":1.5}}}"
        );
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        for v in [5.0, 10.0, 50.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065.0);
    }

    #[test]
    fn from_events_counts_drops_by_reason() {
        let mut log = EventLog::unbounded();
        for (i, reason) in ["queue_full", "impairment", "queue_full"]
            .iter()
            .enumerate()
        {
            log.record(
                SimTime::from_micros(i as u64),
                EventKind::PacketDropped {
                    link: 0,
                    flow: 0,
                    pkt: i as u64,
                    bytes: 100,
                    queue_bytes: 0,
                    reason,
                },
            );
        }
        let reg = MetricsRegistry::from_events(&log);
        assert_eq!(reg.counter("events.packet_drop"), 3);
        assert_eq!(reg.counter("drops.queue_full"), 2);
        assert_eq!(reg.counter("drops.impairment"), 1);
    }
}
