//! vcabench-telemetry: deterministic event tracing, metrics, and profiling
//! for the simulation stack.
//!
//! The paper's methodology is pure observation — packet captures at the
//! shaped access link plus periodic `webrtc-internals` dumps (§2.2, §3.2)
//! are what make every figure possible. This crate gives the reproduction
//! the same evidence layer: a typed, sim-timestamped event stream recording
//! *which* packet was dropped, *when* FBRA left ramp, and *why* GCC backed
//! off, exportable as diffable run artifacts.
//!
//! Pieces:
//!
//! 1. **Events** ([`Event`], [`EventKind`]): typed records carrying
//!    sim-time timestamps — packet enqueue/dequeue/drop with queue depth,
//!    rate-profile steps, congestion-controller state transitions,
//!    FEC-ratio changes, encoder layer switches, FIR and freeze events,
//!    and invariant violations surfaced by the testkit layer.
//! 2. **Recorder** ([`Recorder`], [`Telemetry`], [`EventLog`]): the hook
//!    half. A [`Telemetry`] handle is cloned into every instrumented
//!    component; when disabled (the default) each hook is a single
//!    `Option` null-check and the event is never constructed — the runtime
//!    analogue of how the `testkit-checks` feature compiles its hooks away.
//! 3. **Metrics** ([`MetricsRegistry`]): counters / gauges / histograms
//!    with deterministic sorted-key snapshots.
//! 4. **Profiler** ([`Profiler`]): counts and wall-clock-times sim events
//!    per type so `repro --profile` can print a "where does sim time go"
//!    table. Wall-clock numbers are print-only and never enter a trace.
//! 5. **Export** ([`export`]): a versioned JSONL event-trace format
//!    (schema [`TRACE_SCHEMA_VERSION`]), CSV time series, a per-run
//!    manifest, and a line validator used by `repro validate-trace` and CI.
//! 6. **Import** ([`import`]): the exact inverse of export — parse
//!    `.events.jsonl` lines back into typed [`Event`]s (vocabulary
//!    interned to the original `&'static str`s) and replay them through
//!    any [`Recorder`], so offline consumers see the same stream as
//!    online ones.
//!
//! Determinism is a hard requirement: identical spec + seed must produce
//! byte-identical JSONL regardless of worker count. Everything here is
//! ordered — events by simulation time of emission, metric snapshots by
//! key — and floats serialize via Rust's shortest-round-trip formatting.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod import;
pub mod metrics;
pub mod profiler;
pub mod recorder;

pub use event::{Event, EventKind};
pub use export::{
    events_jsonl, manifest_json, series_csv, validate_event_line, validate_jsonl, RunManifest,
};
pub use import::{parse_event_line, replay_jsonl};
pub use metrics::{Histogram, MetricsRegistry};
pub use profiler::{ProfileRow, Profiler, HIST_BUCKETS};
pub use recorder::{EventLog, NullRecorder, Recorder, Telemetry};

/// Version of the JSONL event-trace schema. Bump on any change to event
/// names, field names, field types, or serialization order; the value is
/// embedded in every run manifest so traces remain interpretable.
pub const TRACE_SCHEMA_VERSION: u32 = 1;
