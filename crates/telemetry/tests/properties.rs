//! Property tests closing the import/export loop: arbitrary valid event
//! sequences survive export → parse/replay → re-export byte-identically.
//!
//! The exporter promises exact round-trips (`parse_event_line` is the
//! inverse of `Event::to_jsonl_line`, floats use shortest-round-trip
//! formatting), but until now only hand-picked events exercised it.

use proptest::prelude::*;
use vcabench_simcore::SimTime;
use vcabench_telemetry::{
    events_jsonl, parse_event_line, replay_jsonl, Event, EventKind, EventLog, Recorder,
};

/// Decode one raw u64 into an event kind covering every schema variant
/// with in-vocabulary strings and representable floats (the vendored
/// proptest subset has no tuple or enum strategies, so sequences are
/// vectors of raw words).
fn decode_kind(raw: u64) -> EventKind {
    let a = (raw >> 8) & 0xffff;
    let b = (raw >> 24) & 0xffff;
    let c = (raw >> 40) & 0xff;
    match raw % 10 {
        0 => EventKind::PacketEnqueued {
            link: c % 4,
            flow: a % 8,
            pkt: b,
            bytes: 40 + a % 1460,
            queue_bytes: b * 3,
            queue_pkts: c,
        },
        1 => EventKind::PacketDequeued {
            link: c % 4,
            flow: a % 8,
            pkt: b,
            bytes: 40 + a % 1460,
            queue_bytes: b,
        },
        2 => EventKind::PacketDropped {
            link: c % 4,
            flow: a % 8,
            pkt: b,
            bytes: 40 + a % 1460,
            queue_bytes: b,
            reason: if raw & 0x10000 == 0 {
                "queue_full"
            } else {
                "impairment"
            },
        },
        3 => EventKind::RateStep {
            link: c % 4,
            bps: (a + 1) as f64 * 1000.0 + (b % 100) as f64 / 4.0,
        },
        4 => {
            const CONTROLLERS: [&str; 3] = ["fbra", "gcc", "teams"];
            const STATES: [&str; 11] = [
                "decay",
                "decrease",
                "fall",
                "hold",
                "increase",
                "probe",
                "probe-hold",
                "ramp",
                "recover",
                "stay",
                "track",
            ];
            const SIGNALS: [&str; 3] = ["normal", "overuse", "underuse"];
            EventKind::CcState {
                client: c % 4,
                controller: CONTROLLERS[(a % 3) as usize],
                state: STATES[(b % 11) as usize],
                signal: match raw % 4 {
                    0 => None,
                    n => Some(SIGNALS[(n - 1) as usize]),
                },
                target_mbps: (a % 5000) as f64 / 100.0,
            }
        }
        5 => EventKind::FecRatio {
            client: c % 4,
            fraction: (a % 1000) as f64 / 1000.0,
            fec_per_media: (b % 2000) as f64 / 1000.0,
        },
        6 => EventKind::LayerSwitch {
            client: c % 4,
            streams: c % 4,
            top_width: a,
            top_fps: (b % 61) as f64 / 2.0,
        },
        7 => EventKind::Fir {
            client: c % 4,
            ssrc: b,
            dir: if raw & 0x10000 == 0 {
                "sent"
            } else {
                "received"
            },
        },
        8 => EventKind::Freeze {
            client: c % 4,
            sender: a % 4,
            count: c,
            total_ms: a as f64 / 8.0,
        },
        _ => EventKind::InvariantViolation {
            invariant: format!("invariant_{}", a % 4),
            detail: format!("violated with margin {}", b),
        },
    }
}

/// A valid (time-ordered) event sequence from raw words: timestamps are
/// the sorted low bits, kinds decoded from the full words.
fn sequence_of(raw: &[u64]) -> Vec<Event> {
    let mut at: Vec<u64> = raw.iter().map(|&r| (r >> 16) % 10_000_000).collect();
    at.sort_unstable();
    at.iter()
        .zip(raw.iter())
        .map(|(&at_us, &r)| Event {
            at: SimTime::from_micros(at_us),
            kind: decode_kind(r),
        })
        .collect()
}

proptest! {
    /// Every line of the export parses back to the exact event, and the
    /// re-exported line is byte-identical.
    #[test]
    fn every_line_round_trips_exactly(raw in proptest::collection::vec(any::<u64>(), 0..200)) {
        for ev in sequence_of(&raw) {
            let line = ev.to_jsonl_line();
            let parsed = parse_event_line(&line).expect("exported line parses");
            prop_assert_eq!(&parsed, &ev);
            prop_assert_eq!(parsed.to_jsonl_line(), line);
        }
    }

    /// Replaying a full export through a fresh log reproduces the export
    /// byte-identically (the whole-trace version of the line property,
    /// covering the JSONL framing and timestamp monotonicity check).
    #[test]
    fn replayed_exports_are_byte_identical(raw in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut log = EventLog::unbounded();
        for ev in sequence_of(&raw) {
            log.record(ev.at, ev.kind);
        }
        let exported = events_jsonl(&log);
        let mut replayed = EventLog::unbounded();
        let n = replay_jsonl(&exported, &mut replayed).expect("valid trace replays");
        prop_assert_eq!(n, raw.len() as u64);
        prop_assert_eq!(events_jsonl(&replayed), exported);
    }
}
