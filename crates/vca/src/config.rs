//! VCA identities and per-application parameters (§2.2).
//!
//! The paper studies three applications, two of which ship both a native
//! desktop client and an in-browser (Chrome/WebRTC) client with measurably
//! different behaviour (Fig 1c): at 1 Mbps uplink shaping, Teams-native used
//! 0.84 Mbps where Teams-Chrome used only 0.61 Mbps; Zoom's two clients were
//! indistinguishable.

use vcabench_congestion::{FbraConfig, GccConfig, TeamsConfig};
use vcabench_simcore::SimDuration;

/// Which application (and client variant) a simulated client runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VcaKind {
    /// Zoom native desktop client.
    Zoom,
    /// Zoom in Chrome (DataChannel transport; network behaviour matches the
    /// native client per Fig 1c).
    ZoomChrome,
    /// Google Meet (always in Chrome; WebRTC/GCC).
    Meet,
    /// Microsoft Teams native desktop client.
    Teams,
    /// Microsoft Teams in Chrome: lower target bitrates and a more timid
    /// controller than the native client.
    TeamsChrome,
}

impl VcaKind {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            VcaKind::Zoom => "Zoom",
            VcaKind::ZoomChrome => "Zoom-Chrome",
            VcaKind::Meet => "Meet",
            VcaKind::Teams => "Teams",
            VcaKind::TeamsChrome => "Teams-Chrome",
        }
    }

    /// The three base applications, native variants.
    pub const NATIVE: [VcaKind; 3] = [VcaKind::Meet, VcaKind::Teams, VcaKind::Zoom];

    /// Every client variant.
    pub const ALL: [VcaKind; 5] = [
        VcaKind::Zoom,
        VcaKind::ZoomChrome,
        VcaKind::Meet,
        VcaKind::Teams,
        VcaKind::TeamsChrome,
    ];

    /// Parse a kind from either the paper's display name (`"Zoom-Chrome"`)
    /// or the variant identifier (`"ZoomChrome"`).
    pub fn from_name(name: &str) -> Option<VcaKind> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name || format!("{k:?}") == name)
    }

    /// True for the WebRTC-in-Chrome clients whose stats the paper can read
    /// (§3.2: Meet and Teams-Chrome; Zoom-Chrome uses DataChannels and
    /// exposes no video-quality metrics).
    pub fn has_webrtc_stats(self) -> bool {
        matches!(self, VcaKind::Meet | VcaKind::TeamsChrome)
    }

    /// Whether the server-side component performs rate adaptation
    /// (Meet's simulcast SFU, Zoom's SVC SFU) or is a pure relay (Teams).
    pub fn server_adapts(self) -> bool {
        matches!(self, VcaKind::Meet | VcaKind::Zoom | VcaKind::ZoomChrome)
    }

    /// GCC configuration for Meet clients.
    pub fn gcc_config(self) -> GccConfig {
        GccConfig {
            start_mbps: 0.3,
            min_mbps: 0.05,
            // Encoder ceiling: low (0.19) + high (0.76) simulcast streams.
            max_mbps: 0.96,
            ..GccConfig::default()
        }
    }

    /// FBRA configuration for Zoom clients.
    pub fn fbra_config(self) -> FbraConfig {
        FbraConfig::default()
    }

    /// Teams controller configuration (native vs. Chrome differ).
    pub fn teams_config(self) -> TeamsConfig {
        match self {
            VcaKind::TeamsChrome => TeamsConfig {
                nominal_mbps: 1.10,
                osc_amplitude_mbps: 0.18,
                backoff_factor: 0.5,
                slow_phase: SimDuration::from_secs(12),
                slow_mbps_per_s: 0.015,
                fast_per_s: 0.10,
                ..TeamsConfig::default()
            },
            _ => TeamsConfig::default(),
        }
    }

    /// Audio stream rate, Mbps (Opus-like constant bitrate).
    pub fn audio_rate_mbps(self) -> f64 {
        0.04
    }

    /// Zoom's relay adds FEC on the server→client path; the paper measures
    /// the resulting downstream/upstream asymmetry in Table 2
    /// (up 0.78 vs down 0.95 Mbps ⇒ ~30–40 % server-side redundancy).
    pub fn server_fec_ratio(self) -> f64 {
        match self {
            VcaKind::Zoom | VcaKind::ZoomChrome => 0.30,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(VcaKind::Zoom.name(), "Zoom");
        assert_eq!(VcaKind::TeamsChrome.name(), "Teams-Chrome");
    }

    #[test]
    fn kind_serde_and_from_name() {
        use serde::{Deserialize, Serialize};
        for kind in VcaKind::ALL {
            let v = kind.to_json_value();
            assert_eq!(VcaKind::from_json_value(&v), Ok(kind));
            assert_eq!(VcaKind::from_name(kind.name()), Some(kind));
            assert_eq!(VcaKind::from_name(&format!("{kind:?}")), Some(kind));
        }
        assert_eq!(VcaKind::from_name("Skype"), None);
        assert!(VcaKind::from_json_value(&serde::Value::U64(1)).is_err());
    }

    #[test]
    fn webrtc_stats_availability() {
        assert!(VcaKind::Meet.has_webrtc_stats());
        assert!(VcaKind::TeamsChrome.has_webrtc_stats());
        assert!(!VcaKind::Zoom.has_webrtc_stats());
        assert!(!VcaKind::ZoomChrome.has_webrtc_stats());
        assert!(!VcaKind::Teams.has_webrtc_stats());
    }

    #[test]
    fn server_roles() {
        assert!(VcaKind::Meet.server_adapts());
        assert!(VcaKind::Zoom.server_adapts());
        assert!(!VcaKind::Teams.server_adapts());
        assert!(!VcaKind::TeamsChrome.server_adapts());
    }

    #[test]
    fn chrome_teams_is_more_timid() {
        let native = VcaKind::Teams.teams_config();
        let chrome = VcaKind::TeamsChrome.teams_config();
        assert!(chrome.nominal_mbps < native.nominal_mbps);
        assert!(chrome.backoff_factor < native.backoff_factor);
    }

    #[test]
    fn only_zoom_has_server_fec() {
        assert!(VcaKind::Zoom.server_fec_ratio() > 0.2);
        assert_eq!(VcaKind::Meet.server_fec_ratio(), 0.0);
        assert_eq!(VcaKind::Teams.server_fec_ratio(), 0.0);
    }
}
