//! Call orchestration: wiring clients and a server onto a topology.
//!
//! This is the simulation's stand-in for the paper's PyAutoGUI automation
//! (§2.2): it "joins" every participant, sets viewing modes, and assigns the
//! flow ids the measurement infrastructure traces.

use vcabench_netsim::{topology, FlowId, Network, NodeId, RateProfile};
use vcabench_simcore::SimRng;
use vcabench_transport::Wire;

use crate::client::VcaClient;
use crate::config::VcaKind;
use crate::layout::ViewMode;
use crate::server::VcaServer;

/// Handles to an established call.
#[derive(Debug, Clone)]
pub struct CallHandles {
    /// Application the call runs.
    pub kind: VcaKind,
    /// Server node.
    pub server: NodeId,
    /// Client nodes, by call index.
    pub clients: Vec<NodeId>,
    /// Uplink flow of each client (client → server traffic).
    pub up_flows: Vec<FlowId>,
    /// Downlink flow of each client (server → client traffic).
    pub down_flows: Vec<FlowId>,
}

/// Attach a call of `kind` to existing nodes: one [`VcaClient`] per entry of
/// `clients` and a [`VcaServer`] at `server`. Flow ids are derived from
/// `flow_base` (uplink `flow_base + 2i`, downlink `flow_base + 2i + 1`).
pub fn wire_call(
    net: &mut Network<Wire>,
    kind: VcaKind,
    server: NodeId,
    clients: &[NodeId],
    modes: &[ViewMode],
    flow_base: u64,
    rng: &mut SimRng,
) -> CallHandles {
    wire_call_at(
        net,
        kind,
        server,
        clients,
        modes,
        flow_base,
        rng,
        vcabench_simcore::SimTime::ZERO,
    )
}

/// Like [`wire_call`], with every client joining at `join_at` (the paper's
/// staggered competition starts, §5).
#[allow(clippy::too_many_arguments)]
pub fn wire_call_at(
    net: &mut Network<Wire>,
    kind: VcaKind,
    server: NodeId,
    clients: &[NodeId],
    modes: &[ViewMode],
    flow_base: u64,
    rng: &mut SimRng,
    join_at: vcabench_simcore::SimTime,
) -> CallHandles {
    assert!(clients.len() >= 2, "a call needs two participants");
    assert_eq!(clients.len(), modes.len());
    let up_flows: Vec<FlowId> = (0..clients.len())
        .map(|i| FlowId(flow_base + 2 * i as u64))
        .collect();
    let down_flows: Vec<FlowId> = (0..clients.len())
        .map(|i| FlowId(flow_base + 2 * i as u64 + 1))
        .collect();
    net.set_agent(
        server,
        Box::new(VcaServer::new(kind, clients.to_vec(), down_flows.clone())),
    );
    for (i, (&node, &mode)) in clients.iter().zip(modes).enumerate() {
        let client =
            VcaClient::new(kind, i as u32, server, up_flows[i], mode, rng).with_join_at(join_at);
        net.set_agent(node, Box::new(client));
    }
    CallHandles {
        kind,
        server,
        clients: clients.to_vec(),
        up_flows,
        down_flows,
    }
}

/// A fully-built two-party experiment (the §2.2/§3/§4 setup).
pub struct TwoPartyCall {
    /// The network; run it with `run_until`.
    pub net: Network<Wire>,
    /// Topology node/link ids.
    pub topo: topology::TwoParty,
    /// Call handles (client 0 = C1, client 1 = C2).
    pub handles: CallHandles,
}

/// Build a two-party call with independent shaping profiles on C1's access
/// link (the measured client).
pub fn two_party_call(
    kind: VcaKind,
    up: RateProfile,
    down: RateProfile,
    seed: u64,
) -> TwoPartyCall {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::two_party(&mut net, up, down);
    let handles = wire_call(
        &mut net,
        kind,
        topo.server,
        &[topo.c1, topo.c2],
        &[ViewMode::Gallery, ViewMode::Gallery],
        10,
        &mut rng,
    );
    TwoPartyCall { net, topo, handles }
}

/// A fully-built multiparty experiment (the §6 setup).
pub struct MultipartyCall {
    /// The network; run it with `run_until`.
    pub net: Network<Wire>,
    /// Topology node/link ids.
    pub topo: topology::Multiparty,
    /// Call handles; client 0 = C1, the measured client.
    pub handles: CallHandles,
}

/// Build an `n`-party call with every client on an unconstrained (but
/// traced) access path. `modes` assigns each client's viewing mode.
pub fn multiparty_call(kind: VcaKind, n: usize, modes: &[ViewMode], seed: u64) -> MultipartyCall {
    assert_eq!(modes.len(), n);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::multiparty(
        &mut net,
        n,
        RateProfile::constant_mbps(1000.0),
        RateProfile::constant_mbps(1000.0),
    );
    let clients = topo.clients.clone();
    let handles = wire_call(&mut net, kind, topo.server, &clients, modes, 10, &mut rng);
    MultipartyCall { net, topo, handles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimTime;

    #[test]
    fn two_party_call_exchanges_media() {
        let mut call = two_party_call(
            VcaKind::Meet,
            RateProfile::constant_mbps(1000.0),
            RateProfile::constant_mbps(1000.0),
            7,
        );
        call.net.run_until(SimTime::from_secs(30));
        assert_eq!(call.net.unrouted_drops, 0);
        let c1: &VcaClient = call.net.agent(call.topo.c1);
        let c2: &VcaClient = call.net.agent(call.topo.c2);
        // Both directions decode real video.
        assert!(
            c1.frames_decoded_from(1) > 200,
            "C1 decoded {}",
            c1.frames_decoded_from(1)
        );
        assert!(
            c2.frames_decoded_from(0) > 200,
            "C2 decoded {}",
            c2.frames_decoded_from(0)
        );
        // Per-second stats got sampled.
        assert!(c1.stats.samples().len() >= 25);
    }

    #[test]
    fn flow_ids_are_distinct() {
        let call = two_party_call(
            VcaKind::Zoom,
            RateProfile::constant_mbps(10.0),
            RateProfile::constant_mbps(10.0),
            1,
        );
        let mut all = call.handles.up_flows.clone();
        all.extend(&call.handles.down_flows);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn multiparty_call_builds_and_runs() {
        let modes = vec![ViewMode::Gallery; 4];
        let mut call = multiparty_call(VcaKind::Zoom, 4, &modes, 3);
        call.net.run_until(SimTime::from_secs(20));
        assert_eq!(call.net.unrouted_drops, 0);
        let c1: &VcaClient = call.net.agent(call.handles.clients[0]);
        // C1 sees video from every other participant.
        for sender in 1..4u32 {
            assert!(
                c1.frames_decoded_from(sender) > 50,
                "no video from participant {sender}"
            );
        }
    }
}
