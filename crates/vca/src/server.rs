//! The call server: Meet's simulcast SFU, Zoom's SVC SFU with server-side
//! FEC, and Teams' pure relay.
//!
//! The paper traces every major inter-VCA difference in §4–§6 to what this
//! box does:
//!
//! * **Meet** (§3.1, §4.2): the server receives both simulcast copies and
//!   forwards one per receiver based on its downlink estimate, thinning the
//!   high stream temporally at mid rates. Switching copies is instant, so
//!   downlink disruptions recover in under ten seconds (Fig 5b), and the
//!   sender's uplink never reacts to a receiver's downlink problems (Fig 6).
//! * **Zoom** (§3.1, §4.2): the server receives SVC layers, forwards the
//!   stack each receiver's estimate supports, and adds FEC on the way down —
//!   the source of the sent/received asymmetry in Table 2.
//! * **Teams** (§4.2, Fig 6): the server only relays packets and receiver
//!   reports; all adaptation happens end-to-end at the sending client, which
//!   is why Teams recovers slowly in both directions.

use std::any::Any;
use std::collections::HashMap;

use vcabench_congestion::{FeedbackReport, GccController, RateController};
use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::{
    rtcp::{ReceiverReport, RtcpPacket},
    rtp::{RtpPacket, RtpRecvState, RtpSendState, StreamKind},
    wire::{SignalMsg, Wire},
};

use crate::client::VcaClient;
use crate::config::VcaKind;
use crate::layout::{requested_width, GridStyle, ViewMode};

const TICK: SimDuration = SimDuration::from_millis(100);
const TIMER_SENDER_REPORTS: u64 = 1;

/// Ring of recently forwarded packets: (egress seq, packet, wire size).
type RetxBuffer = std::collections::VecDeque<(u64, RtpPacket, usize)>;

/// Cumulative media rates of Zoom's SVC layer stacks (matches
/// `media::ZoomPolicy::cumulative`).
const ZOOM_MEDIA_CUMS: [f64; 3] = [0.10, 0.40, 0.68];

/// Per-receiver downlink rate estimation at the server.
enum DownEstimator {
    /// Meet: full GCC (REMB-style) estimation (kept for ablations; the
    /// default Meet estimator is the loss-driven tracker below).
    #[allow(dead_code)]
    Gcc(GccController),
    /// Loss-driven tracker — follow delivered rate down when loss exceeds
    /// `tolerance`, grow geometrically when clean (stream/layer switching at
    /// the SFU is cheap). Zoom's tolerance is high because its FEC absorbs
    /// moderate loss; Meet's is standard. `bounded` trackers park near the
    /// actually-delivered rate (an SFU can't learn more than its subscribers
    /// receive) with only a slow additive escape — this is what pins Meet's
    /// downlink to the low simulcast copy on a 0.5 Mbps link (Fig 1b).
    Tracker {
        /// Estimated available downlink, Mbps.
        est: f64,
        /// Loss fraction below which delivery is considered unharmed.
        tolerance: f64,
        /// Bound growth to ~1.5× the delivered rate (+ additive escape).
        bounded: bool,
    },
    /// Meet: a probing simulcast selector. Tier 0 = low copy, 1 = thinned
    /// high, 2 = full high. After `backoff_s` seconds of clean delivery it
    /// probes the next tier; a delivery collapse drops a tier and doubles
    /// the backoff (capped). This reproduces Meet's downlink signature:
    /// parked on the low copy at 0.5 Mbps (Fig 1b's floor), oscillating at
    /// 0.7, at nominal against an elastic TCP competitor (Fig 12b), and
    /// recovering within seconds after a disruption (Fig 5b).
    Probing {
        /// Current simulcast tier (0..=2).
        tier: u8,
        /// Seconds of clean delivery at the current tier.
        clean_s: f64,
        /// Seconds of clean delivery required before probing up.
        backoff_s: f64,
        /// Seconds spent at the current tier.
        at_tier_s: f64,
        /// Consecutive seconds of collapsed delivery.
        lossy_s: f64,
    },
    /// Teams: the server does not estimate.
    None,
}

impl DownEstimator {
    fn on_report(&mut self, fb: &FeedbackReport) {
        match self {
            DownEstimator::Gcc(g) => g.on_report(fb),
            DownEstimator::Tracker {
                est,
                tolerance,
                bounded,
            } => {
                if fb.loss_fraction > *tolerance {
                    *est = (fb.receive_rate_mbps * 0.95).max(0.05);
                } else {
                    // Grow whenever loss stays within the tolerance budget
                    // (for Zoom, anything its FEC repairs): ~20 %/s, so layer
                    // switching recovers downlinks fast (Fig 5b).
                    let grown = *est * 1.02;
                    *est = if *bounded {
                        let bound = fb.receive_rate_mbps * 1.5 + 0.05;
                        // Past the bound, only a slow additive escape probes
                        // for a higher simulcast copy.
                        grown.min(bound.max(*est + 0.0005))
                    } else {
                        grown
                    }
                    .min(20.0);
                }
            }
            DownEstimator::Probing {
                tier,
                clean_s,
                backoff_s,
                at_tier_s,
                lossy_s,
            } => {
                let dt = 0.1; // report cadence
                *at_tier_s += dt;
                if fb.loss_fraction > 0.08 {
                    // Only a *sustained* delivery collapse (a second or more)
                    // steps the tier down — an elastic competitor's transient
                    // loss bursts (TCP probing the queue) must not evict a
                    // copy that fits once the competitor backs off.
                    *lossy_s += dt;
                    *clean_s = 0.0;
                    if *lossy_s >= 1.0 {
                        if *tier > 0 {
                            *tier -= 1;
                        }
                        *backoff_s = (*backoff_s * 2.0).min(60.0);
                        *lossy_s = 0.0;
                        *at_tier_s = 0.0;
                    }
                } else if fb.loss_fraction < 0.02 {
                    *lossy_s = 0.0;
                    *clean_s += dt;
                    // A tier that has survived a while proves itself: relax
                    // the probe backoff.
                    if *at_tier_s > 8.0 {
                        *backoff_s = 6.0;
                    }
                    if *clean_s >= *backoff_s && *tier < 2 {
                        *tier += 1;
                        *clean_s = 0.0;
                        *at_tier_s = 0.0;
                    }
                } else {
                    *lossy_s = 0.0;
                    *clean_s = 0.0;
                }
            }
            DownEstimator::None => {}
        }
    }

    /// Per-sender share a probing estimator's tier corresponds to (used in
    /// place of a rate estimate for tier-based kinds).
    fn tier_share(tier: u8) -> f64 {
        match tier {
            0 => 0.40,
            1 => 0.58,
            _ => 0.90,
        }
    }

    /// Per-sender share this estimator grants (probing estimators bypass the
    /// rate-division arithmetic).
    fn share(&self, watched: f64, audio_total: f64) -> f64 {
        match self {
            DownEstimator::Probing { tier, .. } => Self::tier_share(*tier),
            other => ((other.estimate_mbps_raw() - audio_total) / watched).max(0.0),
        }
    }

    fn estimate_mbps_raw(&self) -> f64 {
        match self {
            DownEstimator::Gcc(g) => g.target_mbps(),
            DownEstimator::Tracker { est, .. } => *est,
            DownEstimator::Probing { tier, .. } => Self::tier_share(*tier) + 0.05,
            DownEstimator::None => f64::INFINITY,
        }
    }
}

/// Per-receiver forwarding state.
struct ReceiverState {
    node: NodeId,
    flow: FlowId,
    mode: ViewMode,
    est: DownEstimator,
    /// Zoom server-side FEC bookkeeping.
    fec_debt_bytes: f64,
    fec_send: RtpSendState,
    /// Meet: the simulcast copy currently forwarded, per sender.
    meet_current: HashMap<usize, u8>,
    /// Meet: a pending copy switch, per sender: (tier, requested at).
    /// Switches are keyframe-gated — the old copy keeps flowing until the
    /// new copy's intra frame arrives, so the receiver never loses its
    /// decode chain on a switch.
    meet_pending: HashMap<usize, (u8, SimTime)>,
}

/// The call server agent.
pub struct VcaServer {
    /// Application this server serves.
    pub kind: VcaKind,
    grid: GridStyle,
    /// Client roster: index → node.
    clients: Vec<NodeId>,
    node_to_idx: HashMap<NodeId, usize>,
    receivers: Vec<ReceiverState>,
    /// Ingress accounting per sender and SSRC (drives sender RTCP for
    /// Meet/Zoom). Sequence spaces are per-SSRC; a combined tracker would
    /// garble gap detection.
    ingress: Vec<HashMap<u32, RtpRecvState>>,
    /// Last time each (sender, spatial) video stream was seen at ingress —
    /// a copy switch is only attempted toward a stream that is flowing.
    stream_seen: HashMap<(usize, u8), SimTime>,
    /// Per-subscriber retransmission buffer: the last forwarded video
    /// packets (post seq-rewrite) per (receiver, ssrc). Serves NACKs the way
    /// real SFUs do.
    retx_buf: HashMap<(usize, u32), RetxBuffer>,
    /// Egress sequence rewriting per (receiver, ssrc): selective forwarding
    /// must not leave sequence gaps, or subscribers would report phantom
    /// loss (real SFUs rewrite RTP sequence numbers the same way).
    egress_seq: HashMap<(usize, u32), u64>,
    /// Uplink flows of each client (used to address sender reports... the
    /// server sends on the *downlink* flow of the target).
    started: bool,
}

impl VcaServer {
    /// Build a server for `kind` with the call roster and each client's
    /// downlink flow id.
    pub fn new(kind: VcaKind, clients: Vec<NodeId>, down_flows: Vec<FlowId>) -> Self {
        assert_eq!(clients.len(), down_flows.len());
        let grid = match kind {
            VcaKind::Zoom | VcaKind::ZoomChrome => GridStyle::Square,
            VcaKind::Meet => GridStyle::MeetTiles,
            VcaKind::Teams | VcaKind::TeamsChrome => GridStyle::FixedFour,
        };
        let node_to_idx = clients.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let receivers = clients
            .iter()
            .zip(&down_flows)
            .enumerate()
            .map(|(i, (&node, &flow))| ReceiverState {
                node,
                flow,
                mode: ViewMode::Gallery,
                est: match kind {
                    // The SFU-side estimator is loss-driven and recovers
                    // quickly (simulcast switching is cheap — Fig 5b), and it
                    // only yields to *delivery* degradation, not queueing
                    // delay — which is why Meet is not TCP-friendly on the
                    // downlink (§5.2: 75 % of a 0.5 Mbps link against TCP).
                    VcaKind::Meet => DownEstimator::Probing {
                        tier: 0,
                        clean_s: 0.0,
                        backoff_s: 6.0,
                        at_tier_s: 0.0,
                        lossy_s: 0.0,
                    },
                    // Fresh estimators start low, like a newly joined
                    // client's ramp — a newcomer's downlink must not leap to
                    // a full allocation on a contended link (Fig 9a/10).
                    VcaKind::Zoom | VcaKind::ZoomChrome => DownEstimator::Tracker {
                        est: 0.2,
                        tolerance: 0.12,
                        bounded: false,
                    },
                    _ => DownEstimator::None,
                },
                fec_debt_bytes: 0.0,
                fec_send: RtpSendState::new(100 + i as u32),
                meet_current: HashMap::new(),
                meet_pending: HashMap::new(),
            })
            .collect();
        let ingress = clients.iter().map(|_| HashMap::new()).collect();
        let stream_seen = HashMap::new();
        let retx_buf = HashMap::new();
        let egress_seq = HashMap::new();
        VcaServer {
            kind,
            grid,
            clients,
            node_to_idx,
            receivers,
            ingress,
            stream_seen,
            retx_buf,
            egress_seq,
            started: false,
        }
    }

    fn call_size(&self) -> usize {
        self.clients.len()
    }

    /// Width the most demanding subscriber wants from sender `s`.
    fn max_requested_width_for(&self, s: usize) -> u32 {
        let n = self.call_size();
        self.receivers
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != s)
            .map(|(_, rs)| requested_width(self.grid, rs.mode, n, s as u32))
            .max()
            .unwrap_or(640)
    }

    /// Number of video senders a receiver `r` watches.
    fn watched_senders(&self) -> usize {
        let n = self.call_size();
        crate::layout::visible_remote_tiles(self.grid, n).min(n - 1)
    }

    /// Should sender `s`'s tile be visible to receiver `r`? (Teams shows at
    /// most four remote tiles; others show everyone.)
    fn visible(&self, r: usize, s: usize) -> bool {
        let limit = crate::layout::visible_remote_tiles(self.grid, self.call_size());
        // Deterministic selection: the lowest-index senders occupy tiles.
        let mut count = 0;
        for idx in 0..self.clients.len() {
            if idx == r {
                continue;
            }
            if idx == s {
                return count < limit;
            }
            count += 1;
        }
        false
    }

    fn next_egress_seq(&mut self, r: usize, ssrc: u32) -> u64 {
        let e = self.egress_seq.entry((r, ssrc)).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Zoom's server FEC ratio, shrunk when the receiver's headroom over the
    /// forwarded media stack is small.
    fn effective_fec_ratio(&self, _r: usize, share: f64) -> f64 {
        let base = self.kind.server_fec_ratio();
        if base == 0.0 {
            return 0.0;
        }
        // Headroom over the currently selected media stack.
        let stack = self.zoom_stack_rate(share);
        ((share / stack - 1.0).max(0.0)).min(base)
    }

    /// Media rate of the Zoom layer stack selected at this share.
    fn zoom_stack_rate(&self, share: f64) -> f64 {
        let mut rate = ZOOM_MEDIA_CUMS[0];
        for &c in &ZOOM_MEDIA_CUMS[1..] {
            if share >= c * 0.95 {
                rate = c;
            }
        }
        rate.max(0.05)
    }

    /// Per-receiver per-sender share of the receiver's estimated downlink.
    fn share_for(&self, r: usize) -> f64 {
        let watched = self.watched_senders().max(1) as f64;
        let audio_total = self.call_size().saturating_sub(1) as f64 * 0.04;
        self.receivers[r].est.share(watched, audio_total)
    }

    fn forward_rtp(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: &Packet<Wire>, rtp: &RtpPacket) {
        let Some(&s) = self.node_to_idx.get(&pkt.src) else {
            return;
        };
        self.ingress[s]
            .entry(rtp.ssrc)
            .or_default()
            .on_packet(ctx.now, rtp, pkt.size);
        if rtp.kind == StreamKind::Video && !rtp.is_fec {
            self.stream_seen.insert((s, rtp.layer.spatial), ctx.now);
        }
        let n = self.call_size();
        for r in 0..self.receivers.len() {
            if r == s {
                continue;
            }
            // Zoom's relay strips client FEC and generates its own on the
            // way down (per the Zoom patent the paper cites) — this is what
            // makes downstream > upstream in Table 2.
            if rtp.is_fec && matches!(self.kind, VcaKind::Zoom | VcaKind::ZoomChrome) {
                continue;
            }
            if rtp.kind == StreamKind::Audio {
                let flow = self.receivers[r].flow;
                let node = self.receivers[r].node;
                let mut fwd = rtp.clone();
                if !matches!(self.kind, VcaKind::Teams | VcaKind::TeamsChrome) {
                    fwd.seq = self.next_egress_seq(r, rtp.ssrc);
                }
                ctx.send(flow, node, pkt.size, Wire::Rtp(fwd));
                continue;
            }
            if !self.visible(r, s) {
                continue;
            }
            let share = self.share_for(r);
            let req_width = requested_width(self.grid, self.receivers[r].mode, n, s as u32);
            let forward = match self.kind {
                VcaKind::Meet => {
                    // Choose the simulcast copy; thin the high copy
                    // temporally at mid rates. The switch threshold carries a
                    // margin (0.55) so a 0.5 Mbps downlink sits firmly on the
                    // low copy — the paper's 0.19 Mbps utilization floor.
                    // Switches are keyframe-gated (see `meet_pending`).
                    let fresh_high = self
                        .stream_seen
                        .get(&(s, 1))
                        .map(|&t| ctx.now.saturating_since(t) < SimDuration::from_millis(500))
                        .unwrap_or(false);
                    let want_high = req_width >= 350 && share >= 0.55 && fresh_high;
                    let desired: u8 = if want_high { 1 } else { 0 };
                    let rs = &mut self.receivers[r];
                    let current = *rs.meet_current.entry(s).or_insert(desired);
                    let mut forward_tier = current;
                    if desired != current {
                        let need_request = match rs.meet_pending.get(&s) {
                            Some(&(tier, _)) => tier != desired,
                            None => true,
                        };
                        if need_request {
                            rs.meet_pending.insert(s, (desired, ctx.now));
                            // Ask the sender for an intra frame on the
                            // desired copy so the receiver can join it.
                            let ssrc = VcaClient::ssrc_base(s as u32) + desired as u32;
                            let fir = RtcpPacket::Fir {
                                ssrc,
                                issued_at: ctx.now,
                            };
                            let s_flow = self.receivers[s].flow;
                            let s_node = self.receivers[s].node;
                            ctx.send(s_flow, s_node, fir.wire_size(), Wire::Rtcp(fir));
                        }
                    } else {
                        self.receivers[r].meet_pending.remove(&s);
                    }
                    let rs = &mut self.receivers[r];
                    if let Some(&(tier, since)) = rs.meet_pending.get(&s) {
                        let is_pending_stream = rtp.layer.spatial == tier;
                        let keyframe = rtp.meta.map(|m| m.keyframe).unwrap_or(false);
                        if is_pending_stream && keyframe {
                            // Promote on the new copy's intra frame.
                            rs.meet_current.insert(s, tier);
                            rs.meet_pending.remove(&s);
                            forward_tier = tier;
                        } else if ctx.now.saturating_since(since) > SimDuration::from_secs(2) {
                            // The keyframe never came (sender stopped the
                            // copy, heavy loss): give up on the switch.
                            rs.meet_pending.remove(&s);
                        }
                    }
                    if rtp.layer.spatial != forward_tier {
                        false
                    } else if forward_tier == 1 {
                        // Thin to ~22 fps when the share is marginal (only
                        // odd frame ids are droppable enhancement frames).
                        !(share < 0.62 && rtp.frame_id % 4 == 1 && !rtp.is_fec)
                    } else {
                        true
                    }
                }
                VcaKind::Zoom | VcaKind::ZoomChrome => {
                    // Forward the SVC stack the receiver's estimate supports
                    // (5% margin over the pure media rate; FEC flexes to fit
                    // whatever headroom remains), bounded by layout demand.
                    // 5% under-margin: the elastic FEC flexes to absorb the
                    // difference, so the stack fills the estimate instead of
                    // wasting allocation on quantization.
                    let mut layers = 1;
                    for (i, &c) in ZOOM_MEDIA_CUMS.iter().enumerate().skip(1) {
                        if share >= c * 0.95 {
                            layers = i + 1;
                        }
                    }
                    let width_layers = if req_width >= 600 {
                        3
                    } else if req_width >= 350 {
                        2
                    } else {
                        1
                    };
                    (rtp.layer.spatial as usize) < layers.min(width_layers)
                }
                VcaKind::Teams | VcaKind::TeamsChrome => {
                    // Pure relay; in large calls the observed (unexplained)
                    // §6.1 downstream reduction is emulated as temporal
                    // thinning beyond five participants.
                    !(n > 5 && rtp.frame_id % 2 == 1 && !rtp.is_fec)
                }
            };
            if !forward {
                continue;
            }
            let flow = self.receivers[r].flow;
            let node = self.receivers[r].node;
            let mut fwd = rtp.clone();
            // Adapting SFUs (Meet, Zoom) rewrite sequence numbers per
            // subscriber so selective forwarding is not mistaken for loss.
            // Teams' box is a *pure relay*: sequence numbers pass through, so
            // uplink loss stays visible to the receiver whose reports drive
            // the sender (§4.2) — except in large thinned calls, where the
            // relay must rewrite to hide its own frame dropping.
            let rewrite = match self.kind {
                VcaKind::Teams | VcaKind::TeamsChrome => n > 5,
                _ => true,
            };
            if rewrite {
                fwd.seq = self.next_egress_seq(r, rtp.ssrc);
            }
            if fwd.kind == StreamKind::Video && !fwd.is_fec {
                let buf = self.retx_buf.entry((r, fwd.ssrc)).or_default();
                buf.push_back((fwd.seq, fwd.clone(), pkt.size));
                while buf.len() > 128 {
                    buf.pop_front();
                }
            }
            ctx.send(flow, node, pkt.size, Wire::Rtp(fwd));
            // Zoom server-side FEC on the downlink, elastic: the redundancy
            // ratio shrinks to fit the receiver's estimate so FEC never
            // starves media of a constrained link.
            let ratio = self.effective_fec_ratio(r, share);
            if ratio > 0.0 && !rtp.is_fec {
                let rs = &mut self.receivers[r];
                rs.fec_debt_bytes += pkt.size as f64 * ratio;
                while rs.fec_debt_bytes >= 1100.0 {
                    rs.fec_debt_bytes -= 1100.0;
                    let fec = RtpPacket {
                        ssrc: rs.fec_send.ssrc,
                        seq: rs.fec_send.next_seq(),
                        kind: StreamKind::Video,
                        layer: Default::default(),
                        frame_id: 0,
                        marker: false,
                        frame_pkts: 1,
                        is_fec: true,
                        is_retransmit: false,
                        capture_ts: ctx.now,
                        meta: None,
                    };
                    ctx.send(flow, node, 1140, Wire::Rtp(fec));
                }
            }
        }
    }

    fn on_receiver_report(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        from: NodeId,
        report: &ReceiverReport,
    ) {
        let Some(&r) = self.node_to_idx.get(&from) else {
            return;
        };
        let fb = FeedbackReport {
            now: ctx.now,
            loss_fraction: report.loss_fraction,
            receive_rate_mbps: report.receive_rate_mbps,
            one_way_delay_ms: report.one_way_delay_ms,
            rtt: SimDuration::from_secs_f64((report.rtt_ms / 1000.0).max(0.001)),
            fec_recovered_fraction: report.fec_recovered_fraction,
        };
        match self.kind {
            VcaKind::Meet | VcaKind::Zoom | VcaKind::ZoomChrome => {
                self.receivers[r].est.on_report(&fb);
            }
            VcaKind::Teams | VcaKind::TeamsChrome => {
                // Relay the report to every sender, rewriting the layout
                // demand fields for each destination.
                let n = self.call_size() as u32;
                for s in 0..self.clients.len() {
                    if s == r {
                        continue;
                    }
                    let mut fwd = *report;
                    fwd.max_requested_width =
                        requested_width(self.grid, self.receivers[r].mode, n as usize, s as u32);
                    fwd.call_size = n;
                    let flow = self.receivers[s].flow;
                    let node = self.receivers[s].node;
                    let size = RtcpPacket::Report(fwd).wire_size();
                    ctx.send(flow, node, size, Wire::Rtcp(RtcpPacket::Report(fwd)));
                }
            }
        }
    }

    fn send_sender_reports(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if matches!(
            self.kind,
            VcaKind::Meet | VcaKind::Zoom | VcaKind::ZoomChrome
        ) {
            let n = self.call_size() as u32;
            for s in 0..self.clients.len() {
                // Aggregate the sender's streams; one-way delay is the
                // minimum across streams (standing queue, not burst noise).
                let mut received = 0u64;
                let mut lost = 0u64;
                let mut bytes = 0u64;
                let mut min_owd = f64::INFINITY;
                let mut mean_owd_w = 0.0;
                for st in self.ingress[s].values_mut() {
                    let iv = st.take_interval();
                    received += iv.received;
                    lost += iv.lost;
                    bytes += iv.bytes;
                    if iv.received > 0 {
                        min_owd = min_owd.min(iv.min_owd_ms);
                        mean_owd_w += iv.mean_owd_ms * iv.received as f64;
                    }
                }
                if received + lost == 0 {
                    continue;
                }
                let stats = vcabench_transport::rtp::IntervalStats {
                    received,
                    lost,
                    bytes,
                    mean_owd_ms: if received > 0 {
                        mean_owd_w / received as f64
                    } else {
                        0.0
                    },
                    min_owd_ms: if min_owd.is_finite() { min_owd } else { 0.0 },
                    fec_recovered: 0,
                };
                // No REMB cap from receiver downlinks: simulcast decouples
                // the sender from its subscribers' problems — Fig 6 shows a
                // Meet sender's rate unchanged while its peer's downlink is
                // crushed. Layout-driven caps travel via
                // `max_requested_width` instead.
                let remb = None;
                let report = ReceiverReport {
                    ssrc: VcaClient::ssrc_base(s as u32),
                    loss_fraction: stats.loss_fraction(),
                    receive_rate_mbps: stats.receive_rate_mbps(TICK),
                    one_way_delay_ms: stats.min_owd_ms,
                    rtt_ms: 2.0 * stats.mean_owd_ms,
                    fec_recovered_fraction: 0.0,
                    remb_mbps: remb,
                    max_requested_width: self.max_requested_width_for(s),
                    call_size: n,
                };
                let flow = self.receivers[s].flow;
                let node = self.receivers[s].node;
                let size = RtcpPacket::Report(report).wire_size();
                ctx.send(flow, node, size, Wire::Rtcp(RtcpPacket::Report(report)));
            }
        }
        ctx.set_timer_after(TICK, TIMER_SENDER_REPORTS);
    }

    /// Downlink estimate for receiver `r` (diagnostics).
    pub fn downlink_estimate(&self, r: usize) -> f64 {
        self.receivers[r].est.estimate_mbps_raw()
    }

    /// Route a FIR from receiver `from` to the sender that owns `ssrc`.
    fn route_fir(&mut self, ctx: &mut Ctx<'_, Wire>, fir: RtcpPacket, ssrc: u32) {
        let sender = VcaClient::sender_of(ssrc);
        if sender == u32::MAX {
            return; // server-generated FEC stream: nothing to ask
        }
        let s = sender as usize;
        if s < self.receivers.len() {
            let flow = self.receivers[s].flow;
            let node = self.receivers[s].node;
            ctx.send(flow, node, fir.wire_size(), Wire::Rtcp(fir));
        }
    }
}

impl Agent<Wire> for VcaServer {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.started = true;
        ctx.set_timer_after(TICK, TIMER_SENDER_REPORTS);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        match &pkt.payload {
            Wire::Rtp(rtp) => {
                let rtp = rtp.clone();
                self.forward_rtp(ctx, &pkt, &rtp);
            }
            Wire::Rtcp(RtcpPacket::Report(report)) => {
                let report = *report;
                self.on_receiver_report(ctx, pkt.src, &report);
            }
            Wire::Rtcp(fir @ RtcpPacket::Fir { ssrc, .. }) => {
                let (fir, ssrc) = (*fir, *ssrc);
                self.route_fir(ctx, fir, ssrc);
            }
            Wire::Rtcp(RtcpPacket::Nack { ssrc, seq }) => {
                if let Some(&r) = self.node_to_idx.get(&pkt.src) {
                    if let Some(buf) = self.retx_buf.get(&(r, *ssrc)) {
                        if let Some((_, p, size)) = buf.iter().find(|(s, _, _)| s == seq) {
                            let mut retx = p.clone();
                            retx.is_retransmit = true;
                            let flow = self.receivers[r].flow;
                            let node = self.receivers[r].node;
                            ctx.send(flow, node, *size, Wire::Rtp(retx));
                        }
                    }
                }
            }
            Wire::Signal(SignalMsg::Layout { pinned }) => {
                if let Some(&idx) = self.node_to_idx.get(&pkt.src) {
                    self.receivers[idx].mode = match pinned {
                        Some(p) => ViewMode::Speaker(*p),
                        None => ViewMode::Gallery,
                    };
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, timer: u64) {
        if timer == TIMER_SENDER_REPORTS {
            self.send_sender_reports(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(now_s: u64, loss: f64, rate: f64) -> FeedbackReport {
        FeedbackReport {
            now: vcabench_simcore::SimTime::from_secs(now_s),
            loss_fraction: loss,
            receive_rate_mbps: rate,
            one_way_delay_ms: 20.0,
            rtt: SimDuration::from_millis(40),
            fec_recovered_fraction: 0.0,
        }
    }

    fn probing() -> DownEstimator {
        DownEstimator::Probing {
            tier: 0,
            clean_s: 0.0,
            backoff_s: 4.0,
            at_tier_s: 0.0,
            lossy_s: 0.0,
        }
    }

    #[test]
    fn probing_climbs_on_clean_delivery() {
        let mut e = probing();
        // 4 s of clean reports → tier 1; 4 more → tier 2.
        for i in 0..100 {
            e.on_report(&fb(i, 0.0, 1.0));
        }
        match e {
            DownEstimator::Probing { tier, .. } => assert_eq!(tier, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn probing_ignores_transient_loss_but_steps_down_on_sustained() {
        let mut e = probing();
        for i in 0..100 {
            e.on_report(&fb(i, 0.0, 1.0));
        }
        // A sub-second loss burst: tier unchanged.
        for i in 100..105 {
            e.on_report(&fb(i, 0.3, 0.4));
        }
        match e {
            DownEstimator::Probing { tier, .. } => assert_eq!(tier, 2, "transient tolerated"),
            _ => unreachable!(),
        }
        // Sustained collapse: steps down with backoff growth.
        for i in 105..130 {
            e.on_report(&fb(i, 0.3, 0.4));
        }
        match e {
            DownEstimator::Probing {
                tier, backoff_s, ..
            } => {
                assert!(tier < 2, "sustained loss steps down: {tier}");
                assert!(backoff_s > 4.0, "backoff grew: {backoff_s}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tier_shares_match_forwarding_thresholds() {
        // tier 0 must sit below the want_high threshold (0.55), tier 1 in the
        // thinned band [0.55, 0.62), tier 2 above.
        assert!(DownEstimator::tier_share(0) < 0.55);
        let t1 = DownEstimator::tier_share(1);
        assert!((0.55..0.62).contains(&t1));
        assert!(DownEstimator::tier_share(2) >= 0.62);
    }

    #[test]
    fn zoom_tracker_tolerates_fec_covered_loss() {
        let mut e = DownEstimator::Tracker {
            est: 0.5,
            tolerance: 0.12,
            bounded: false,
        };
        // 8% loss is within Zoom's FEC budget: the estimate keeps growing.
        for i in 0..50 {
            e.on_report(&fb(i, 0.08, 0.5));
        }
        match e {
            DownEstimator::Tracker { est, .. } => assert!(est > 0.5, "grew through loss: {est}"),
            _ => unreachable!(),
        }
        // 20% loss exceeds it: track the delivered rate down.
        e.on_report(&fb(60, 0.2, 0.3));
        match e {
            DownEstimator::Tracker { est, .. } => assert!((est - 0.285).abs() < 1e-9),
            _ => unreachable!(),
        }
    }

    #[test]
    fn server_kinds_and_grids() {
        let s = VcaServer::new(
            VcaKind::Teams,
            vec![vcabench_netsim::NodeId(0), vcabench_netsim::NodeId(1)],
            vec![vcabench_netsim::FlowId(1), vcabench_netsim::FlowId(2)],
        );
        assert_eq!(s.call_size(), 2);
        assert!(matches!(s.grid, GridStyle::FixedFour));
        let z = VcaServer::new(
            VcaKind::Zoom,
            vec![vcabench_netsim::NodeId(0), vcabench_netsim::NodeId(1)],
            vec![vcabench_netsim::FlowId(1), vcabench_netsim::FlowId(2)],
        );
        assert!(matches!(z.grid, GridStyle::Square));
    }

    #[test]
    fn visibility_limits_teams_tiles() {
        let nodes: Vec<_> = (0..8).map(vcabench_netsim::NodeId).collect();
        let flows: Vec<_> = (0..8).map(vcabench_netsim::FlowId).collect();
        let s = VcaServer::new(VcaKind::Teams, nodes.clone(), flows.clone());
        // Receiver 7 sees only the first four other senders.
        let visible: Vec<usize> = (0..7).filter(|&x| s.visible(7, x)).collect();
        assert_eq!(visible, vec![0, 1, 2, 3]);
        // A Zoom call shows everyone.
        let z = VcaServer::new(VcaKind::Zoom, nodes, flows);
        let visible: Vec<usize> = (0..7).filter(|&x| z.visible(7, x)).collect();
        assert_eq!(visible.len(), 7);
    }
}
