//! Viewing-mode layouts and the resolutions they demand (§6).
//!
//! The paper's modality findings all flow from one mechanism: the video
//! layout on each participant's 1366×768 screen determines the tile size of
//! each remote video, the tile size determines the resolution that receiver
//! requests, and the maximum requested resolution across receivers
//! determines what the sender encodes. Pinning a participant (speaker mode)
//! gives them a full-window tile and therefore raises *their* uplink.
//!
//! Each VCA lays out its gallery differently, and the paper's observed
//! utilization cliffs pin the grids down:
//!
//! * **Zoom**: square grid — 2×2 for four participants, "switching to 5
//!   participants creates a third row"; uplink falls 0.8 → 0.4 Mbps at n=5.
//! * **Meet**: wider tiles longer — the uplink cliff (1 → 0.2 Mbps) appears
//!   only at n=7, implying the tile width crosses Meet's low-stream
//!   threshold between 6 and 7 participants (a 4-column layout from 7 up).
//! * **Teams** (Linux): fixed 2×2 layout showing at most four remote tiles
//!   regardless of call size, so upstream demand never changes.

/// Screen width of the paper's Dell Latitude 3300 laptops.
pub const SCREEN_WIDTH: u32 = 1366;
/// Width requested for a pinned (full-window) participant.
pub const PINNED_WIDTH: u32 = SCREEN_WIDTH;
/// Width requested for thumbnail strips (non-pinned tiles in speaker mode).
pub const THUMBNAIL_WIDTH: u32 = 240;

/// Gallery grid style, one per VCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridStyle {
    /// Square-ish grid growing with the call (Zoom).
    Square,
    /// Two columns up to four participants, three up to six, four beyond
    /// (Meet's tiled layout on a laptop screen).
    MeetTiles,
    /// Fixed 2×2, at most four remote tiles (Teams on Linux).
    FixedFour,
}

/// A participant's viewing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// All participants tiled in a grid (the default in all three VCAs).
    Gallery,
    /// A specific participant (by call index) pinned full-window.
    Speaker(u32),
}

impl serde::Serialize for ViewMode {
    /// `"Gallery"` or `{"Speaker": idx}`.
    fn to_json_value(&self) -> serde::Value {
        match self {
            ViewMode::Gallery => serde::Value::String("Gallery".to_string()),
            ViewMode::Speaker(idx) => {
                let mut m = serde::Map::new();
                m.insert("Speaker".to_string(), serde::Value::U64(u64::from(*idx)));
                serde::Value::Object(m)
            }
        }
    }
}

impl serde::Deserialize for ViewMode {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if let Some(s) = v.as_str() {
            return match s {
                "Gallery" => Ok(ViewMode::Gallery),
                other => Err(serde::DeError::msg(format!(
                    "unknown ViewMode `{other}` (expected \"Gallery\" or {{\"Speaker\": idx}})"
                ))),
            };
        }
        if let Some(idx) = v.get("Speaker") {
            return u32::from_json_value(idx)
                .map(ViewMode::Speaker)
                .map_err(|e| e.in_field("Speaker"));
        }
        Err(serde::DeError::expected("ViewMode", v))
    }
}

/// Gallery-grid column count for a call with `n` participants.
pub fn gallery_columns(style: GridStyle, n: usize) -> u32 {
    match style {
        GridStyle::Square => (n as f64).sqrt().ceil() as u32,
        GridStyle::MeetTiles => ((n as u32).div_ceil(2)).clamp(1, 4),
        GridStyle::FixedFour => 2,
    }
}

/// Tile width on screen for a gallery call of `n` participants.
pub fn gallery_tile_width(style: GridStyle, n: usize) -> u32 {
    SCREEN_WIDTH / gallery_columns(style, n.max(1)).max(1)
}

/// Maximum number of remote videos shown simultaneously.
pub fn visible_remote_tiles(style: GridStyle, n: usize) -> usize {
    let remote = n.saturating_sub(1);
    match style {
        GridStyle::FixedFour => remote.min(4),
        _ => remote,
    }
}

/// The width this receiver requests from sender `sender_idx`, given its own
/// view mode and the call size.
pub fn requested_width(style: GridStyle, mode: ViewMode, n: usize, sender_idx: u32) -> u32 {
    match mode {
        // Gallery streams are capped at the encoder ladder's gallery maximum
        // (720 px): a full-window remote in a 2-party call still receives the
        // ordinary high stream; only explicit pinning unlocks the boosted
        // encode (§6.2).
        ViewMode::Gallery => gallery_tile_width(style, n).min(720),
        ViewMode::Speaker(pinned) => {
            if pinned == sender_idx {
                PINNED_WIDTH
            } else {
                THUMBNAIL_WIDTH
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoom_grid_growth_matches_paper() {
        // "Zoom uses a 2×2 grid for 4 participants; switching to 5
        // participants creates a third row."
        assert_eq!(gallery_columns(GridStyle::Square, 4), 2);
        assert_eq!(gallery_columns(GridStyle::Square, 5), 3);
        assert!(
            gallery_tile_width(GridStyle::Square, 5) < gallery_tile_width(GridStyle::Square, 4)
        );
    }

    #[test]
    fn zoom_tile_width_crosses_layer_thresholds_at_five() {
        // n=4: 683 px → full SVC stack; n=5: 455 px → two layers (the
        // 0.8 → 0.4 Mbps uplink cliff of §6.1).
        assert!(gallery_tile_width(GridStyle::Square, 4) >= 600);
        let w5 = gallery_tile_width(GridStyle::Square, 5);
        assert!((350..600).contains(&w5), "w5 = {w5}");
    }

    #[test]
    fn meet_crosses_low_stream_threshold_at_seven() {
        // Meet's uplink cliff is at n=7 (1 → 0.2 Mbps): tile width must stay
        // at or above the 350 px high-stream threshold through n=6 and fall
        // below it at n=7.
        for n in 2..=6 {
            assert!(gallery_tile_width(GridStyle::MeetTiles, n) >= 350, "n={n}");
        }
        assert!(gallery_tile_width(GridStyle::MeetTiles, 7) < 350);
    }

    #[test]
    fn teams_fixed_layout() {
        for n in 2..=8 {
            assert_eq!(gallery_columns(GridStyle::FixedFour, n), 2);
            assert_eq!(
                gallery_tile_width(GridStyle::FixedFour, n),
                SCREEN_WIDTH / 2
            );
        }
        assert_eq!(visible_remote_tiles(GridStyle::FixedFour, 8), 4);
        assert_eq!(visible_remote_tiles(GridStyle::FixedFour, 3), 2);
        assert_eq!(visible_remote_tiles(GridStyle::Square, 8), 7);
    }

    #[test]
    fn speaker_mode_requests() {
        let pinned = requested_width(GridStyle::Square, ViewMode::Speaker(2), 6, 2);
        let other = requested_width(GridStyle::Square, ViewMode::Speaker(2), 6, 3);
        assert_eq!(pinned, PINNED_WIDTH);
        assert_eq!(other, THUMBNAIL_WIDTH);
    }

    #[test]
    fn gallery_requests_equal_tile_width() {
        assert_eq!(
            requested_width(GridStyle::Square, ViewMode::Gallery, 5, 0),
            gallery_tile_width(GridStyle::Square, 5)
        );
    }
}
