//! WebRTC-stats-style per-second application metrics (§3.2).
//!
//! The paper samples `chrome://webrtc-internals` once per second for Meet
//! and Teams-Chrome, reading the encoder's operating point (frame width,
//! FPS, quantization parameter), freeze statistics for received video, and
//! FIR counts. [`StatsCollector`] reproduces that sampling inside each
//! simulated client; experiments read the samples after the run.

use vcabench_simcore::{SimDuration, SimTime};

/// One per-second sample, mirroring the fields the paper plots in Figs 2–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSample {
    /// Sample time.
    pub t: SimTime,
    /// Sender-side congestion controller target, Mbps.
    pub target_mbps: f64,
    /// Width of the highest-quality stream currently encoded, px.
    pub send_width: u32,
    /// FPS of that stream.
    pub send_fps: f64,
    /// QP of that stream.
    pub send_qp: f64,
    /// Width of the most recently decoded remote frame, px.
    pub recv_width: u32,
    /// Decoded frames in the last second (received FPS).
    pub recv_fps: f64,
    /// QP of the most recently decoded remote frame.
    pub recv_qp: f64,
    /// Cumulative freeze time on received video.
    pub freeze_time: SimDuration,
    /// Cumulative freeze count.
    pub freeze_count: u64,
    /// Cumulative FIRs sent by this client (it could not decode).
    pub firs_sent: u64,
    /// Cumulative FIRs received from remotes about this client's upstream
    /// (the Fig 3b metric, measured at the constrained sender).
    pub firs_received: u64,
    /// Cumulative video media payload bytes handed to the pacer (excludes
    /// FEC, audio, RTP/UDP headers). Passive-inference ground truth for
    /// the send-side media bitrate.
    pub send_media_bytes: u64,
    /// Cumulative non-FEC video payload bytes received (excludes headers).
    /// Passive-inference ground truth for the receive-side media bitrate.
    pub recv_media_bytes: u64,
    /// Cumulative frames decoded across *all* remote senders (`recv_fps`
    /// covers only the primary rendered remote; the aggregate is what a
    /// passive observer of the whole downlink can be scored against).
    pub frames_decoded: u64,
}

/// Accumulates per-second samples for one client.
#[derive(Debug, Clone, Default)]
pub struct StatsCollector {
    samples: Vec<StatsSample>,
}

impl StatsCollector {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn push(&mut self, sample: StatsSample) {
        self.samples.push(sample);
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[StatsSample] {
        &self.samples
    }

    /// Samples within `[from, to)`.
    pub fn between(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &StatsSample> {
        self.samples.iter().filter(move |s| s.t >= from && s.t < to)
    }

    /// Mean of a projected metric over `[from, to)` (0.0 when empty).
    pub fn mean_between<F: Fn(&StatsSample) -> f64>(
        &self,
        from: SimTime,
        to: SimTime,
        f: F,
    ) -> f64 {
        let vals: Vec<f64> = self.between(from, to).map(f).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Freeze ratio over `[from, to)`: freeze time accumulated in the window
    /// divided by the window length (the paper's normalization).
    pub fn freeze_ratio_between(&self, from: SimTime, to: SimTime) -> f64 {
        let in_window: Vec<&StatsSample> = self.between(from, to).collect();
        let (first, last) = match (in_window.first(), in_window.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return 0.0,
        };
        let dt = to.saturating_since(from).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        let frozen = last
            .freeze_time
            .saturating_sub(first.freeze_time)
            .as_secs_f64();
        (frozen / dt).clamp(0.0, 1.0)
    }

    /// FIRs issued within `[from, to)`.
    pub fn firs_between(&self, from: SimTime, to: SimTime) -> u64 {
        let in_window: Vec<&StatsSample> = self.between(from, to).collect();
        match (in_window.first(), in_window.last()) {
            (Some(f), Some(l)) => l.firs_sent.saturating_sub(f.firs_sent),
            _ => 0,
        }
    }

    /// FIRs received about this client's upstream within `[from, to)` (the
    /// Fig 3b metric, measured at the constrained sender).
    pub fn firs_received_between(&self, from: SimTime, to: SimTime) -> u64 {
        let in_window: Vec<&StatsSample> = self.between(from, to).collect();
        match (in_window.first(), in_window.last()) {
            (Some(f), Some(l)) => l.firs_received.saturating_sub(f.firs_received),
            _ => 0,
        }
    }

    /// Delta of a cumulative counter over `(from, to]`: the projected value
    /// at the last sample with `t <= to` minus its value at the last sample
    /// with `t <= from`. Unlike [`StatsCollector::between`]-based helpers
    /// this works for windows as short as one sampling interval, which is
    /// what the passive-inference join uses (per-second windows against
    /// per-second samples). Returns `None` when either endpoint has no
    /// sample at or before it.
    pub fn counter_delta<F: Fn(&StatsSample) -> u64>(
        &self,
        from: SimTime,
        to: SimTime,
        f: F,
    ) -> Option<u64> {
        let at_or_before = |t: SimTime| self.samples.iter().rev().find(|s| s.t <= t);
        let a = at_or_before(from)?;
        let b = at_or_before(to)?;
        Some(f(b).saturating_sub(f(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_s: u64, freeze_s: u64, firs: u64) -> StatsSample {
        StatsSample {
            t: SimTime::from_secs(t_s),
            target_mbps: 1.0,
            send_width: 640,
            send_fps: 30.0,
            send_qp: 30.0,
            recv_width: 640,
            recv_fps: 30.0,
            recv_qp: 30.0,
            freeze_time: SimDuration::from_secs(freeze_s),
            freeze_count: freeze_s,
            firs_sent: firs,
            firs_received: 0,
            send_media_bytes: t_s * 1000,
            recv_media_bytes: t_s * 500,
            frames_decoded: t_s * 30,
        }
    }

    #[test]
    fn windowed_means() {
        let mut c = StatsCollector::new();
        for t in 0..10 {
            c.push(StatsSample {
                send_fps: t as f64,
                ..sample(t, 0, 0)
            });
        }
        let m = c.mean_between(SimTime::from_secs(2), SimTime::from_secs(5), |s| s.send_fps);
        assert!((m - 3.0).abs() < 1e-12); // mean of 2,3,4
        assert_eq!(
            c.mean_between(SimTime::from_secs(90), SimTime::from_secs(95), |s| s
                .send_fps),
            0.0
        );
    }

    #[test]
    fn freeze_ratio_uses_cumulative_difference() {
        let mut c = StatsCollector::new();
        c.push(sample(0, 0, 0));
        c.push(sample(5, 1, 0));
        c.push(sample(10, 2, 0));
        let r = c.freeze_ratio_between(SimTime::ZERO, SimTime::from_secs(10));
        // 2 s frozen (minus the first sample's 0) over a 10 s window...
        // the last sample inside [0,10) is t=5 in strict half-open terms?
        // t=10 is excluded; the window sees 0→1 s of freeze over 10 s.
        assert!((r - 0.1).abs() < 1e-9, "r={r}");
    }

    #[test]
    fn fir_window_counts_delta() {
        let mut c = StatsCollector::new();
        c.push(sample(0, 0, 2));
        c.push(sample(5, 0, 7));
        c.push(sample(9, 0, 9));
        assert_eq!(c.firs_between(SimTime::ZERO, SimTime::from_secs(10)), 7);
        assert_eq!(
            c.firs_between(SimTime::from_secs(4), SimTime::from_secs(10)),
            2
        );
    }

    #[test]
    fn single_sample_and_empty_windows_yield_zero() {
        let mut c = StatsCollector::new();
        c.push(sample(5, 3, 4));
        // One sample in the window: no cumulative delta is observable.
        assert_eq!(
            c.freeze_ratio_between(SimTime::ZERO, SimTime::from_secs(10)),
            0.0
        );
        assert_eq!(c.firs_between(SimTime::ZERO, SimTime::from_secs(10)), 0);
        // Window past the data.
        assert_eq!(
            c.freeze_ratio_between(SimTime::from_secs(20), SimTime::from_secs(30)),
            0.0
        );
        assert_eq!(
            c.firs_between(SimTime::from_secs(20), SimTime::from_secs(30)),
            0
        );
        // Zero-length window and a collector with no samples at all.
        assert_eq!(
            c.freeze_ratio_between(SimTime::from_secs(10), SimTime::from_secs(10)),
            0.0
        );
        let empty = StatsCollector::new();
        assert_eq!(
            empty.freeze_ratio_between(SimTime::ZERO, SimTime::from_secs(10)),
            0.0
        );
        assert_eq!(empty.firs_between(SimTime::ZERO, SimTime::from_secs(10)), 0);
    }

    #[test]
    fn counter_delta_spans_short_windows() {
        let mut c = StatsCollector::new();
        for t in 1..=10 {
            c.push(sample(t, 0, 0));
        }
        // One-second window: delta between adjacent samples.
        let d = c.counter_delta(SimTime::from_secs(3), SimTime::from_secs(4), |s| {
            s.send_media_bytes
        });
        assert_eq!(d, Some(1000));
        let frames = c.counter_delta(SimTime::from_secs(1), SimTime::from_secs(10), |s| {
            s.frames_decoded
        });
        assert_eq!(frames, Some(9 * 30));
        // No sample at or before the left endpoint.
        assert_eq!(
            c.counter_delta(SimTime::ZERO, SimTime::from_secs(4), |s| s.frames_decoded),
            None
        );
        // Endpoints between samples snap to the last sample at or before.
        let d = c.counter_delta(
            SimTime::from_secs_f64(3.5),
            SimTime::from_secs_f64(4.5),
            |s| s.recv_media_bytes,
        );
        assert_eq!(d, Some(500));
    }

    #[test]
    fn firs_received_window_counts_delta() {
        let mut c = StatsCollector::new();
        c.push(StatsSample {
            firs_received: 1,
            ..sample(0, 0, 0)
        });
        c.push(StatsSample {
            firs_received: 4,
            ..sample(5, 0, 0)
        });
        c.push(StatsSample {
            firs_received: 9,
            ..sample(9, 0, 0)
        });
        assert_eq!(
            c.firs_received_between(SimTime::ZERO, SimTime::from_secs(10)),
            8
        );
        assert_eq!(
            c.firs_received_between(SimTime::from_secs(4), SimTime::from_secs(10)),
            5
        );
        assert_eq!(
            c.firs_received_between(SimTime::from_secs(20), SimTime::from_secs(30)),
            0
        );
    }
}
