//! # vcabench-vca
//!
//! Behavioral models of the three video conferencing applications the paper
//! measures — Zoom, Google Meet, and Microsoft Teams — built on the packet
//! simulator (`vcabench-netsim`), the transport models
//! (`vcabench-transport`), the congestion controllers
//! (`vcabench-congestion`), and the media pipeline (`vcabench-media`).
//!
//! * [`VcaClient`] — encoder + pacer + congestion controller + decoder with
//!   WebRTC-style per-second statistics.
//! * [`VcaServer`] — Meet's simulcast SFU, Zoom's SVC SFU with server FEC,
//!   or Teams' pure relay.
//! * [`call`] — orchestration (the simulation's PyAutoGUI).
//! * [`layout`] — gallery/speaker layouts and the resolutions they demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod call;
pub mod client;
pub mod config;
pub mod layout;
pub mod server;
pub mod stats_api;

pub use call::{
    multiparty_call, two_party_call, wire_call, wire_call_at, CallHandles, MultipartyCall,
    TwoPartyCall,
};
pub use client::{Controller, VcaClient};
pub use config::VcaKind;
pub use layout::{GridStyle, ViewMode};
pub use server::VcaServer;
pub use stats_api::{StatsCollector, StatsSample};

#[cfg(test)]
mod proptests {
    use super::layout::*;
    use proptest::prelude::*;

    proptest! {
        /// Tile width is monotone non-increasing in call size for every grid.
        #[test]
        fn tile_width_monotone(n in 1usize..32) {
            for style in [GridStyle::Square, GridStyle::MeetTiles, GridStyle::FixedFour] {
                prop_assert!(
                    gallery_tile_width(style, n + 1) <= gallery_tile_width(style, n),
                    "{style:?} at n={n}"
                );
            }
        }

        /// Visible tiles never exceed the remote count, and Teams caps at 4.
        #[test]
        fn visible_tiles_bounded(n in 1usize..32) {
            for style in [GridStyle::Square, GridStyle::MeetTiles, GridStyle::FixedFour] {
                let v = visible_remote_tiles(style, n);
                prop_assert!(v <= n.saturating_sub(1));
                if style == GridStyle::FixedFour {
                    prop_assert!(v <= 4);
                }
            }
        }

        /// Requested widths are always positive, bounded by the screen, and
        /// a pinned sender is asked for at least as much as anyone else.
        #[test]
        fn requested_width_sane(n in 2usize..16, pinned in 0u32..16, sender in 0u32..16) {
            for style in [GridStyle::Square, GridStyle::MeetTiles, GridStyle::FixedFour] {
                for mode in [ViewMode::Gallery, ViewMode::Speaker(pinned)] {
                    let w = requested_width(style, mode, n, sender);
                    prop_assert!(w > 0 && w <= SCREEN_WIDTH);
                }
                let at_pin = requested_width(style, ViewMode::Speaker(pinned), n, pinned);
                let other = requested_width(style, ViewMode::Speaker(pinned), n, pinned + 1);
                prop_assert!(at_pin >= other);
            }
        }
    }
}
