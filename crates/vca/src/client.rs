//! The simulated VCA client: encoder, pacer, congestion controller, and
//! receive pipeline in one network agent.
//!
//! A client plays both roles of §2.2's laptops: it captures the talking-head
//! source, encodes it according to its VCA's adaptation policy, paces RTP
//! packets (plus FEC for Zoom) toward the call server, and decodes whatever
//! the server forwards, producing the WebRTC-style statistics the paper
//! samples every second.

use std::any::Any;
use std::collections::HashMap;

use vcabench_congestion::{
    FbraController, FeedbackReport, GccController, RateController, TeamsController,
};
use vcabench_media::{
    policy::StreamPlan, EncoderPolicy, FrameAssembler, FreezeDetector, MeetPolicy,
};
use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimRng, SimTime};
use vcabench_telemetry::{EventKind, Telemetry};
use vcabench_transport::{
    rtcp::{FirTracker, ReceiverReport, RtcpPacket},
    rtp::{FrameMeta, RtpPacket, RtpRecvState, RtpSendState, StreamKind},
    wire::{SignalMsg, Wire, UDP_OVERHEAD},
};

use crate::config::VcaKind;
use crate::layout::ViewMode;
use crate::stats_api::{StatsCollector, StatsSample};

/// RTP payload bytes per packet.
const RTP_PAYLOAD: usize = 1100;
/// RTP header bytes (+UDP/IP added separately).
const RTP_HEADER: usize = 12;
/// Audio packet cadence.
const AUDIO_INTERVAL: SimDuration = SimDuration::from_millis(20);
/// Report and replan cadence.
const TICK: SimDuration = SimDuration::from_millis(100);

const TIMER_RTCP: u64 = 1;
const TIMER_PACE: u64 = 5;
const TIMER_BOOT: u64 = 6;
const TIMER_AUDIO: u64 = 2;
const TIMER_STATS: u64 = 3;
const TIMER_REPLAN: u64 = 4;
const TIMER_FRAME_BASE: u64 = 100;

/// The per-VCA congestion controller, dispatching without trait objects so
/// VCA-specific knobs (Teams' nominal, Zoom's FEC fraction) stay reachable.
#[derive(Debug, Clone)]
pub enum Controller {
    /// Meet: GCC.
    Gcc(GccController),
    /// Zoom: FBRA-style FEC probing.
    Fbra(FbraController),
    /// Teams: conservative loss-based.
    Teams(TeamsController),
}

impl Controller {
    fn on_report(&mut self, r: &FeedbackReport) {
        match self {
            Controller::Gcc(c) => c.on_report(r),
            Controller::Fbra(c) => c.on_report(r),
            Controller::Teams(c) => c.on_report(r),
        }
    }

    /// Current target total rate, Mbps.
    pub fn target_mbps(&self) -> f64 {
        match self {
            Controller::Gcc(c) => c.target_mbps(),
            Controller::Fbra(c) => c.target_mbps(),
            Controller::Teams(c) => c.target_mbps(),
        }
    }

    fn fec_fraction(&self) -> f64 {
        match self {
            Controller::Gcc(c) => c.fec_fraction(),
            Controller::Fbra(c) => c.fec_fraction(),
            Controller::Teams(c) => c.fec_fraction(),
        }
    }

    fn set_bounds(&mut self, min: f64, max: f64) {
        match self {
            Controller::Gcc(c) => c.set_bounds(min, max),
            Controller::Fbra(c) => c.set_bounds(min, max),
            Controller::Teams(c) => c.set_bounds(min, max),
        }
    }

    /// Controller family name (stable telemetry vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            Controller::Gcc(_) => "gcc",
            Controller::Fbra(_) => "fbra",
            Controller::Teams(_) => "teams",
        }
    }

    /// Current state-machine state name (per-family vocabulary).
    pub fn state_name(&self) -> &'static str {
        match self {
            Controller::Gcc(c) => c.state_name(),
            Controller::Fbra(c) => c.state_name(),
            Controller::Teams(c) => c.state_name(),
        }
    }

    /// Most recent detector signal, for controllers that have one
    /// (GCC's overuse/underuse/normal).
    pub fn signal_name(&self) -> Option<&'static str> {
        match self {
            Controller::Gcc(c) => Some(c.signal_name()),
            Controller::Fbra(_) | Controller::Teams(_) => None,
        }
    }
}

/// Receive-side state for one inbound SSRC.
struct RecvStream {
    rtp: RtpRecvState,
    assembler: FrameAssembler,
    last_meta: Option<FrameMeta>,
    /// Last packet arrival (stats must ignore streams the SFU stopped
    /// forwarding, or a stale simulcast copy's metadata would linger).
    last_arrival: SimTime,
}

/// Render state per remote sender (freeze detection spans SSRC switches).
struct RenderState {
    freeze: FreezeDetector,
    fir: FirTracker,
    frames_total: u64,
}

/// One simulated VCA client.
pub struct VcaClient {
    /// Which application this client runs.
    pub kind: VcaKind,
    /// This client's index within the call (0-based).
    pub index: u32,
    server: NodeId,
    uplink_flow: FlowId,
    /// Congestion controller.
    pub controller: Controller,
    policy: Box<dyn EncoderPolicy>,
    plans: Vec<StreamPlan>,
    sources: Vec<vcabench_media::TalkingHeadSource>,
    send_states: Vec<RtpSendState>,
    frame_timer_active: Vec<bool>,
    audio_send: RtpSendState,
    fec_debt_bytes: f64,
    /// FEC bytes to emit per media byte (recomputed at each replan): fills
    /// the gap between the controller target and the quantized layer stack,
    /// so Zoom's on-wire rate tracks its target *continuously* — the layer
    /// ladder alone would make the rate jump in 0.3 Mbps steps.
    fec_per_media: f64,
    fec_send: RtpSendState,
    /// Pacer queue: (wire size, payload). Real WebRTC paces media at ~2.5×
    /// the target rate so keyframe bursts do not slam the access queue.
    pace_queue: std::collections::VecDeque<(usize, Wire)>,
    pacing: bool,
    rng: SimRng,
    /// Viewing mode announced to the server.
    pub mode: ViewMode,
    recv: HashMap<u32, RecvStream>,
    render: HashMap<u32, RenderState>,
    /// Per-second WebRTC-style samples.
    pub stats: StatsCollector,
    /// FIRs received from remotes about this client's upstream (Fig 3b).
    pub firs_received: u64,
    /// Cumulative video media payload bytes handed to the pacer
    /// (passive-inference ground truth; excludes FEC/audio/headers).
    send_media_bytes: u64,
    /// Cumulative non-FEC video payload bytes received (ground truth).
    recv_media_bytes: u64,
    max_requested_width: u32,
    call_size: u32,
    base_nominal: f64,
    started_at: SimTime,
    last_stats_frames: u64,
    /// When the client joins the call (simulation of the paper's staggered
    /// starts: competing applications enter ~30 s into the experiment).
    pub join_at: SimTime,
    /// Trace hook (disabled by default; see [`VcaClient::set_telemetry`]).
    tel: Telemetry,
    /// Last emitted (state, signal) pair, for change detection.
    tel_cc: Option<(&'static str, &'static str)>,
    /// Last emitted (fraction, fec_per_media) bit patterns.
    tel_fec: Option<(u64, u64)>,
    /// Last emitted plan shape: (streams, top width, top fps bits).
    tel_plan: Option<(usize, u32, u64)>,
}

impl VcaClient {
    /// Build a client of `kind` with call index `index`, talking to `server`
    /// over `uplink_flow`. The RNG seeds the source noise and any controller
    /// jitter so repeated runs are reproducible.
    pub fn new(
        kind: VcaKind,
        index: u32,
        server: NodeId,
        uplink_flow: FlowId,
        mode: ViewMode,
        rng: &mut SimRng,
    ) -> Self {
        let mut rng = rng.fork(&format!("client-{index}"));
        let controller = match kind {
            VcaKind::Meet => Controller::Gcc(GccController::new(kind.gcc_config())),
            VcaKind::Zoom | VcaKind::ZoomChrome => {
                let mut cfg = kind.fbra_config();
                cfg.reprobe_jitter = 0.8 + 0.4 * rng.uniform();
                Controller::Fbra(FbraController::new(cfg))
            }
            VcaKind::Teams | VcaKind::TeamsChrome => {
                Controller::Teams(TeamsController::new(kind.teams_config(), &mut rng))
            }
        };
        let base_nominal = match kind {
            VcaKind::Teams => 1.65,
            VcaKind::TeamsChrome => 1.10,
            _ => 0.0,
        };
        let policy: Box<dyn EncoderPolicy> = match kind {
            VcaKind::Meet => Box::new(MeetPolicy::default()),
            VcaKind::Zoom | VcaKind::ZoomChrome => Box::new(vcabench_media::ZoomPolicy::default()),
            VcaKind::Teams | VcaKind::TeamsChrome => {
                Box::new(vcabench_media::TeamsPolicy::default())
            }
        };
        VcaClient {
            kind,
            index,
            server,
            uplink_flow,
            controller,
            policy,
            plans: Vec::new(),
            sources: Vec::new(),
            send_states: Vec::new(),
            frame_timer_active: Vec::new(),
            audio_send: RtpSendState::new(Self::ssrc_base(index) + 99),
            fec_debt_bytes: 0.0,
            fec_per_media: 0.0,
            fec_send: RtpSendState::new(Self::ssrc_base(index) + 500),
            pace_queue: std::collections::VecDeque::new(),
            pacing: false,
            rng,
            mode,
            recv: HashMap::new(),
            render: HashMap::new(),
            stats: StatsCollector::new(),
            firs_received: 0,
            send_media_bytes: 0,
            recv_media_bytes: 0,
            max_requested_width: 640,
            call_size: 2,
            base_nominal,
            started_at: SimTime::ZERO,
            last_stats_frames: 0,
            join_at: SimTime::ZERO,
            tel: Telemetry::disabled(),
            tel_cc: None,
            tel_fec: None,
            tel_plan: None,
        }
    }

    /// Attach a telemetry handle; the client emits congestion-controller
    /// state transitions, FEC-ratio changes, layer switches, FIR and
    /// freeze events through it. Use the same handle as the network so one
    /// recorder sees the whole run in event order.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Delay this client's join until `at`.
    pub fn with_join_at(mut self, at: SimTime) -> Self {
        self.join_at = at;
        self
    }

    /// Enable/disable the Teams low-rate width-bug emulation (§3.2) on this
    /// client — the counterfactual knob for the ablation experiments.
    pub fn set_teams_width_bug(&mut self, enable: bool) {
        self.policy.set_emulate_low_rate_bug(enable);
    }

    /// Clamp the congestion controller's target range, Mbps (a declarative
    /// what-if knob for scenario specs: emulate clients provisioned with a
    /// lower encoder ceiling or a higher floor).
    pub fn set_rate_bounds(&mut self, min_mbps: f64, max_mbps: f64) {
        assert!(
            min_mbps > 0.0 && max_mbps >= min_mbps,
            "invalid rate bounds: [{min_mbps}, {max_mbps}]"
        );
        self.controller.set_bounds(min_mbps, max_mbps);
    }

    /// SSRC base of client `index`: streams are base+i, audio base+99.
    pub fn ssrc_base(index: u32) -> u32 {
        (index + 1) * 1000
    }

    /// Sender index that owns `ssrc` (server FEC streams map to u32::MAX).
    pub fn sender_of(ssrc: u32) -> u32 {
        if ssrc >= 1000 {
            ssrc / 1000 - 1
        } else {
            u32::MAX
        }
    }

    fn ensure_stream_state(&mut self, count: usize) {
        while self.sources.len() < count {
            let i = self.sources.len();
            self.sources.push(vcabench_media::TalkingHeadSource::new(
                self.rng.fork(&format!("source-{i}")),
            ));
            self.send_states
                .push(RtpSendState::new(Self::ssrc_base(self.index) + i as u32));
            self.frame_timer_active.push(false);
        }
    }

    fn replan(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let target = self.controller.target_mbps();
        let fec = self.controller.fec_fraction();
        let media_budget = (target * (1.0 - fec)).max(0.02);
        self.policy
            .set_max_requested_width(self.max_requested_width);
        self.plans = self.policy.plan(media_budget);
        // FEC fills whatever the quantized plan left of the target.
        let planned: f64 = self.plans.iter().map(|p| p.rate_mbps).sum();
        self.fec_per_media = if fec > 0.0 && planned > 0.02 {
            ((target - planned) / planned).clamp(0.0, 2.0)
        } else {
            0.0
        };
        if self.tel.enabled() {
            let client = self.index as u64;
            let fec_key = (fec.to_bits(), self.fec_per_media.to_bits());
            if self.tel_fec != Some(fec_key) {
                self.tel_fec = Some(fec_key);
                let fec_per_media = self.fec_per_media;
                self.tel.emit(ctx.now, || EventKind::FecRatio {
                    client,
                    fraction: fec,
                    fec_per_media,
                });
            }
            let top = self.plans.last();
            let shape = (
                self.plans.len(),
                top.map(|p| p.params.width).unwrap_or(0),
                top.map(|p| p.params.fps.to_bits()).unwrap_or(0),
            );
            if self.tel_plan != Some(shape) {
                self.tel_plan = Some(shape);
                let top_fps = top.map(|p| p.params.fps).unwrap_or(0.0);
                self.tel.emit(ctx.now, || EventKind::LayerSwitch {
                    client,
                    streams: shape.0 as u64,
                    top_width: shape.1 as u64,
                    top_fps,
                });
            }
        }
        self.ensure_stream_state(self.plans.len());
        for i in 0..self.plans.len() {
            if !self.frame_timer_active[i] {
                self.frame_timer_active[i] = true;
                ctx.set_timer_after(SimDuration::ZERO, TIMER_FRAME_BASE + i as u64);
            }
        }
    }

    fn emit_frame(&mut self, ctx: &mut Ctx<'_, Wire>, stream: usize) {
        let Some(plan) = self.plans.get(stream).copied() else {
            // Stream currently dropped: stop its timer and make sure it
            // restarts with a keyframe (subscribers must resync).
            if stream < self.frame_timer_active.len() {
                self.frame_timer_active[stream] = false;
                self.sources[stream].request_keyframe();
            }
            return;
        };
        let frame = self.sources[stream].next_frame(
            plan.rate_mbps,
            plan.params.fps,
            plan.params.width,
            plan.params.height,
        );
        let meta = FrameMeta {
            width: plan.params.width,
            height: plan.params.height,
            fps: plan.params.fps,
            qp: plan.params.qp,
            keyframe: frame.keyframe,
        };
        let frame_id = self.send_states[stream].next_frame();
        let ssrc = self.send_states[stream].ssrc;
        self.send_media_bytes += frame.bytes as u64;
        let pkts = frame.bytes.div_ceil(RTP_PAYLOAD).max(1) as u16;
        let mut remaining = frame.bytes;
        for p in 0..pkts {
            let payload = remaining.min(RTP_PAYLOAD);
            remaining -= payload;
            let seq = self.send_states[stream].next_seq();
            let rtp = RtpPacket {
                ssrc,
                seq,
                kind: StreamKind::Video,
                layer: plan.layer,
                frame_id,
                marker: p + 1 == pkts,
                frame_pkts: pkts,
                is_fec: false,
                is_retransmit: false,
                capture_ts: ctx.now,
                meta: Some(meta),
            };
            self.enqueue_paced(ctx, payload + RTP_HEADER + UDP_OVERHEAD, Wire::Rtp(rtp));
        }
        // Client-side FEC (Zoom): redundancy filling the target-to-plan gap,
        // emitted as extra packets on a dedicated SSRC.
        if self.fec_per_media > 0.0 {
            self.fec_debt_bytes += frame.bytes as f64 * self.fec_per_media;
            while self.fec_debt_bytes >= RTP_PAYLOAD as f64 {
                self.fec_debt_bytes -= RTP_PAYLOAD as f64;
                // FEC rides its own SSRC: middleboxes that strip it (Zoom's
                // relay regenerates FEC server-side) must not leave sequence
                // gaps in the media stream.
                let fec_ssrc = self.fec_send.ssrc;
                let fec_seq = self.fec_send.next_seq();
                let rtp = RtpPacket {
                    ssrc: fec_ssrc,
                    seq: fec_seq,
                    kind: StreamKind::Video,
                    layer: plan.layer,
                    frame_id,
                    marker: false,
                    frame_pkts: pkts,
                    is_fec: true,
                    is_retransmit: false,
                    capture_ts: ctx.now,
                    meta: None,
                };
                self.enqueue_paced(ctx, RTP_PAYLOAD + RTP_HEADER + UDP_OVERHEAD, Wire::Rtp(rtp));
            }
        }
        // Schedule the next frame at the *current* plan's cadence.
        let fps = plan.params.fps.max(1.0);
        ctx.set_timer_after(
            SimDuration::from_secs_f64(1.0 / fps),
            TIMER_FRAME_BASE + stream as u64,
        );
    }

    fn enqueue_paced(&mut self, ctx: &mut Ctx<'_, Wire>, size: usize, payload: Wire) {
        self.pace_queue.push_back((size, payload));
        if !self.pacing {
            self.pacing = true;
            ctx.set_timer_after(SimDuration::ZERO, TIMER_PACE);
        }
    }

    fn pace_one(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let Some((size, mut payload)) = self.pace_queue.pop_front() else {
            self.pacing = false;
            return;
        };
        // Transport timestamps are taken at socket-write time: pacing delay
        // must not masquerade as network one-way delay, or delay-based
        // controllers (GCC) would react to their own pacer.
        if let Wire::Rtp(rtp) = &mut payload {
            rtp.capture_ts = ctx.now;
        }
        ctx.send(self.uplink_flow, self.server, size, payload);
        if self.pace_queue.is_empty() {
            self.pacing = false;
        } else {
            // Pace at 1.25x the controller target, never below 300 kbps so
            // the queue always drains. (WebRTC's default factor is 2.5x, but
            // a drop-tail bottleneck punishes the burstier of two competing
            // flows disproportionately — with a high factor the simulated
            // incumbent loses its share to a smoother newcomer within
            // seconds, which real calls do not exhibit.)
            let pace_mbps = (1.25 * self.controller.target_mbps()).max(0.3);
            // ±30% spacing jitter: strictly periodic arrivals phase-lock
            // with the bottleneck's drain pattern, letting one flow slip
            // through a full queue while another eats every drop.
            let jitter = self.rng.uniform_range(0.7, 1.3);
            let next = SimDuration::from_secs_f64(size as f64 * 8.0 * jitter / (pace_mbps * 1e6));
            ctx.set_timer_after(next, TIMER_PACE);
        }
    }

    fn emit_audio(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // 0.04 Mbps at 20 ms cadence = 100 payload bytes per packet.
        let payload =
            (self.kind.audio_rate_mbps() * 1e6 / 8.0 * AUDIO_INTERVAL.as_secs_f64()) as usize;
        let rtp = RtpPacket {
            ssrc: self.audio_send.ssrc,
            seq: self.audio_send.next_seq(),
            kind: StreamKind::Audio,
            layer: Default::default(),
            frame_id: 0,
            marker: true,
            frame_pkts: 1,
            is_fec: false,
            is_retransmit: false,
            capture_ts: ctx.now,
            meta: None,
        };
        ctx.send(
            self.uplink_flow,
            self.server,
            payload + RTP_HEADER + UDP_OVERHEAD,
            Wire::Rtp(rtp),
        );
        ctx.set_timer_after(AUDIO_INTERVAL, TIMER_AUDIO);
    }

    fn send_receiver_report(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // Aggregate all inbound SSRCs into one downlink report.
        let mut received = 0u64;
        let mut lost = 0u64;
        let mut bytes = 0u64;
        let mut owd_min = f64::INFINITY;
        for rs in self.recv.values_mut() {
            let s = rs.rtp.take_interval();
            received += s.received;
            lost += s.lost;
            bytes += s.bytes;
            if s.received > 0 {
                owd_min = owd_min.min(s.min_owd_ms);
            }
        }
        if received + lost == 0 {
            ctx.set_timer_after(TICK, TIMER_RTCP);
            return;
        }
        let owd = if owd_min.is_finite() { owd_min } else { 0.0 };
        let report = ReceiverReport {
            ssrc: 0,
            loss_fraction: lost as f64 / (received + lost) as f64,
            receive_rate_mbps: bytes as f64 * 8.0 / TICK.as_secs_f64() / 1e6,
            one_way_delay_ms: owd,
            rtt_ms: 2.0 * owd,
            fec_recovered_fraction: 0.0,
            remb_mbps: None,
            max_requested_width: self.max_requested_width,
            call_size: self.call_size,
        };
        let size = RtcpPacket::Report(report).wire_size();
        ctx.send(
            self.uplink_flow,
            self.server,
            size,
            Wire::Rtcp(RtcpPacket::Report(report)),
        );
        ctx.set_timer_after(TICK, TIMER_RTCP);
    }

    fn sample_stats(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let top = self.plans.last();
        // Primary rendered remote: lowest sender index that isn't us.
        let primary = self
            .render
            .keys()
            .copied()
            .filter(|&s| s != self.index)
            .min();
        let (recv_fps, freeze_time, freeze_count, firs_sent) = match primary {
            Some(p) => {
                let r = &self.render[&p];
                let fps = (r.freeze.frames - self.last_stats_frames) as f64;
                self.last_stats_frames = r.freeze.frames;
                (
                    fps,
                    r.freeze.freeze_time,
                    r.freeze.freeze_count,
                    r.fir.count,
                )
            }
            None => (0.0, SimDuration::ZERO, 0, 0),
        };
        let fresh = SimDuration::from_millis(1200);
        let (recv_width, recv_qp) = self
            .recv
            .values()
            .filter(|rs| ctx.now.saturating_since(rs.last_arrival) < fresh)
            .filter_map(|rs| rs.last_meta)
            .map(|m| (m.width, m.qp))
            .max_by_key(|&(w, _)| w)
            .unwrap_or((0, 0.0));
        self.stats.push(StatsSample {
            t: ctx.now,
            target_mbps: self.controller.target_mbps(),
            send_width: top.map(|p| p.params.width).unwrap_or(0),
            send_fps: top.map(|p| p.params.fps).unwrap_or(0.0),
            send_qp: top.map(|p| p.params.qp).unwrap_or(0.0),
            recv_width,
            recv_fps,
            recv_qp,
            freeze_time,
            freeze_count,
            firs_sent,
            firs_received: self.firs_received,
            send_media_bytes: self.send_media_bytes,
            recv_media_bytes: self.recv_media_bytes,
            frames_decoded: self.render.values().map(|r| r.frames_total).sum(),
        });
        ctx.set_timer_after(SimDuration::from_secs(1), TIMER_STATS);
    }

    fn on_rtp(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: &Packet<Wire>, rtp: &RtpPacket) {
        let rs = self.recv.entry(rtp.ssrc).or_insert_with(|| RecvStream {
            rtp: RtpRecvState::new(),
            // All VCA streams in the model may be temporally thinned by the
            // server (Meet mid-rate, Teams large calls), so odd-frame gaps
            // must not break the reference chain.
            assembler: FrameAssembler::new().with_temporal_thinning(),
            last_meta: None,
            last_arrival: ctx.now,
        });
        rs.last_arrival = ctx.now;
        let prev_highest = rs.rtp.highest_seq();
        rs.rtp.on_packet(ctx.now, rtp, pkt.size);
        // NACK sequence gaps on media streams (WebRTC-style retransmission;
        // the SFU answers from its per-subscriber buffer). Capped per event.
        if rtp.kind == StreamKind::Video && !rtp.is_fec && !rtp.is_retransmit {
            if let Some(h) = prev_highest {
                if rtp.seq > h + 1 {
                    for missing in (h + 1..rtp.seq).take(10) {
                        let nack = RtcpPacket::Nack {
                            ssrc: rtp.ssrc,
                            seq: missing,
                        };
                        ctx.send(
                            self.uplink_flow,
                            self.server,
                            nack.wire_size(),
                            Wire::Rtcp(nack),
                        );
                    }
                }
            }
        }
        if rtp.kind != StreamKind::Video || rtp.is_fec {
            return;
        }
        self.recv_media_bytes += pkt.size.saturating_sub(RTP_HEADER + UDP_OVERHEAD) as u64;
        if let Some(m) = rtp.meta {
            rs.last_meta = Some(m);
        }
        let ev = rs.assembler.on_packet(ctx.now, rtp, pkt.size);
        let needs_kf = rs.assembler.needs_keyframe;
        let sender = Self::sender_of(rtp.ssrc);
        let render = self.render.entry(sender).or_insert_with(|| RenderState {
            freeze: FreezeDetector::new(30.0),
            // 1 s hold-off: long enough that a starved receiver does not
            // force keyframes worth seconds of bitrate budget, short enough
            // that decode recovery does not add whole seconds of freeze.
            fir: FirTracker::new(SimDuration::from_millis(1000)),
            frames_total: 0,
        });
        if let vcabench_media::AssembleEvent::FrameComplete { .. } = ev {
            let freezes_before = render.freeze.freeze_count;
            render.freeze.on_frame(ctx.now);
            render.frames_total += 1;
            if render.freeze.freeze_count > freezes_before {
                let client = self.index as u64;
                let count = render.freeze.freeze_count;
                let total_ms = render.freeze.freeze_time.as_secs_f64() * 1000.0;
                self.tel.emit(ctx.now, || EventKind::Freeze {
                    client,
                    sender: sender as u64,
                    count,
                    total_ms,
                });
            }
        }
        if needs_kf {
            if let Some(fir) = render.fir.request(ctx.now, rtp.ssrc) {
                let size = fir.wire_size();
                ctx.send(self.uplink_flow, self.server, size, Wire::Rtcp(fir));
                let (client, ssrc) = (self.index as u64, rtp.ssrc as u64);
                self.tel.emit(ctx.now, || EventKind::Fir {
                    client,
                    ssrc,
                    dir: "sent",
                });
            }
        }
    }

    fn on_rtcp(&mut self, ctx: &mut Ctx<'_, Wire>, rtcp: &RtcpPacket) {
        match rtcp {
            RtcpPacket::Report(r) => {
                self.max_requested_width = r.max_requested_width;
                self.call_size = r.call_size;
                // Teams' pinned-sender anomaly (§6.2): uplink grows with the
                // call size when pinned, far beyond the other VCAs.
                if let Controller::Teams(t) = &mut self.controller {
                    if r.max_requested_width >= 1000 && self.call_size >= 3 {
                        t.set_nominal(0.65 + 0.28 * self.call_size as f64);
                    } else {
                        t.set_nominal(self.base_nominal);
                    }
                }
                // Zoom's encoder ceiling follows the layout demand: pinned
                // senders push ~1 Mbps (§6.2); small tiles cap the SVC stack
                // (the n=5 uplink cliff of Fig 15b). Without lowering the
                // *controller* ceiling, FEC padding would fill the gap the
                // layer cap opened.
                if let Controller::Fbra(f) = &mut self.controller {
                    let w = r.max_requested_width;
                    let ceiling = if w >= 1000 {
                        1.0
                    } else if w >= 600 {
                        0.68
                    } else if w >= 350 {
                        0.40
                    } else {
                        0.10
                    };
                    f.set_media_max(ceiling);
                }
                let fb = FeedbackReport {
                    now: ctx.now,
                    loss_fraction: r.loss_fraction,
                    receive_rate_mbps: r.receive_rate_mbps,
                    one_way_delay_ms: r.one_way_delay_ms,
                    rtt: SimDuration::from_secs_f64((r.rtt_ms / 1000.0).max(0.001)),
                    fec_recovered_fraction: r.fec_recovered_fraction,
                };
                self.controller.on_report(&fb);
                // SFU-provided ceiling (Meet REMB): never encode more than
                // the most demanding subscriber can take.
                if let Some(remb) = r.remb_mbps {
                    if let Controller::Gcc(_) = self.controller {
                        self.controller.set_bounds(0.05, remb.clamp(0.1, 0.96));
                    }
                }
                if self.tel.enabled() {
                    let state = self.controller.state_name();
                    let signal = self.controller.signal_name();
                    let key = (state, signal.unwrap_or(""));
                    if self.tel_cc != Some(key) {
                        self.tel_cc = Some(key);
                        let client = self.index as u64;
                        let controller = self.controller.name();
                        let target_mbps = self.controller.target_mbps();
                        self.tel.emit(ctx.now, || EventKind::CcState {
                            client,
                            controller,
                            state,
                            signal,
                            target_mbps,
                        });
                    }
                }
            }
            RtcpPacket::Nack { .. } => {
                // Retransmissions are handled at the SFU (which owns the
                // egress sequence space); a client never serves NACKs.
            }
            RtcpPacket::Fir { ssrc, .. } => {
                self.firs_received += 1;
                let (client, fir_ssrc) = (self.index as u64, *ssrc as u64);
                self.tel.emit(ctx.now, || EventKind::Fir {
                    client,
                    ssrc: fir_ssrc,
                    dir: "received",
                });
                let base = Self::ssrc_base(self.index);
                let idx = ssrc.saturating_sub(base) as usize;
                if let Some(src) = self.sources.get_mut(idx) {
                    src.request_keyframe();
                }
            }
        }
    }

    /// Total frames decoded from remote sender `sender`.
    pub fn frames_decoded_from(&self, sender: u32) -> u64 {
        self.render
            .get(&sender)
            .map(|r| r.frames_total)
            .unwrap_or(0)
    }

    /// Freeze detector of the primary rendered remote, if any.
    pub fn primary_freeze(&self) -> Option<&FreezeDetector> {
        self.render
            .keys()
            .copied()
            .filter(|&s| s != self.index)
            .min()
            .map(|p| &self.render[&p].freeze)
    }

    /// Call duration so far at time `now`.
    pub fn call_duration(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.started_at)
    }
}

#[cfg(feature = "testkit-checks")]
impl VcaClient {
    /// Invariant violations recorded by this client's RTP receivers
    /// (duplicate delivery, acausal arrival), ordered by SSRC.
    pub fn audit_violations(&self) -> Vec<vcabench_simcore::Violation> {
        let mut ssrcs: Vec<u32> = self.recv.keys().copied().collect();
        ssrcs.sort_unstable();
        ssrcs
            .into_iter()
            .flat_map(|s| self.recv[&s].rtp.audit_violations().to_vec())
            .collect()
    }

    /// Total invariant checks performed by this client's RTP receivers.
    pub fn audit_checks(&self) -> u64 {
        self.recv.values().map(|r| r.rtp.audit_checks()).sum()
    }
}

impl Agent<Wire> for VcaClient {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.join_at > ctx.now {
            ctx.set_timer_at(self.join_at, TIMER_BOOT);
            return;
        }
        self.boot(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        if ctx.now < self.join_at {
            return;
        }
        match &pkt.payload {
            Wire::Rtp(rtp) => {
                let rtp = rtp.clone();
                self.on_rtp(ctx, &pkt, &rtp);
            }
            Wire::Rtcp(rtcp) => {
                let rtcp = *rtcp;
                self.on_rtcp(ctx, &rtcp);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, timer: u64) {
        match timer {
            TIMER_BOOT => self.boot(ctx),
            TIMER_RTCP => self.send_receiver_report(ctx),
            TIMER_PACE => self.pace_one(ctx),
            TIMER_AUDIO => self.emit_audio(ctx),
            TIMER_STATS => self.sample_stats(ctx),
            TIMER_REPLAN => {
                self.replan(ctx);
                ctx.set_timer_after(TICK, TIMER_REPLAN);
            }
            t if t >= TIMER_FRAME_BASE => self.emit_frame(ctx, (t - TIMER_FRAME_BASE) as usize),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl VcaClient {
    fn boot(&mut self, ctx: &mut Ctx<'_, Wire>) {
        self.started_at = ctx.now;
        let pinned = match self.mode {
            ViewMode::Gallery => None,
            ViewMode::Speaker(p) => Some(p),
        };
        ctx.send(
            self.uplink_flow,
            self.server,
            80,
            Wire::Signal(SignalMsg::Layout { pinned }),
        );
        self.replan(ctx);
        ctx.set_timer_after(TICK, TIMER_RTCP);
        ctx.set_timer_after(AUDIO_INTERVAL, TIMER_AUDIO);
        ctx.set_timer_after(SimDuration::from_secs(1), TIMER_STATS);
        ctx.set_timer_after(TICK, TIMER_REPLAN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssrc_mapping_round_trips() {
        for idx in 0..32u32 {
            let base = VcaClient::ssrc_base(idx);
            // Every stream ssrc (media, fec, audio) maps back to its sender.
            for off in [0, 1, 2, 99, 500] {
                assert_eq!(VcaClient::sender_of(base + off), idx, "offset {off}");
            }
        }
        // Server-generated FEC ssrcs (< 1000) have no sender.
        assert_eq!(VcaClient::sender_of(100), u32::MAX);
        assert_eq!(VcaClient::sender_of(0), u32::MAX);
    }

    #[test]
    fn controller_kind_matches_vca() {
        let mut rng = SimRng::seed_from_u64(1);
        let server = vcabench_netsim::NodeId(9);
        let mk = |kind, rng: &mut SimRng| {
            VcaClient::new(
                kind,
                0,
                server,
                vcabench_netsim::FlowId(1),
                ViewMode::Gallery,
                rng,
            )
        };
        assert!(matches!(
            mk(VcaKind::Meet, &mut rng).controller,
            Controller::Gcc(_)
        ));
        assert!(matches!(
            mk(VcaKind::Zoom, &mut rng).controller,
            Controller::Fbra(_)
        ));
        assert!(matches!(
            mk(VcaKind::ZoomChrome, &mut rng).controller,
            Controller::Fbra(_)
        ));
        assert!(matches!(
            mk(VcaKind::Teams, &mut rng).controller,
            Controller::Teams(_)
        ));
        assert!(matches!(
            mk(VcaKind::TeamsChrome, &mut rng).controller,
            Controller::Teams(_)
        ));
    }

    #[test]
    fn join_delay_is_stored() {
        let mut rng = SimRng::seed_from_u64(1);
        let c = VcaClient::new(
            VcaKind::Meet,
            0,
            vcabench_netsim::NodeId(9),
            vcabench_netsim::FlowId(1),
            ViewMode::Gallery,
            &mut rng,
        )
        .with_join_at(SimTime::from_secs(30));
        assert_eq!(c.join_at, SimTime::from_secs(30));
    }

    #[test]
    fn two_clients_same_seed_same_rng_streams() {
        // Client construction forks the experiment RNG by index, so two
        // builds from identical parent state are identical.
        let mut rng_a = SimRng::seed_from_u64(7);
        let mut rng_b = SimRng::seed_from_u64(7);
        let a = VcaClient::new(
            VcaKind::Teams,
            0,
            vcabench_netsim::NodeId(9),
            vcabench_netsim::FlowId(1),
            ViewMode::Gallery,
            &mut rng_a,
        );
        let b = VcaClient::new(
            VcaKind::Teams,
            0,
            vcabench_netsim::NodeId(9),
            vcabench_netsim::FlowId(1),
            ViewMode::Gallery,
            &mut rng_b,
        );
        // Same oscillator phase → same set-point trajectory.
        if let (Controller::Teams(x), Controller::Teams(y)) = (&a.controller, &b.controller) {
            let t = SimTime::from_secs(13);
            assert_eq!(x.setpoint_mbps(t).to_bits(), y.setpoint_mbps(t).to_bits());
        } else {
            unreachable!();
        }
    }
}
