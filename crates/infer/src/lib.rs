//! # vcabench-infer — passive QoE inference from packet traces
//!
//! The paper measures video-conferencing QoE from the inside
//! (`webrtc-internals`, per-second stats APIs). This crate asks how much
//! of that an *on-path network observer* can recover from encrypted
//! packet headers alone — timestamps, sizes, and loss — and answers it
//! with a streaming inference pipeline validated against the simulator's
//! own ground-truth stats:
//!
//! 1. **Features** ([`features`]): a single-pass [`Extractor`] per tap
//!    (`link` × `flow` × [`Vantage`]) folds packet events into per-second
//!    [`WindowFeatures`] — byte/packet counts by size class, inferred
//!    frame boundaries (marker packets), and a replica of the
//!    receive-side freeze rule driven by inferred decodable frames. It
//!    implements [`vcabench_telemetry::Recorder`], so it runs online
//!    during a simulation or offline over an exported `.events.jsonl`
//!    trace with identical results.
//! 2. **Estimators** ([`estimator`], [`model`]): the [`Estimator`] trait
//!    maps window features to bitrate/FPS/freeze estimates. The
//!    [`HeuristicEstimator`] is training-free; the [`LinearModel`] is a
//!    ridge-calibrated correction (fit from campaign runs, frozen as a
//!    versioned JSON artifact) that learns the FEC discount a passive
//!    observer cannot see directly.
//! 3. **Validation** (in `vcabench-harness::infer` and `repro infer`):
//!    campaigns run with taps attached, estimates are joined per window
//!    against `stats_api` ground truth, and the accuracy report (error
//!    CDFs, freeze precision/recall) gates CI.

pub mod estimator;
pub mod features;
pub mod model;

pub use estimator::{Estimator, HeuristicEstimator, WindowEstimate};
pub use features::{
    Extractor, TapBank, TapSpec, Vantage, WindowFeatures, AUDIO_WIRE, FULL_WIRE, HEADER_BYTES,
    VIDEO_MIN_WIRE,
};
pub use model::{
    feature_vector, KindModels, LinearModel, FEATURE_NAMES, KIND_MODEL_SCHEMA, MODEL_SCHEMA,
    NUM_FEATURES,
};
