//! # vcabench-infer — passive QoE inference from packet traces
//!
//! The paper measures video-conferencing QoE from the inside
//! (`webrtc-internals`, per-second stats APIs). This crate asks how much
//! of that an *on-path network observer* can recover from encrypted
//! packet headers alone — timestamps, sizes, and loss — and answers it
//! with a streaming inference pipeline validated against the simulator's
//! own ground-truth stats:
//!
//! 1. **Features** ([`features`]): a single-pass [`Extractor`] per tap
//!    (`link` × `flow` × [`Vantage`]) folds packet events into per-second
//!    [`WindowFeatures`] — byte/packet counts by size class, inferred
//!    frame boundaries (marker packets), and a replica of the
//!    receive-side freeze rule driven by inferred decodable frames. It
//!    implements [`vcabench_telemetry::Recorder`], so it runs online
//!    during a simulation or offline over an exported `.events.jsonl`
//!    trace with identical results.
//! 2. **Estimators** ([`estimator`], [`model`], [`gbt`]): the
//!    [`Estimator`] trait maps window features to bitrate/FPS/freeze
//!    estimates. The [`HeuristicEstimator`] is training-free; the
//!    [`LinearModel`] is a ridge-calibrated correction that spreads one
//!    global FEC discount; the [`GbtModel`] is a gradient-boosted tree
//!    ensemble over richer features (inter-arrival CV, size moments,
//!    burst structure, lagged context) that learns *regime-dependent*
//!    discounts a linear function cannot express. Trained models freeze
//!    as schema-versioned JSON artifacts resolved through the
//!    [`ModelRegistry`] ([`registry`]).
//! 3. **Validation** (in `vcabench-harness::infer` and `repro infer`):
//!    campaigns run with taps attached, estimates are joined per window
//!    against `stats_api` ground truth, and the accuracy report (error
//!    CDFs, freeze precision/recall) gates CI.

pub mod estimator;
pub mod features;
pub mod gbt;
pub mod model;
pub mod registry;

pub use estimator::{Estimator, HeuristicEstimator, WindowEstimate};
pub use features::{
    Extractor, TapBank, TapSpec, Vantage, WindowFeatures, AUDIO_WIRE, FULL_WIRE, HEADER_BYTES,
    ROLL_WINDOWS, VIDEO_MIN_WIRE,
};
pub use gbt::{
    gbt_feature_vector, GbtModel, GbtParams, GBT_FEATURE_NAMES, GBT_MODEL_SCHEMA, NUM_GBT_FEATURES,
};
pub use model::{
    feature_vector, KindModels, LinearModel, FEATURE_NAMES, KIND_MODEL_SCHEMA, MODEL_SCHEMA,
    NUM_FEATURES,
};
pub use registry::{ModelEntry, ModelRegistry, ESTIMATOR_NAMES};
