//! Gradient-boosted regression trees over the richer window features.
//!
//! The linear model ([`crate::model`]) spreads one global FEC discount
//! across every window: it helps Zoom but taxes the FEC-light senders,
//! because a *linear* function of per-window features cannot express
//! "discount only when the traffic looks FEC-elevated". Regression trees
//! can — a split on `full_fraction` (or on the rolling context fields)
//! partitions windows into FEC regimes and fits each side separately,
//! which is exactly the tree-ensemble approach of Sharma et al.
//! ("Estimating WebRTC Video QoE Metrics Without Using Application
//! Headers") applied to this simulator's passive taps.
//!
//! Everything here is dependency-free and deterministic: least-squares
//! boosting with greedy depth-limited splits, candidate thresholds at
//! sorted-value midpoints, `total_cmp` ordering with index tie-breaks,
//! and no randomness anywhere — refitting on the same rows reproduces
//! the committed artifact byte for byte. Models freeze to a
//! schema-versioned JSON artifact ([`GBT_MODEL_SCHEMA`]) committed at
//! `crates/infer/models/gbt-v1.json` and loaded through the
//! [`crate::ModelRegistry`].

use serde_json::{Map, Value};

use crate::estimator::{Estimator, WindowEstimate};
use crate::features::WindowFeatures;

/// Schema tag of the GBT model artifact.
pub const GBT_MODEL_SCHEMA: &str = "vcabench-infer-gbt/v1";

/// Number of input features the GBT sees.
pub const NUM_GBT_FEATURES: usize = 17;

/// Feature names, in the order [`gbt_feature_vector`] produces them.
/// Part of the artifact schema: a loaded model must list exactly these.
pub const GBT_FEATURE_NAMES: [&str; NUM_GBT_FEATURES] = [
    "video_mbps",
    "video_full_mbps",
    "full_fraction",
    "frames",
    "frames_decodable",
    "video_pkts",
    "small_pkts",
    "mean_video_kb",
    "video_std_kb",
    "iat_mean_ms",
    "iat_cv",
    "burst_max",
    "pkts_per_frame",
    "lag1_video_mbps",
    "lag1_full_fraction",
    "roll_video_mbps",
    "roll_full_fraction",
];

/// The GBT input vector for one window: the linear model's six features
/// plus the second-order in-window structure and the lagged/rolling
/// context (see [`WindowFeatures`]).
pub fn gbt_feature_vector(w: &WindowFeatures) -> [f64; NUM_GBT_FEATURES] {
    let video_mbps = w.video_mbps();
    let pkts_per_frame = if w.frames == 0 {
        0.0
    } else {
        w.video_pkts as f64 / w.frames as f64
    };
    [
        video_mbps,
        video_mbps * w.full_fraction(),
        w.full_fraction(),
        w.frames as f64,
        w.frames_decodable as f64,
        w.video_pkts as f64,
        w.small_pkts as f64,
        w.mean_video_payload() * 1e-3,
        w.video_payload_std() * 1e-3,
        w.iat_mean_s() * 1e3,
        w.iat_cv(),
        w.burst_max as f64,
        pkts_per_frame,
        w.lag1_video_mbps,
        w.lag1_full_fraction,
        w.roll_video_mbps,
        w.roll_full_fraction,
    ]
}

/// Boosting hyperparameters, recorded in the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GbtParams {
    /// Boosting rounds per target.
    pub trees: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage applied to every leaf value at fit time.
    pub learning_rate: f64,
    /// Minimum training rows on each side of a split.
    pub min_leaf: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            trees: 60,
            max_depth: 3,
            learning_rate: 0.15,
            min_leaf: 8,
        }
    }
}

/// One node of a flattened regression tree. Interior nodes route
/// `x[feature] <= threshold` to `left`, else `right`; leaves carry the
/// (already shrunk) output in `value` with `feature == -1`.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Feature index to split on, or `-1` for a leaf.
    pub feature: i64,
    /// Split threshold (unused on leaves).
    pub threshold: f64,
    /// Child for `x[feature] <= threshold` (unused on leaves).
    pub left: usize,
    /// Child for `x[feature] > threshold` (unused on leaves).
    pub right: usize,
    /// Leaf output (unused on interior nodes).
    pub value: f64,
}

/// A flattened regression tree; children always sit at higher indices
/// than their parent, so traversal terminates by construction (and the
/// artifact loader rejects anything else).
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Nodes in preorder; index 0 is the root.
    pub nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict(&self, x: &[f64; NUM_GBT_FEATURES]) -> f64 {
        let mut i = 0;
        loop {
            let n = &self.nodes[i];
            if n.feature < 0 {
                return n.value;
            }
            i = if x[n.feature as usize] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }
}

/// One boosted ensemble: `predict(x) = base + Σ tree(x)` (the learning
/// rate is baked into the leaf values at fit time).
#[derive(Debug, Clone, PartialEq)]
pub struct GbtEnsemble {
    /// Weighted mean of the training target (the boosting start point).
    pub base: f64,
    /// Boosted trees, applied additively.
    pub trees: Vec<Tree>,
}

impl GbtEnsemble {
    /// Raw (unclamped) ensemble prediction.
    pub fn predict(&self, x: &[f64; NUM_GBT_FEATURES]) -> f64 {
        let mut y = self.base;
        for t in &self.trees {
            y += t.predict(x);
        }
        y
    }
}

/// Gradient-boosted estimator: one ensemble per target metric,
/// predictions clamped at zero. Freeze verdicts pass through from the
/// replica detector, like every other estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct GbtModel {
    /// Hyperparameters the ensembles were fit with.
    pub params: GbtParams,
    /// Media-bitrate ensemble (Mbps).
    pub bitrate: GbtEnsemble,
    /// Frame-rate ensemble (frames per window).
    pub fps: GbtEnsemble,
}

/// Training rows: `(features, truth, weight)`, weights strictly positive.
type Rows = [([f64; NUM_GBT_FEATURES], f64, f64)];

impl GbtModel {
    /// Fit both targets by least-squares gradient boosting. Like
    /// [`crate::LinearModel::fit`], bitrate rows come from both taps and
    /// FPS rows from the receive side only, with weights chosen by the
    /// caller (the harness uses `1/truth²` for relative error).
    /// Deterministic: fixed row order, `total_cmp` sorts, and index
    /// tie-breaks — no RNG anywhere.
    pub fn fit(bitrate_rows: &Rows, fps_rows: &Rows, params: &GbtParams) -> Option<GbtModel> {
        Some(GbtModel {
            params: params.clone(),
            bitrate: fit_ensemble(bitrate_rows, params)?,
            fps: fit_ensemble(fps_rows, params)?,
        })
    }

    /// The committed model artifact, compiled into the crate (resolved
    /// through the [`crate::ModelRegistry`]).
    pub fn builtin() -> GbtModel {
        crate::ModelRegistry::builtin()
            .gbt("gbt-v1")
            .expect("committed GBT artifact is valid")
    }

    /// Serialize to the versioned artifact format (pretty JSON, fixed
    /// key order — artifacts are diffed and committed). Nodes flatten to
    /// `[feature, threshold, left, right, value]` arrays.
    pub fn to_json(&self) -> String {
        let mut m = Map::new();
        m.insert(
            "schema".to_string(),
            Value::String(GBT_MODEL_SCHEMA.to_string()),
        );
        m.insert(
            "features".to_string(),
            Value::Array(
                GBT_FEATURE_NAMES
                    .iter()
                    .map(|n| Value::String(n.to_string()))
                    .collect(),
            ),
        );
        let mut p = Map::new();
        p.insert("trees".to_string(), Value::U64(self.params.trees as u64));
        p.insert(
            "max_depth".to_string(),
            Value::U64(self.params.max_depth as u64),
        );
        p.insert(
            "learning_rate".to_string(),
            Value::F64(self.params.learning_rate),
        );
        p.insert(
            "min_leaf".to_string(),
            Value::U64(self.params.min_leaf as u64),
        );
        m.insert("params".to_string(), Value::Object(p));
        let ensemble = |e: &GbtEnsemble| {
            let mut o = Map::new();
            o.insert("base".to_string(), Value::F64(e.base));
            o.insert(
                "trees".to_string(),
                Value::Array(
                    e.trees
                        .iter()
                        .map(|t| {
                            Value::Array(
                                t.nodes
                                    .iter()
                                    .map(|n| {
                                        Value::Array(vec![
                                            Value::I64(n.feature),
                                            Value::F64(n.threshold),
                                            Value::U64(n.left as u64),
                                            Value::U64(n.right as u64),
                                            Value::F64(n.value),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            );
            Value::Object(o)
        };
        m.insert("bitrate".to_string(), ensemble(&self.bitrate));
        m.insert("fps".to_string(), ensemble(&self.fps));
        let mut s = serde_json::to_string_pretty(&Value::Object(m)).expect("serializable model");
        s.push('\n');
        s
    }

    /// Parse and validate an artifact: schema tag, exact feature list,
    /// node shape, and child indices that strictly increase (so every
    /// traversal terminates).
    pub fn from_json(text: &str) -> Result<GbtModel, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("gbt artifact: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("gbt artifact: missing schema tag")?;
        if schema != GBT_MODEL_SCHEMA {
            return Err(format!(
                "gbt artifact: schema `{schema}`, expected `{GBT_MODEL_SCHEMA}`"
            ));
        }
        let features: Vec<&str> = v
            .get("features")
            .and_then(|f| f.as_array())
            .map(|a| a.iter().filter_map(|x| x.as_str()).collect())
            .ok_or("gbt artifact: missing features list")?;
        if features != GBT_FEATURE_NAMES {
            return Err(format!(
                "gbt artifact: feature list {features:?} does not match {GBT_FEATURE_NAMES:?}"
            ));
        }
        let p = v
            .get("params")
            .filter(|p| p.as_object().is_some())
            .ok_or("gbt artifact: missing `params` object")?;
        let pu = |key: &str| -> Result<usize, String> {
            p.get(key)
                .and_then(|x| x.as_u64())
                .map(|x| x as usize)
                .ok_or(format!("gbt artifact: missing `params.{key}`"))
        };
        let params = GbtParams {
            trees: pu("trees")?,
            max_depth: pu("max_depth")?,
            learning_rate: p
                .get("learning_rate")
                .and_then(|x| x.as_f64())
                .ok_or("gbt artifact: missing `params.learning_rate`")?,
            min_leaf: pu("min_leaf")?,
        };
        let ensemble = |key: &str| -> Result<GbtEnsemble, String> {
            let o = v
                .get(key)
                .filter(|e| e.as_object().is_some())
                .ok_or(format!("gbt artifact: missing `{key}` ensemble"))?;
            let base = o
                .get("base")
                .and_then(|b| b.as_f64())
                .ok_or(format!("gbt artifact: `{key}.base` is not a number"))?;
            let trees_v = o
                .get("trees")
                .and_then(|t| t.as_array())
                .ok_or(format!("gbt artifact: missing `{key}.trees`"))?;
            let mut trees = Vec::with_capacity(trees_v.len());
            for (ti, tv) in trees_v.iter().enumerate() {
                let nodes_v = tv
                    .as_array()
                    .ok_or(format!("gbt artifact: `{key}.trees[{ti}]` is not an array"))?;
                if nodes_v.is_empty() {
                    return Err(format!("gbt artifact: `{key}.trees[{ti}]` is empty"));
                }
                let mut nodes = Vec::with_capacity(nodes_v.len());
                for (ni, nv) in nodes_v.iter().enumerate() {
                    let at = format!("{key}.trees[{ti}][{ni}]");
                    let a = nv
                        .as_array()
                        .filter(|a| a.len() == 5)
                        .ok_or(format!("gbt artifact: `{at}` is not a 5-element node"))?;
                    let num = |j: usize| -> Result<f64, String> {
                        a[j].as_f64()
                            .ok_or(format!("gbt artifact: `{at}[{j}]` is not a number"))
                    };
                    let feature = num(0)?;
                    if feature.fract() != 0.0 {
                        return Err(format!("gbt artifact: `{at}[0]` is not an integer"));
                    }
                    let feature = feature as i64;
                    let (left, right) = (num(2)? as usize, num(3)? as usize);
                    if feature >= 0 {
                        if feature as usize >= NUM_GBT_FEATURES {
                            return Err(format!(
                                "gbt artifact: `{at}` splits on feature {feature}, \
                                 only {NUM_GBT_FEATURES} exist"
                            ));
                        }
                        if left <= ni
                            || right <= ni
                            || left >= nodes_v.len()
                            || right >= nodes_v.len()
                        {
                            return Err(format!(
                                "gbt artifact: `{at}` children ({left}, {right}) must lie \
                                 strictly after the node within the tree"
                            ));
                        }
                    } else if feature != -1 {
                        return Err(format!(
                            "gbt artifact: `{at}` feature {feature} (leaves use -1)"
                        ));
                    }
                    nodes.push(TreeNode {
                        feature,
                        threshold: num(1)?,
                        left,
                        right,
                        value: num(4)?,
                    });
                }
                trees.push(Tree { nodes });
            }
            Ok(GbtEnsemble { base, trees })
        };
        Ok(GbtModel {
            params,
            bitrate: ensemble("bitrate")?,
            fps: ensemble("fps")?,
        })
    }
}

impl Estimator for GbtModel {
    fn name(&self) -> &'static str {
        "gbt"
    }

    fn estimate(&self, w: &WindowFeatures) -> WindowEstimate {
        let x = gbt_feature_vector(w);
        WindowEstimate {
            window: w.window,
            media_mbps: self.bitrate.predict(&x).max(0.0),
            fps: self.fps.predict(&x).max(0.0),
            freeze_count: w.freeze_count,
            freeze_time_s: w.freeze_time_s,
        }
    }
}

/// Fit one boosted ensemble on `(x, y, weight)` rows.
fn fit_ensemble(rows: &Rows, params: &GbtParams) -> Option<GbtEnsemble> {
    if rows.is_empty() {
        return None;
    }
    let total_w: f64 = rows.iter().map(|r| r.2).sum();
    if total_w <= 0.0 {
        return None;
    }
    let base = rows.iter().map(|r| r.1 * r.2).sum::<f64>() / total_w;
    let mut residuals: Vec<f64> = rows.iter().map(|r| r.1 - base).collect();
    let all: Vec<usize> = (0..rows.len()).collect();
    let mut trees = Vec::with_capacity(params.trees);
    for _ in 0..params.trees {
        let mut b = Builder {
            rows,
            residuals: &residuals,
            params,
            nodes: Vec::new(),
        };
        b.build(&all, 0);
        let tree = Tree { nodes: b.nodes };
        for (i, r) in residuals.iter_mut().enumerate() {
            *r -= tree.predict(&rows[i].0);
        }
        trees.push(tree);
    }
    Some(GbtEnsemble { base, trees })
}

/// Recursive greedy tree builder over row indices.
struct Builder<'a> {
    rows: &'a Rows,
    residuals: &'a [f64],
    params: &'a GbtParams,
    nodes: Vec<TreeNode>,
}

impl Builder<'_> {
    /// Build the subtree for `idx`, returning its node index (preorder:
    /// a node precedes both children).
    fn build(&mut self, idx: &[usize], depth: usize) -> usize {
        if depth < self.params.max_depth && idx.len() >= 2 * self.params.min_leaf {
            if let Some((feature, threshold)) = self.best_split(idx) {
                let me = self.nodes.len();
                self.nodes.push(TreeNode {
                    feature: feature as i64,
                    threshold,
                    left: 0,
                    right: 0,
                    value: 0.0,
                });
                // Partition preserving row order (determinism).
                let (mut li, mut ri) = (Vec::new(), Vec::new());
                for &i in idx {
                    if self.rows[i].0[feature] <= threshold {
                        li.push(i);
                    } else {
                        ri.push(i);
                    }
                }
                let l = self.build(&li, depth + 1);
                let r = self.build(&ri, depth + 1);
                self.nodes[me].left = l;
                self.nodes[me].right = r;
                return me;
            }
        }
        let mut sw = 0.0;
        let mut swr = 0.0;
        for &i in idx {
            sw += self.rows[i].2;
            swr += self.rows[i].2 * self.residuals[i];
        }
        let me = self.nodes.len();
        self.nodes.push(TreeNode {
            feature: -1,
            threshold: 0.0,
            left: 0,
            right: 0,
            value: if sw > 0.0 {
                self.params.learning_rate * swr / sw
            } else {
                0.0
            },
        });
        me
    }

    /// The split of `idx` with the largest weighted-SSE reduction, or
    /// `None` when no split improves on the leaf. Candidates are
    /// midpoints between distinct consecutive sorted values; ties keep
    /// the earliest feature and lowest threshold (strict `>` on gain).
    fn best_split(&self, idx: &[usize]) -> Option<(usize, f64)> {
        let min_leaf = self.params.min_leaf;
        let mut total_w = 0.0;
        let mut total_wr = 0.0;
        for &i in idx {
            total_w += self.rows[i].2;
            total_wr += self.rows[i].2 * self.residuals[i];
        }
        let no_split = total_wr * total_wr / total_w;
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for feature in 0..NUM_GBT_FEATURES {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_by(|&a, &b| {
                self.rows[a].0[feature]
                    .total_cmp(&self.rows[b].0[feature])
                    .then(a.cmp(&b))
            });
            let mut lw = 0.0;
            let mut lwr = 0.0;
            for k in 0..order.len() - 1 {
                let i = order[k];
                lw += self.rows[i].2;
                lwr += self.rows[i].2 * self.residuals[i];
                let (xa, xb) = (self.rows[i].0[feature], self.rows[order[k + 1]].0[feature]);
                if xa == xb || k + 1 < min_leaf || order.len() - k - 1 < min_leaf {
                    continue;
                }
                let (rw, rwr) = (total_w - lw, total_wr - lwr);
                if lw <= 0.0 || rw <= 0.0 {
                    continue;
                }
                let gain = lwr * lwr / lw + rwr * rwr / rw - no_split;
                if gain > best.map_or(1e-12, |b| b.0) {
                    best = Some((gain, feature, 0.5 * (xa + xb)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic windows spanning FEC-free and FEC-heavy regimes.
    fn synthetic_rows() -> Vec<([f64; NUM_GBT_FEATURES], f64, f64)> {
        let mut rows = Vec::new();
        for i in 1..=60u64 {
            // FEC-free: partial tails every frame, media == payload.
            let mut w = WindowFeatures {
                window: i,
                video_payload_bytes: 20_000 * i,
                video_pkts: 30 + i,
                full_pkts: (30 + i) * 3 / 4,
                small_pkts: 50,
                frames: 30,
                frames_decodable: 30,
                ..WindowFeatures::default()
            };
            // Relative-error weighting (1/y²), like the harness fit.
            let x = gbt_feature_vector(&w);
            let y = w.video_mbps();
            rows.push((x, y, 1.0 / (y * y)));
            // FEC-heavy: all packets full-sized, media is 60% of payload.
            w.full_pkts = w.video_pkts;
            w.window += 100;
            let x = gbt_feature_vector(&w);
            let y = 0.6 * w.video_mbps();
            rows.push((x, y, 1.0 / (y * y)));
        }
        rows
    }

    #[test]
    fn fit_learns_a_regime_dependent_discount_no_linear_model_can() {
        let rows = synthetic_rows();
        let fps: Vec<_> = rows.iter().map(|(x, _, w)| (*x, 30.0, *w)).collect();
        let m = GbtModel::fit(&rows, &fps, &GbtParams::default()).expect("fit");
        let mut rels: Vec<f64> = rows
            .iter()
            .map(|(x, y, _)| (m.bitrate.predict(x).max(0.0) - y).abs() / y)
            .collect();
        rels.sort_by(f64::total_cmp);
        let median = rels[rels.len() / 2];
        assert!(median < 0.05, "median relative error {median:.3}");
        // The regime separation no linear model can express: mid-range
        // FEC-heavy windows are discounted to ~60% of the payload rate,
        // while FEC-free windows at the same payload rate are not.
        let (fec, free) = (&rows[61], &rows[60]); // i = 31, both regimes
        let fec_ratio = m.bitrate.predict(&fec.0) / (fec.1 / 0.6);
        let free_ratio = m.bitrate.predict(&free.0) / free.1;
        assert!((fec_ratio - 0.6).abs() < 0.1, "fec ratio {fec_ratio:.3}");
        assert!((free_ratio - 1.0).abs() < 0.1, "free ratio {free_ratio:.3}");
        assert_eq!(m.name(), "gbt");
    }

    #[test]
    fn fit_handles_degenerate_inputs() {
        assert!(GbtModel::fit(&[], &[], &GbtParams::default()).is_none());
        // Constant rows: no split ever clears the gain bar, every tree
        // is a single zero-valued leaf, prediction is the base.
        let w = WindowFeatures {
            video_payload_bytes: 100_000,
            video_pkts: 90,
            full_pkts: 60,
            frames: 30,
            frames_decodable: 30,
            ..WindowFeatures::default()
        };
        let x = gbt_feature_vector(&w);
        let rows = vec![(x, 0.8, 1.0); 5];
        let m = GbtModel::fit(&rows, &[(x, 30.0, 1.0)], &GbtParams::default()).expect("fit");
        assert!((m.bitrate.predict(&x) - 0.8).abs() < 1e-9);
        assert!((m.fps.predict(&x) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn artifact_round_trips_with_identical_predictions() {
        let rows = synthetic_rows();
        let fps: Vec<_> = rows.iter().map(|(x, _, w)| (*x, 30.0, *w)).collect();
        let m = GbtModel::fit(&rows, &fps, &GbtParams::default()).expect("fit");
        let text = m.to_json();
        assert!(text.contains("\"schema\": \"vcabench-infer-gbt/v1\""));
        let back = GbtModel::from_json(&text).expect("round trip");
        // Shortest-roundtrip float formatting makes the reload exact.
        for (x, _, _) in &rows {
            assert_eq!(m.bitrate.predict(x), back.bitrate.predict(x));
            assert_eq!(m.fps.predict(x), back.fps.predict(x));
        }
        // And re-serializing reproduces the bytes.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn refit_is_byte_identical() {
        let rows = synthetic_rows();
        let fps: Vec<_> = rows.iter().map(|(x, _, w)| (*x, 30.0, *w)).collect();
        let a = GbtModel::fit(&rows, &fps, &GbtParams::default()).expect("fit");
        let b = GbtModel::fit(&rows, &fps, &GbtParams::default()).expect("fit");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn artifact_rejects_bad_schemas_features_and_trees() {
        let rows = synthetic_rows();
        let fps: Vec<_> = rows.iter().map(|(x, _, w)| (*x, 30.0, *w)).collect();
        let m = GbtModel::fit(&rows, &fps, &GbtParams::default()).expect("fit");
        let text = m.to_json();
        let bad = text.replace("gbt/v1", "gbt/v9");
        assert!(GbtModel::from_json(&bad).unwrap_err().contains("schema"));
        let bad = text.replace("iat_cv", "cv_iat");
        assert!(GbtModel::from_json(&bad)
            .unwrap_err()
            .contains("feature list"));
        assert!(GbtModel::from_json("{\"schema\":\"vcabench-infer-gbt/v1\"}").is_err());
        // A cyclic tree (child index not past the parent) is rejected.
        let cyclic = "{\"schema\":\"vcabench-infer-gbt/v1\",\
             \"features\":[\"video_mbps\",\"video_full_mbps\",\"full_fraction\",\
             \"frames\",\"frames_decodable\",\"video_pkts\",\"small_pkts\",\
             \"mean_video_kb\",\"video_std_kb\",\"iat_mean_ms\",\"iat_cv\",\
             \"burst_max\",\"pkts_per_frame\",\"lag1_video_mbps\",\
             \"lag1_full_fraction\",\"roll_video_mbps\",\"roll_full_fraction\"],\
             \"params\":{\"trees\":1,\"max_depth\":1,\"learning_rate\":0.1,\"min_leaf\":1},\
             \"bitrate\":{\"base\":0,\"trees\":[[[0,1.0,0,0,0.0]]]},\
             \"fps\":{\"base\":0,\"trees\":[]}}";
        assert!(GbtModel::from_json(cyclic)
            .unwrap_err()
            .contains("strictly after"));
    }

    #[test]
    fn builtin_artifact_loads_and_tracks_fec_free_traffic() {
        let m = GbtModel::builtin();
        assert!(!m.bitrate.trees.is_empty());
        assert!(!m.fps.trees.is_empty());
        assert!(m.params.trees >= m.bitrate.trees.len());
    }
}
