//! Name-indexed registry of frozen model artifacts.
//!
//! Every trained model in the workspace freezes to a schema-versioned
//! JSON artifact committed next to its crate. The registry is the one
//! place that maps an artifact *name* (`linear-v1`, `gbt-v1`, …) to its
//! embedded JSON and expected schema tag, replacing the ad-hoc
//! `include_str!` scattered through consumers: lookups fail loudly on
//! unknown names (listing what exists) and on artifacts whose embedded
//! schema tag disagrees with the registration — the two error paths a
//! stale or mis-registered artifact can take.
//!
//! Crates outside `vcabench-infer` register their own artifacts on top
//! of [`ModelRegistry::builtin`] (the fingerprint crate adds its
//! centroid model this way), so one registry instance can resolve the
//! whole model surface of a binary.

use crate::estimator::{Estimator, HeuristicEstimator};
use crate::gbt::{GbtModel, GBT_MODEL_SCHEMA};
use crate::model::{KindModels, LinearModel, KIND_MODEL_SCHEMA, MODEL_SCHEMA};

/// One registered artifact: a stable name, the schema tag its JSON must
/// carry, and the embedded artifact text.
#[derive(Debug, Clone, Copy)]
pub struct ModelEntry {
    /// Registry name (conventionally `<model>-v<version>`, matching the
    /// committed file stem).
    pub name: &'static str,
    /// Schema tag the artifact's `schema` field must equal.
    pub schema: &'static str,
    /// The artifact JSON, compiled in via `include_str!`.
    pub json: &'static str,
}

/// The estimator names [`ModelRegistry::estimator`] resolves.
pub const ESTIMATOR_NAMES: [&str; 3] = ["heuristic", "linear", "gbt"];

/// Registry of frozen model artifacts, resolved by name.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
}

impl ModelRegistry {
    /// The artifacts committed in this crate: `linear-v1`,
    /// `linear-kinds-v1`, and `gbt-v1`.
    pub fn builtin() -> ModelRegistry {
        ModelRegistry {
            entries: vec![
                ModelEntry {
                    name: "linear-v1",
                    schema: MODEL_SCHEMA,
                    json: include_str!("../models/linear-v1.json"),
                },
                ModelEntry {
                    name: "linear-kinds-v1",
                    schema: KIND_MODEL_SCHEMA,
                    json: include_str!("../models/linear-kinds-v1.json"),
                },
                ModelEntry {
                    name: "gbt-v1",
                    schema: GBT_MODEL_SCHEMA,
                    json: include_str!("../models/gbt-v1.json"),
                },
            ],
        }
    }

    /// Add an artifact (e.g. another crate's committed model). Replaces
    /// any existing entry with the same name.
    pub fn register(&mut self, entry: ModelEntry) {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
    }

    /// Registered artifact names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    fn entry(&self, name: &str) -> Result<&ModelEntry, String> {
        self.entries.iter().find(|e| e.name == name).ok_or_else(|| {
            format!(
                "model registry: unknown artifact `{name}` (registered: {})",
                self.names().join(", ")
            )
        })
    }

    /// The raw JSON of an artifact, after checking that its embedded
    /// `schema` field matches the registered schema tag.
    pub fn raw_json(&self, name: &str) -> Result<&'static str, String> {
        let entry = self.entry(name)?;
        let v: serde_json::Value = serde_json::from_str(entry.json)
            .map_err(|e| format!("model registry: artifact `{name}` is not JSON: {e}"))?;
        let tag = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or_else(|| format!("model registry: artifact `{name}` has no schema tag"))?;
        if tag != entry.schema {
            return Err(format!(
                "model registry: artifact `{name}` carries schema `{tag}`, \
                 registered as `{}`",
                entry.schema
            ));
        }
        Ok(entry.json)
    }

    /// Load an artifact as a [`LinearModel`].
    pub fn linear(&self, name: &str) -> Result<LinearModel, String> {
        LinearModel::from_json(self.raw_json(name)?)
    }

    /// Load an artifact as a per-kind [`KindModels`] bundle.
    pub fn kinds(&self, name: &str) -> Result<KindModels, String> {
        KindModels::from_json(self.raw_json(name)?)
    }

    /// Load an artifact as a [`GbtModel`].
    pub fn gbt(&self, name: &str) -> Result<GbtModel, String> {
        GbtModel::from_json(self.raw_json(name)?)
    }

    /// Resolve an *estimator* name to a ready estimator: `heuristic`
    /// (training-free), `linear` (the `linear-v1` artifact), or `gbt`
    /// (the `gbt-v1` artifact). This is the single lookup behind the
    /// CLI's `--estimator` flag.
    pub fn estimator(&self, name: &str) -> Result<Box<dyn Estimator>, String> {
        match name {
            "heuristic" => Ok(Box::new(HeuristicEstimator)),
            "linear" => Ok(Box::new(self.linear("linear-v1")?)),
            "gbt" => Ok(Box::new(self.gbt("gbt-v1")?)),
            other => Err(format!(
                "model registry: unknown estimator `{other}` (expected one of {})",
                ESTIMATOR_NAMES.join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_entries_resolve_to_typed_models() {
        let reg = ModelRegistry::builtin();
        assert_eq!(reg.names(), vec!["linear-v1", "linear-kinds-v1", "gbt-v1"]);
        reg.linear("linear-v1").expect("linear artifact");
        reg.kinds("linear-kinds-v1").expect("kinds artifact");
        reg.gbt("gbt-v1").expect("gbt artifact");
    }

    #[test]
    fn unknown_names_list_what_exists() {
        let reg = ModelRegistry::builtin();
        let err = reg.raw_json("resnet-v1").unwrap_err();
        assert!(err.contains("unknown artifact `resnet-v1`"), "{err}");
        assert!(err.contains("linear-v1"), "error lists registered: {err}");
        let err = reg.estimator("transformer").err().expect("unknown name");
        assert!(err.contains("unknown estimator"), "{err}");
        assert!(err.contains("heuristic, linear, gbt"), "{err}");
    }

    #[test]
    fn version_mismatch_is_rejected_at_lookup() {
        let mut reg = ModelRegistry::builtin();
        // Register the linear artifact under a schema tag it does not
        // carry: the version-mismatch path.
        reg.register(ModelEntry {
            name: "stale-v2",
            schema: "vcabench-infer-linear/v2",
            json: include_str!("../models/linear-v1.json"),
        });
        let err = reg.raw_json("stale-v2").unwrap_err();
        assert!(err.contains("carries schema"), "{err}");
        assert!(err.contains("vcabench-infer-linear/v1"), "{err}");
    }

    #[test]
    fn cross_type_loads_fail_with_schema_errors() {
        let reg = ModelRegistry::builtin();
        // Asking for the wrong *type* of a valid artifact fails in the
        // typed loader's own schema check.
        assert!(reg.linear("gbt-v1").unwrap_err().contains("schema"));
        assert!(reg.gbt("linear-v1").unwrap_err().contains("schema"));
    }

    #[test]
    fn estimator_names_resolve() {
        let reg = ModelRegistry::builtin();
        for name in ESTIMATOR_NAMES {
            let est = reg.estimator(name).expect("estimator resolves");
            assert_eq!(
                est.name(),
                if name == "linear" { "calibrated" } else { name }
            );
        }
    }

    #[test]
    fn register_replaces_same_name() {
        let mut reg = ModelRegistry::builtin();
        let n = reg.names().len();
        reg.register(ModelEntry {
            name: "gbt-v1",
            schema: GBT_MODEL_SCHEMA,
            json: include_str!("../models/gbt-v1.json"),
        });
        assert_eq!(reg.names().len(), n);
    }
}
