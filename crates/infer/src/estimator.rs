//! Pluggable per-window QoE estimators.
//!
//! An [`Estimator`] maps the passive [`WindowFeatures`] of one window to a
//! [`WindowEstimate`] of the application-layer metrics the paper reads
//! from `webrtc-internals`: media bitrate, frame rate, and freezes. Two
//! implementations ship:
//!
//! - [`HeuristicEstimator`] — closed-form rules with no training: video
//!   payload rate as the bitrate, inferred decodable frames as the FPS,
//!   the freeze replica's verdicts passed through. It over-reads the
//!   bitrate of FEC-heavy senders (Zoom ships up to 2× the media rate in
//!   parity packets that a passive observer cannot distinguish).
//! - [`crate::LinearModel`] — a calibrated linear correction fit against
//!   ground-truth stats from campaign runs, which learns the FEC
//!   discount from the full-packet fraction (see [`crate::model`]).

use crate::features::WindowFeatures;

/// Estimated application-layer metrics for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEstimate {
    /// Window index (copied from the features).
    pub window: u64,
    /// Estimated media bitrate, Mbps.
    pub media_mbps: f64,
    /// Estimated decoded-frame rate, frames per window.
    pub fps: f64,
    /// Freezes inferred in this window.
    pub freeze_count: u64,
    /// Inferred freeze time, seconds.
    pub freeze_time_s: f64,
}

/// A per-window estimator. Implementations must be pure functions of the
/// features — the validation harness relies on byte-identical reports
/// across worker counts.
pub trait Estimator {
    /// Stable name used in reports.
    fn name(&self) -> &'static str;
    /// Estimate one window.
    fn estimate(&self, w: &WindowFeatures) -> WindowEstimate;
}

/// Training-free burst/marker heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicEstimator;

impl Estimator for HeuristicEstimator {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn estimate(&self, w: &WindowFeatures) -> WindowEstimate {
        WindowEstimate {
            window: w.window,
            media_mbps: w.video_mbps(),
            fps: w.frames_decodable as f64,
            freeze_count: w.freeze_count,
            freeze_time_s: w.freeze_time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_reads_features_directly() {
        let w = WindowFeatures {
            window: 7,
            video_payload_bytes: 125_000, // 1 Mbps over 1 s
            video_pkts: 120,
            full_pkts: 100,
            frames: 32,
            frames_decodable: 30,
            freeze_count: 1,
            freeze_time_s: 0.4,
            ..WindowFeatures::default()
        };
        let e = HeuristicEstimator.estimate(&w);
        assert_eq!(e.window, 7);
        assert!((e.media_mbps - 1.0).abs() < 1e-12);
        assert_eq!(e.fps, 30.0);
        assert_eq!(e.freeze_count, 1);
        assert!((e.freeze_time_s - 0.4).abs() < 1e-12);
        assert_eq!(HeuristicEstimator.name(), "heuristic");
    }
}
