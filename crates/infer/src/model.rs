//! Calibrated linear estimator with a versioned JSON model artifact.
//!
//! The heuristic estimator's one systematic error is FEC: parity packets
//! are full-sized video packets on the wire, indistinguishable from media
//! without decrypting, so FEC-heavy senders (Zoom runs up to 2× parity
//! per media byte) read up to 3× high. A small ridge regression fixes
//! this: alongside the raw video rate it sees `video_mbps ×
//! full_fraction` — the share of the rate carried in full-sized packets,
//! which is where all the parity lives — letting the fit discount
//! exactly the FEC-shaped part of the traffic while staying near-identity
//! for FEC-light senders.
//!
//! Models are fit offline from campaign runs joined against ground-truth
//! stats (`repro infer --fit`), then frozen as a schema-versioned JSON
//! artifact. The artifact committed at `crates/infer/models/linear-v1.json`
//! is compiled in via [`LinearModel::builtin`]; loading rejects unknown
//! schema tags or reordered feature lists, so a stale artifact fails
//! loudly instead of silently mis-predicting.

use serde_json::{Map, Value};

use crate::estimator::{Estimator, WindowEstimate};
use crate::features::WindowFeatures;

/// Schema tag of the model artifact.
pub const MODEL_SCHEMA: &str = "vcabench-infer-linear/v1";

/// Number of input features (excluding the intercept).
pub const NUM_FEATURES: usize = 6;

/// Feature names, in the order [`feature_vector`] produces them. Part of
/// the artifact schema: a loaded model must list exactly these.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "video_mbps",
    "video_full_mbps",
    "frames",
    "video_pkts",
    "small_pkts",
    "mean_video_kb",
];

/// The model's input vector for one window.
pub fn feature_vector(w: &WindowFeatures) -> [f64; NUM_FEATURES] {
    let video_mbps = w.video_mbps();
    [
        video_mbps,
        video_mbps * w.full_fraction(),
        w.frames as f64,
        w.video_pkts as f64,
        w.small_pkts as f64,
        w.mean_video_payload() * 1e-3,
    ]
}

/// A linear model per target metric: `y = w[0] + Σ w[i+1]·x[i]`,
/// predictions clamped at zero. Freeze verdicts pass through from the
/// replica detector — they are event-level, not regressable per window.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Bitrate weights (intercept first, then [`FEATURE_NAMES`] order).
    pub bitrate: [f64; NUM_FEATURES + 1],
    /// FPS weights, same layout.
    pub fps: [f64; NUM_FEATURES + 1],
}

fn predict(weights: &[f64; NUM_FEATURES + 1], x: &[f64; NUM_FEATURES]) -> f64 {
    let mut y = weights[0];
    for i in 0..NUM_FEATURES {
        y += weights[i + 1] * x[i];
    }
    y.max(0.0)
}

impl LinearModel {
    /// Fit both targets by weighted ridge regression. Each target gets
    /// its own `(features, truth, weight)` training rows — the bitrate
    /// trains on send and receive taps alike, while FPS truth (decoded
    /// frames) only exists at the receive side. Weights let the caller
    /// minimize *relative* rather than absolute error (weight `1/y²`),
    /// so a 2.5 Mbps Teams window doesn't outvote ten 0.3 Mbps shaped
    /// ones. `ridge` is added to the diagonal of the normal equations
    /// (intercept excluded), keeping the solve well-posed when features
    /// are collinear (e.g. an all-FEC-free training set). Deterministic:
    /// plain f64 arithmetic over the rows in order.
    pub fn fit(
        bitrate_rows: &[([f64; NUM_FEATURES], f64, f64)],
        fps_rows: &[([f64; NUM_FEATURES], f64, f64)],
        ridge: f64,
    ) -> Option<LinearModel> {
        Some(LinearModel {
            bitrate: fit_one(bitrate_rows, ridge)?,
            fps: fit_one(fps_rows, ridge)?,
        })
    }

    /// The committed model artifact, compiled into the crate (resolved
    /// through the [`crate::ModelRegistry`]).
    pub fn builtin() -> LinearModel {
        crate::ModelRegistry::builtin()
            .linear("linear-v1")
            .expect("committed model artifact is valid")
    }

    /// Serialize to the versioned artifact format (pretty JSON, fixed key
    /// order — artifacts are diffed and committed).
    pub fn to_json(&self) -> String {
        let mut m = Map::new();
        m.insert(
            "schema".to_string(),
            Value::String(MODEL_SCHEMA.to_string()),
        );
        m.insert(
            "features".to_string(),
            Value::Array(
                FEATURE_NAMES
                    .iter()
                    .map(|n| Value::String(n.to_string()))
                    .collect(),
            ),
        );
        let arr = |w: &[f64]| Value::Array(w.iter().map(|&v| Value::F64(v)).collect());
        m.insert("bitrate".to_string(), arr(&self.bitrate));
        m.insert("fps".to_string(), arr(&self.fps));
        let mut s = serde_json::to_string_pretty(&Value::Object(m)).expect("serializable model");
        s.push('\n');
        s
    }

    /// Parse and validate an artifact.
    pub fn from_json(text: &str) -> Result<LinearModel, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("model artifact: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("model artifact: missing schema tag")?;
        if schema != MODEL_SCHEMA {
            return Err(format!(
                "model artifact: schema `{schema}`, expected `{MODEL_SCHEMA}`"
            ));
        }
        let features: Vec<&str> = v
            .get("features")
            .and_then(|f| f.as_array())
            .map(|a| a.iter().filter_map(|x| x.as_str()).collect())
            .ok_or("model artifact: missing features list")?;
        if features != FEATURE_NAMES {
            return Err(format!(
                "model artifact: feature list {features:?} does not match {FEATURE_NAMES:?}"
            ));
        }
        let weights = |key: &str| -> Result<[f64; NUM_FEATURES + 1], String> {
            let arr = v
                .get(key)
                .and_then(|w| w.as_array())
                .ok_or(format!("model artifact: missing `{key}` weights"))?;
            if arr.len() != NUM_FEATURES + 1 {
                return Err(format!(
                    "model artifact: `{key}` has {} weights, expected {}",
                    arr.len(),
                    NUM_FEATURES + 1
                ));
            }
            let mut out = [0.0; NUM_FEATURES + 1];
            for (i, x) in arr.iter().enumerate() {
                out[i] = x
                    .as_f64()
                    .ok_or(format!("model artifact: `{key}[{i}]` is not a number"))?;
            }
            Ok(out)
        };
        Ok(LinearModel {
            bitrate: weights("bitrate")?,
            fps: weights("fps")?,
        })
    }
}

/// Schema tag of the per-kind model bundle artifact.
pub const KIND_MODEL_SCHEMA: &str = "vcabench-infer-linear-kinds/v1";

/// A bundle of per-application calibrated models, keyed by application
/// family name (`"Meet"`, `"Teams"`, `"Zoom"` — string keys so this
/// crate stays free of the application-model layer).
///
/// One global [`LinearModel`] must average over every sender's FEC
/// habit; a per-kind model can discount exactly its own application's
/// overhead. The flow-level identification stage (`vcabench-fingerprint`)
/// selects which entry to apply — `repro infer --identify` routes each
/// run through the classifier instead of reading the kind from the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct KindModels {
    /// `(family name, model)` pairs, sorted by name (artifact order).
    pub models: Vec<(String, LinearModel)>,
}

impl KindModels {
    /// Build from pairs; keys are sorted for a canonical artifact.
    pub fn new(mut models: Vec<(String, LinearModel)>) -> KindModels {
        models.sort_by(|a, b| a.0.cmp(&b.0));
        KindModels { models }
    }

    /// The model for a family name, if present.
    pub fn get(&self, name: &str) -> Option<&LinearModel> {
        self.models.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// The committed per-kind bundle, compiled into the crate (resolved
    /// through the [`crate::ModelRegistry`]).
    pub fn builtin() -> KindModels {
        crate::ModelRegistry::builtin()
            .kinds("linear-kinds-v1")
            .expect("committed per-kind model artifact is valid")
    }

    /// Serialize to the versioned artifact format (pretty JSON, fixed
    /// key order — artifacts are diffed and committed).
    pub fn to_json(&self) -> String {
        let mut m = Map::new();
        m.insert(
            "schema".to_string(),
            Value::String(KIND_MODEL_SCHEMA.to_string()),
        );
        m.insert(
            "features".to_string(),
            Value::Array(
                FEATURE_NAMES
                    .iter()
                    .map(|n| Value::String(n.to_string()))
                    .collect(),
            ),
        );
        let arr = |w: &[f64]| Value::Array(w.iter().map(|&v| Value::F64(v)).collect());
        let mut kinds = Map::new();
        for (name, model) in &self.models {
            let mut o = Map::new();
            o.insert("bitrate".to_string(), arr(&model.bitrate));
            o.insert("fps".to_string(), arr(&model.fps));
            kinds.insert(name.clone(), Value::Object(o));
        }
        m.insert("kinds".to_string(), Value::Object(kinds));
        let mut s = serde_json::to_string_pretty(&Value::Object(m)).expect("serializable models");
        s.push('\n');
        s
    }

    /// Parse and validate an artifact.
    pub fn from_json(text: &str) -> Result<KindModels, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("kind models: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("kind models: missing schema tag")?;
        if schema != KIND_MODEL_SCHEMA {
            return Err(format!(
                "kind models: schema `{schema}`, expected `{KIND_MODEL_SCHEMA}`"
            ));
        }
        let features: Vec<&str> = v
            .get("features")
            .and_then(|f| f.as_array())
            .map(|a| a.iter().filter_map(|x| x.as_str()).collect())
            .ok_or("kind models: missing features list")?;
        if features != FEATURE_NAMES {
            return Err(format!(
                "kind models: feature list {features:?} does not match {FEATURE_NAMES:?}"
            ));
        }
        let kinds = v
            .get("kinds")
            .and_then(|k| k.as_object())
            .ok_or("kind models: missing `kinds` object")?;
        if kinds.is_empty() {
            return Err("kind models: empty `kinds` object".to_string());
        }
        let weights =
            |o: &Value, name: &str, key: &str| -> Result<[f64; NUM_FEATURES + 1], String> {
                let arr = o
                    .get(key)
                    .and_then(|w| w.as_array())
                    .ok_or(format!("kind models: `{name}` missing `{key}` weights"))?;
                if arr.len() != NUM_FEATURES + 1 {
                    return Err(format!(
                        "kind models: `{name}.{key}` has {} weights, expected {}",
                        arr.len(),
                        NUM_FEATURES + 1
                    ));
                }
                let mut out = [0.0; NUM_FEATURES + 1];
                for (i, x) in arr.iter().enumerate() {
                    out[i] = x
                        .as_f64()
                        .ok_or(format!("kind models: `{name}.{key}[{i}]` is not a number"))?;
                }
                Ok(out)
            };
        let mut models = Vec::new();
        for (name, o) in kinds.iter() {
            models.push((
                name.clone(),
                LinearModel {
                    bitrate: weights(o, name, "bitrate")?,
                    fps: weights(o, name, "fps")?,
                },
            ));
        }
        Ok(KindModels::new(models))
    }
}

/// Normal-equations weighted ridge fit for one target.
fn fit_one(
    rows: &[([f64; NUM_FEATURES], f64, f64)],
    ridge: f64,
) -> Option<[f64; NUM_FEATURES + 1]> {
    if rows.is_empty() {
        return None;
    }
    const N: usize = NUM_FEATURES + 1;
    let mut xtx = [[0.0f64; N]; N];
    let mut xty = [0.0f64; N];
    for (x, y, weight) in rows {
        let mut aug = [1.0f64; N];
        aug[1..].copy_from_slice(x);
        for i in 0..N {
            for j in 0..N {
                xtx[i][j] += weight * aug[i] * aug[j];
            }
            xty[i] += weight * aug[i] * y;
        }
    }
    for (i, row) in xtx.iter_mut().enumerate().skip(1) {
        row[i] += ridge;
    }
    solve(xtx, xty)
}

/// Solve `A·w = b` by Gaussian elimination with partial pivoting
/// (deterministic: ties keep the lowest row). `None` on a singular
/// system.
fn solve(
    mut a: [[f64; NUM_FEATURES + 1]; NUM_FEATURES + 1],
    mut b: [f64; NUM_FEATURES + 1],
) -> Option<[f64; NUM_FEATURES + 1]> {
    const N: usize = NUM_FEATURES + 1;
    for col in 0..N {
        let mut pivot = col;
        for row in col + 1..N {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..N {
            let f = a[row][col] / a[col][col];
            let (head, tail) = a.split_at_mut(row);
            for (cell, &p) in tail[0].iter_mut().zip(head[col].iter()).skip(col) {
                *cell -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = [0.0f64; N];
    for col in (0..N).rev() {
        let mut acc = b[col];
        for k in col + 1..N {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
    }
    Some(w)
}

impl Estimator for LinearModel {
    fn name(&self) -> &'static str {
        "calibrated"
    }

    fn estimate(&self, w: &WindowFeatures) -> WindowEstimate {
        let x = feature_vector(w);
        WindowEstimate {
            window: w.window,
            media_mbps: predict(&self.bitrate, &x),
            fps: predict(&self.fps, &x),
            freeze_count: w.freeze_count,
            freeze_time_s: w.freeze_time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(video_payload: u64, pkts: u64, full: u64, frames: u64) -> WindowFeatures {
        WindowFeatures {
            video_payload_bytes: video_payload,
            video_pkts: pkts,
            full_pkts: full,
            frames,
            frames_decodable: frames,
            ..WindowFeatures::default()
        }
    }

    #[test]
    fn fit_recovers_a_planted_linear_law() {
        // Ground truth: media = 0.5 × video_mbps (a 2× FEC overhead on
        // full packets), fps = frames.
        let mut bitrate_rows = Vec::new();
        let mut fps_rows = Vec::new();
        for i in 1..40u64 {
            let w = window(40_000 * i, 30 + i, 25 + i, 30);
            let x = feature_vector(&w);
            bitrate_rows.push((x, 0.5 * x[0], 1.0));
            fps_rows.push((x, x[2], 1.0));
        }
        let m = LinearModel::fit(&bitrate_rows, &fps_rows, 1e-6).expect("fit");
        for ((x, bitrate, _), (_, fps, _)) in bitrate_rows.iter().zip(fps_rows.iter()) {
            assert!((predict(&m.bitrate, x) - bitrate).abs() < 1e-6);
            assert!((predict(&m.fps, x) - fps).abs() < 1e-6);
        }
        // Prediction clamps below zero.
        let zero = window(0, 0, 0, 0);
        assert!(m.estimate(&zero).media_mbps >= 0.0);
    }

    #[test]
    fn fit_handles_degenerate_inputs() {
        assert!(LinearModel::fit(&[], &[], 1e-6).is_none());
        // A single repeated row is collinear: ridge keeps it solvable.
        let w = window(100_000, 90, 60, 30);
        let rows = vec![(feature_vector(&w), 0.8, 1.0); 5];
        let fps_rows = vec![(feature_vector(&w), 30.0, 1.0); 5];
        let m = LinearModel::fit(&rows, &fps_rows, 1e-3).expect("ridge-regularized fit");
        let e = m.estimate(&w);
        assert!((e.media_mbps - 0.8).abs() < 0.05, "{}", e.media_mbps);
    }

    #[test]
    fn weights_tilt_the_fit() {
        // Two identical feature rows with conflicting targets: weighted
        // least squares settles on the weighted mean.
        let w = window(100_000, 90, 60, 30);
        let x = feature_vector(&w);
        let rows = vec![(x, 1.0, 9.0), (x, 2.0, 1.0)];
        let m = LinearModel::fit(&rows, &[(x, 30.0, 1.0)], 1e-3).expect("fit");
        let e = m.estimate(&w);
        assert!((e.media_mbps - 1.1).abs() < 0.05, "{}", e.media_mbps);
    }

    #[test]
    fn artifact_round_trips_and_rejects_bad_schemas() {
        let m = LinearModel {
            bitrate: [0.01, 0.9, -0.4, 0.0, 0.001, 0.0, 0.02],
            fps: [0.5, 0.0, 0.0, 0.95, 0.0, 0.0, 0.0],
        };
        let text = m.to_json();
        let back = LinearModel::from_json(&text).expect("round trip");
        assert_eq!(m, back);
        assert!(text.contains("\"schema\": \"vcabench-infer-linear/v1\""));
        // Wrong schema tag.
        let bad = text.replace("linear/v1", "linear/v9");
        assert!(LinearModel::from_json(&bad).unwrap_err().contains("schema"));
        // Reordered features.
        let bad = text.replace("video_mbps", "mbps_video");
        assert!(LinearModel::from_json(&bad)
            .unwrap_err()
            .contains("feature list"));
        // Truncated weights.
        assert!(LinearModel::from_json("{\"schema\":\"vcabench-infer-linear/v1\"}").is_err());
    }

    #[test]
    fn builtin_artifact_loads() {
        let m = LinearModel::builtin();
        // The committed model must be near-identity for FEC-free traffic:
        // Meet/Teams-like windows read within a few percent.
        let w = window(125_000, 115, 90, 30); // 1.0 Mbps payload
        let e = m.estimate(&w);
        assert!(
            (e.media_mbps - 1.0).abs() < 0.25,
            "builtin bitrate far off identity: {}",
            e.media_mbps
        );
        assert_eq!(m.name(), "calibrated");
    }
}
