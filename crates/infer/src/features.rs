//! Streaming, single-pass feature extraction from packet-level telemetry.
//!
//! An [`Extractor`] watches one tap — a `(link, flow)` pair plus a
//! [`Vantage`] — and folds the packet events that cross it into per-second
//! [`WindowFeatures`]. It implements [`vcabench_telemetry::Recorder`], so
//! the same code runs *online* (attached to a live simulation through a
//! [`vcabench_telemetry::Telemetry`] handle) and *offline* (fed from an
//! exported `.events.jsonl` trace via
//! [`vcabench_telemetry::replay_jsonl`]); both paths see the identical
//! event stream and therefore produce identical features.
//!
//! Nothing here reads application-layer state: the extractor sees only
//! timestamps, wire sizes, and drop notifications, exactly what a passive
//! on-path observer of an encrypted RTP flow gets. Everything else —
//! media/overhead split, frame boundaries, decodability, freezes — is
//! *inferred*:
//!
//! - **Size classification.** Audio packets are small and near-constant
//!   (≤ [`AUDIO_WIRE`] bytes on the wire, like the paper's Zoom audio at
//!   ~0.04 Mbps × 50 pkt/s), as are RTCP and signaling. Anything strictly
//!   larger is treated as video ([`VIDEO_MIN_WIRE`]).
//! - **Frame boundaries.** Encoders packetize a frame into MTU-sized
//!   packets plus one partial tail, so a video packet smaller than
//!   [`FULL_WIRE`] marks the end of a frame (the classic silence/marker
//!   heuristic). Frames whose size is an exact multiple of the payload
//!   MTU have no partial tail; a pending frame is force-closed when the
//!   video stream pauses for more than [`FRAME_CLOSE_GAP_S`].
//! - **Decodability and freezes.** Observed drops on the flow damage the
//!   inferred decode timeline (a stand-in for RTP sequence-number gaps,
//!   which the telemetry schema does not carry); damaged frames stop
//!   advancing it until a keyframe-sized frame (> [`KEYFRAME_FACTOR`] ×
//!   the rolling frame-size mean) restores sync, mirroring the
//!   FIR-keyframe recovery of the real assembler. The advancing timeline
//!   feeds a replica of the receive-side freeze rule (gap >
//!   max(3δ, δ + 150 ms), δ an EMA of inter-frame time).

use vcabench_simcore::SimTime;
use vcabench_telemetry::{EventKind, Recorder};

/// Per-packet header overhead on the wire: RTP (12) + UDP/IP (28).
pub const HEADER_BYTES: u64 = 40;
/// Largest wire size still classified as audio/control (the constant-rate
/// audio stream is exactly this size; RTCP and signaling are smaller).
pub const AUDIO_WIRE: u64 = 140;
/// Smallest wire size classified as video.
pub const VIDEO_MIN_WIRE: u64 = AUDIO_WIRE + 1;
/// Wire size of a full (MTU-payload) video packet; smaller video packets
/// are partial tails that mark a frame boundary.
pub const FULL_WIRE: u64 = 1140;
/// Video-stream silence that force-closes a pending frame whose tail
/// packet was full-sized (frame bytes an exact MTU multiple), seconds.
pub const FRAME_CLOSE_GAP_S: f64 = 0.080;
/// A frame larger than this multiple of the rolling mean frame size is
/// taken for a keyframe (the encoder's keyframes are ~4× a delta frame).
pub const KEYFRAME_FACTOR: f64 = 2.0;
/// EMA weight of the rolling mean frame size.
pub const FRAME_EMA_ALPHA: f64 = 0.1;
/// Initial frame-rate assumption of the freeze replica (matches the
/// receive-side detector's initialization).
pub const INITIAL_FPS: f64 = 30.0;
/// Additive term of the freeze threshold, seconds (the webrtc-internals
/// rule the paper measures with: gap > max(3δ, δ + 150 ms)).
pub const FREEZE_OFFSET_S: f64 = 0.150;

/// Which side of the tap link the virtual observer sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vantage {
    /// Before the queue: sees every packet the sender emitted, i.e.
    /// enqueues *and* drops on the tap link (they are mutually exclusive
    /// per packet).
    Send,
    /// After the queue: sees dequeues on the tap link; drops anywhere on
    /// the flow are visible only as damage (the proxy for sequence gaps).
    Recv,
}

/// One passive observation point: a link, a flow on it, and a vantage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapSpec {
    /// Link index to watch.
    pub link: u64,
    /// Flow to watch on that link.
    pub flow: u64,
    /// Observer position.
    pub vantage: Vantage,
}

/// Number of preceding windows the rolling-context features average over.
pub const ROLL_WINDOWS: usize = 3;

/// Features of one `[w, w+1)`-second window of a tap.
///
/// Beyond the first-order counts, each window carries second-order
/// in-window structure (video inter-arrival moments, payload-size
/// moments, the longest full-packet burst) and *lagged context* — the
/// previous window's rate and full-packet share plus a
/// [`ROLL_WINDOWS`]-window rolling mean of both. The lag fields are what
/// let a per-window estimator see short-horizon dynamics (FEC
/// elevation, ramp-ups) without breaking the pure-function-of-features
/// [`crate::Estimator`] contract; they are filled by the [`Extractor`]
/// from sealed history, so they stay identical online and offline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowFeatures {
    /// Window index: the window covers `[window, window+1)` seconds.
    pub window: u64,
    /// Total wire bytes observed (all packet classes, headers included).
    pub wire_bytes: u64,
    /// Video payload bytes (wire minus [`HEADER_BYTES`] per video packet).
    /// Includes FEC payload — a passive observer cannot tell them apart.
    pub video_payload_bytes: u64,
    /// Video-classified packets observed.
    pub video_pkts: u64,
    /// Video packets of exactly full wire size (MTU payload).
    pub full_pkts: u64,
    /// Non-video packets observed (audio, RTCP, signaling).
    pub small_pkts: u64,
    /// Drop events attributed to the tap in this window.
    pub drops: u64,
    /// Frame boundaries detected (marker or gap-closed).
    pub frames: u64,
    /// Frames that advanced the inferred decode timeline (excludes frames
    /// observed while the flow was damage-flagged).
    pub frames_decodable: u64,
    /// Freezes the replica detector flagged in this window.
    pub freeze_count: u64,
    /// Freeze time the replica accumulated in this window, seconds.
    pub freeze_time_s: f64,
    /// Video-packet inter-arrival gaps attributed to this window (a gap
    /// belongs to the window of its *later* packet).
    pub iat_count: u64,
    /// Sum of those gaps, seconds.
    pub iat_sum_s: f64,
    /// Sum of squared gaps, s² (second moment for the inter-arrival CV).
    pub iat_sq_sum_s: f64,
    /// Sum of squared video payload sizes, bytes² (second moment of the
    /// size-class histogram).
    pub video_payload_sq: f64,
    /// Longest run of consecutive full-sized video packets observed in
    /// this window (burst structure; FEC blocks extend media bursts).
    pub burst_max: u64,
    /// Previous window's video payload rate, Mbps (0 for window 0).
    pub lag1_video_mbps: f64,
    /// Previous window's full-packet fraction (0 for window 0).
    pub lag1_full_fraction: f64,
    /// Mean video rate over up to [`ROLL_WINDOWS`] preceding windows, Mbps.
    pub roll_video_mbps: f64,
    /// Mean full-packet fraction over up to [`ROLL_WINDOWS`] preceding
    /// windows.
    pub roll_full_fraction: f64,
}

impl WindowFeatures {
    fn empty(window: u64) -> Self {
        WindowFeatures {
            window,
            ..WindowFeatures::default()
        }
    }

    /// Video payload rate over the 1 s window, Mbps.
    pub fn video_mbps(&self) -> f64 {
        self.video_payload_bytes as f64 * 8e-6
    }

    /// Fraction of video packets that were full-sized (high under heavy
    /// FEC, whose packets are always full-sized).
    pub fn full_fraction(&self) -> f64 {
        if self.video_pkts == 0 {
            0.0
        } else {
            self.full_pkts as f64 / self.video_pkts as f64
        }
    }

    /// Mean video payload per packet, bytes (0 when no video packets).
    pub fn mean_video_payload(&self) -> f64 {
        if self.video_pkts == 0 {
            0.0
        } else {
            self.video_payload_bytes as f64 / self.video_pkts as f64
        }
    }

    /// Mean video inter-arrival gap, seconds (0 without gaps).
    pub fn iat_mean_s(&self) -> f64 {
        if self.iat_count == 0 {
            0.0
        } else {
            self.iat_sum_s / self.iat_count as f64
        }
    }

    /// Coefficient of variation (std/mean) of the video inter-arrival
    /// gaps in this window; 0 with fewer than two gaps. Steady paced
    /// media is low-CV, FEC-interleaved or bursty traffic is high-CV.
    pub fn iat_cv(&self) -> f64 {
        if self.iat_count < 2 {
            return 0.0;
        }
        let mean = self.iat_sum_s / self.iat_count as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = (self.iat_sq_sum_s / self.iat_count as f64 - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// Standard deviation of the video payload size, bytes (0 without
    /// video packets). A second moment of the size-class histogram:
    /// all-full-sized FEC blocks push it down relative to media frames
    /// with partial tails.
    pub fn video_payload_std(&self) -> f64 {
        if self.video_pkts == 0 {
            return 0.0;
        }
        let n = self.video_pkts as f64;
        let mean = self.video_payload_bytes as f64 / n;
        let var = (self.video_payload_sq / n - mean * mean).max(0.0);
        var.sqrt()
    }
}

/// Replica of the receive-side freeze rule, fed with *inferred* frame
/// times instead of decoded frames.
#[derive(Debug, Clone)]
struct FreezeReplica {
    last_frame: Option<f64>,
    delta_s: f64,
    freeze_count: u64,
    freeze_time_s: f64,
}

impl FreezeReplica {
    fn new() -> Self {
        FreezeReplica {
            last_frame: None,
            delta_s: 1.0 / INITIAL_FPS,
            freeze_count: 0,
            freeze_time_s: 0.0,
        }
    }

    fn on_frame(&mut self, now_s: f64) {
        if let Some(last) = self.last_frame {
            let gap = (now_s - last).max(0.0);
            let threshold = (3.0 * self.delta_s).max(self.delta_s + FREEZE_OFFSET_S);
            if gap > threshold {
                self.freeze_count += 1;
                self.freeze_time_s += gap - self.delta_s;
            } else {
                self.delta_s = 0.95 * self.delta_s + 0.05 * gap;
            }
        }
        self.last_frame = Some(now_s);
    }
}

/// Single-pass windowed feature extractor for one tap.
///
/// Feed it events in simulation-time order (the [`Recorder`] contract),
/// then call [`Extractor::finish`] to flush and collect the windows. The
/// extractor holds O(1) state plus the completed windows — it never
/// buffers packets.
#[derive(Debug, Clone)]
pub struct Extractor {
    tap: TapSpec,
    done: Vec<WindowFeatures>,
    cur: WindowFeatures,
    started: bool,
    // Frame segmentation.
    pending_payload: u64,
    last_video_s: Option<f64>,
    // Burst structure: current run of consecutive full-sized video
    // packets (runs may span window boundaries; each window records the
    // longest run value observed while it was current).
    burst_run: u64,
    // Rolling (video_mbps, full_fraction) of the last ROLL_WINDOWS
    // sealed windows, oldest first; feeds the lag/roll context fields.
    hist: std::collections::VecDeque<(f64, f64)>,
    // Inferred decode timeline.
    damaged: bool,
    frame_size_ema: f64,
    freeze: FreezeReplica,
}

fn window_of(at: SimTime) -> u64 {
    at.as_micros() / 1_000_000
}

impl Extractor {
    /// An extractor for `tap` with no events seen yet.
    pub fn new(tap: TapSpec) -> Self {
        Extractor {
            tap,
            done: Vec::new(),
            cur: WindowFeatures::empty(0),
            started: false,
            pending_payload: 0,
            last_video_s: None,
            burst_run: 0,
            hist: std::collections::VecDeque::new(),
            damaged: false,
            frame_size_ema: 0.0,
            freeze: FreezeReplica::new(),
        }
    }

    /// The tap this extractor watches.
    pub fn tap(&self) -> TapSpec {
        self.tap
    }

    /// Flush the pending window and return every *complete* window in
    /// `[0, end)` (windows after the last event are emitted empty; a
    /// partial trailing window, when `end` is not on a second boundary,
    /// is discarded). A frame still pending at `end` never completed and
    /// is dropped, like an assembler discarding a partial frame.
    pub fn finish(mut self, end: SimTime) -> Vec<WindowFeatures> {
        self.roll_to(window_of(end));
        self.done
    }

    /// A fresh window `w` with its lag/roll context filled from the
    /// sealed-window history (zeros when no window has sealed yet).
    fn new_window(&self, w: u64) -> WindowFeatures {
        let mut f = WindowFeatures::empty(w);
        if let Some(&(mbps, ff)) = self.hist.back() {
            f.lag1_video_mbps = mbps;
            f.lag1_full_fraction = ff;
        }
        if !self.hist.is_empty() {
            let n = self.hist.len() as f64;
            f.roll_video_mbps = self.hist.iter().map(|h| h.0).sum::<f64>() / n;
            f.roll_full_fraction = self.hist.iter().map(|h| h.1).sum::<f64>() / n;
        }
        f
    }

    /// Record a sealed window in the rolling-context history.
    fn push_history(&mut self, f: &WindowFeatures) {
        if self.hist.len() == ROLL_WINDOWS {
            self.hist.pop_front();
        }
        self.hist.push_back((f.video_mbps(), f.full_fraction()));
    }

    /// Seal windows before `w` and make `w` current. Every sealed window
    /// (including empty gap windows) enters the lag history, so the
    /// context fields decay through silence exactly as an online
    /// observer would see it.
    fn roll_to(&mut self, w: u64) {
        if !self.started {
            self.started = true;
            for i in 0..w {
                let f = self.new_window(i);
                self.push_history(&f);
                self.done.push(f);
            }
            self.cur = self.new_window(w);
            return;
        }
        let cw = self.cur.window;
        if w <= cw {
            return;
        }
        let sealed = std::mem::replace(&mut self.cur, WindowFeatures::empty(0));
        self.push_history(&sealed);
        self.done.push(sealed);
        for i in cw + 1..w {
            let f = self.new_window(i);
            self.push_history(&f);
            self.done.push(f);
        }
        self.cur = self.new_window(w);
    }

    /// One packet crossed the tap at `at` with `bytes` on the wire.
    fn observe_packet(&mut self, at: SimTime, bytes: u64) {
        let now_s = at.as_secs_f64();
        // A long video silence closes a pending frame whose tail packet
        // was full-sized; the frame is attributed to the current window
        // (its true end lies at the last video packet).
        if self.pending_payload > 0 {
            if let Some(last) = self.last_video_s {
                if now_s - last > FRAME_CLOSE_GAP_S {
                    let t = last;
                    self.complete_frame(t);
                }
            }
        }
        self.roll_to(window_of(at));
        self.cur.wire_bytes += bytes;
        if bytes >= VIDEO_MIN_WIRE {
            // Inter-arrival gap vs the previous video packet, attributed
            // to the window of the later packet.
            if let Some(last) = self.last_video_s {
                let gap = (now_s - last).max(0.0);
                self.cur.iat_count += 1;
                self.cur.iat_sum_s += gap;
                self.cur.iat_sq_sum_s += gap * gap;
            }
            let payload = bytes - HEADER_BYTES;
            self.cur.video_pkts += 1;
            self.cur.video_payload_bytes += payload;
            self.cur.video_payload_sq += (payload as f64) * (payload as f64);
            self.pending_payload += payload;
            self.last_video_s = Some(now_s);
            if bytes >= FULL_WIRE {
                self.cur.full_pkts += 1;
                self.burst_run += 1;
                self.cur.burst_max = self.cur.burst_max.max(self.burst_run);
            } else {
                // Partial tail: the frame's last packet, and the end of
                // any full-packet burst (audio interleaving does not
                // break a burst; a frame boundary does).
                self.burst_run = 0;
                self.complete_frame(now_s);
            }
        } else {
            self.cur.small_pkts += 1;
        }
    }

    /// A frame boundary was inferred at `t` (seconds).
    fn complete_frame(&mut self, t: f64) {
        let bytes = self.pending_payload as f64;
        self.pending_payload = 0;
        self.cur.frames += 1;
        let ema = self.frame_size_ema;
        let keyframe_sized = ema > 0.0 && bytes > KEYFRAME_FACTOR * ema;
        self.frame_size_ema = if ema > 0.0 {
            (1.0 - FRAME_EMA_ALPHA) * ema + FRAME_EMA_ALPHA * bytes
        } else {
            bytes
        };
        if self.damaged && !keyframe_sized {
            // Presumed undecodable: the reference chain is broken and
            // this frame is not big enough to be the recovery keyframe.
            return;
        }
        self.damaged = false;
        self.cur.frames_decodable += 1;
        let before = (self.freeze.freeze_count, self.freeze.freeze_time_s);
        self.freeze.on_frame(t);
        self.cur.freeze_count += self.freeze.freeze_count - before.0;
        self.cur.freeze_time_s += self.freeze.freeze_time_s - before.1;
    }
}

impl Recorder for Extractor {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        match kind {
            EventKind::PacketEnqueued {
                link, flow, bytes, ..
            } if self.tap.vantage == Vantage::Send
                && link == self.tap.link
                && flow == self.tap.flow =>
            {
                self.observe_packet(at, bytes)
            }
            EventKind::PacketDequeued {
                link, flow, bytes, ..
            } if self.tap.vantage == Vantage::Recv
                && link == self.tap.link
                && flow == self.tap.flow =>
            {
                self.observe_packet(at, bytes)
            }
            EventKind::PacketDropped {
                link, flow, bytes, ..
            } => match self.tap.vantage {
                // Pre-queue observer: the sender emitted this packet even
                // though the queue discarded it.
                Vantage::Send if link == self.tap.link && flow == self.tap.flow => {
                    self.observe_packet(at, bytes);
                    self.cur.drops += 1;
                }
                // Post-queue observer: the packet never arrives; a video
                // loss anywhere on the flow shows up downstream as a
                // sequence gap, modeled here as decode damage.
                Vantage::Recv if flow == self.tap.flow && bytes >= VIDEO_MIN_WIRE => {
                    self.roll_to(window_of(at));
                    self.cur.drops += 1;
                    self.damaged = true;
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// A bank of extractors sharing one event stream: the [`Recorder`] to
/// attach when a run feeds several taps at once.
#[derive(Debug, Clone, Default)]
pub struct TapBank {
    extractors: Vec<Extractor>,
}

impl TapBank {
    /// One extractor per tap.
    pub fn new(taps: &[TapSpec]) -> Self {
        TapBank {
            extractors: taps.iter().map(|&t| Extractor::new(t)).collect(),
        }
    }

    /// Finish every extractor, returning window vectors in tap order.
    pub fn finish(self, end: SimTime) -> Vec<Vec<WindowFeatures>> {
        self.extractors.into_iter().map(|e| e.finish(end)).collect()
    }
}

impl Recorder for TapBank {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        if !matches!(
            kind,
            EventKind::PacketEnqueued { .. }
                | EventKind::PacketDequeued { .. }
                | EventKind::PacketDropped { .. }
        ) {
            return;
        }
        for e in &mut self.extractors {
            e.record(at, kind.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_tap() -> TapSpec {
        TapSpec {
            link: 1,
            flow: 11,
            vantage: Vantage::Recv,
        }
    }

    fn deq(link: u64, flow: u64, bytes: u64) -> EventKind {
        EventKind::PacketDequeued {
            link,
            flow,
            pkt: 0,
            bytes,
            queue_bytes: 0,
        }
    }

    fn enq(link: u64, flow: u64, bytes: u64) -> EventKind {
        EventKind::PacketEnqueued {
            link,
            flow,
            pkt: 0,
            bytes,
            queue_bytes: 0,
            queue_pkts: 0,
        }
    }

    fn drop(link: u64, flow: u64, bytes: u64) -> EventKind {
        EventKind::PacketDropped {
            link,
            flow,
            pkt: 0,
            bytes,
            queue_bytes: 0,
            reason: "queue_full",
        }
    }

    /// Send a frame of `full` full packets plus one marker tail.
    fn frame(ex: &mut Extractor, at_ms: u64, full: usize) {
        for i in 0..full {
            ex.record(
                SimTime::from_millis(at_ms) + vcabench_simcore::SimDuration::from_micros(i as u64),
                deq(1, 11, FULL_WIRE),
            );
        }
        ex.record(
            SimTime::from_millis(at_ms) + vcabench_simcore::SimDuration::from_micros(full as u64),
            deq(1, 11, 500),
        );
    }

    #[test]
    fn marker_packets_delimit_frames() {
        let mut ex = Extractor::new(recv_tap());
        for i in 0..30u64 {
            frame(&mut ex, 33 * i, 2);
        }
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].frames, 30);
        assert_eq!(w[0].frames_decodable, 30);
        assert_eq!(w[0].video_pkts, 90);
        assert_eq!(w[0].full_pkts, 60);
        assert_eq!(
            w[0].video_payload_bytes,
            60 * (FULL_WIRE - HEADER_BYTES) + 30 * (500 - HEADER_BYTES)
        );
        assert_eq!(w[0].freeze_count, 0);
    }

    #[test]
    fn stalled_full_sized_tail_is_gap_closed() {
        let mut ex = Extractor::new(recv_tap());
        // A frame that is an exact MTU multiple: both packets full-sized.
        ex.record(SimTime::from_millis(0), deq(1, 11, FULL_WIRE));
        ex.record(SimTime::from_millis(1), deq(1, 11, FULL_WIRE));
        // Next activity is far beyond the close gap: an audio packet.
        ex.record(SimTime::from_millis(200), deq(1, 11, AUDIO_WIRE));
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w[0].frames, 1, "pending frame closed by the gap");
        // But a frame still pending at the end of the run is discarded.
        let mut ex = Extractor::new(recv_tap());
        ex.record(SimTime::from_millis(900), deq(1, 11, FULL_WIRE));
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w[0].frames, 0);
        assert_eq!(w[0].video_pkts, 1, "bytes still counted");
    }

    #[test]
    fn windows_roll_and_gaps_emit_empty_windows() {
        let mut ex = Extractor::new(recv_tap());
        frame(&mut ex, 500, 1); // window 0
        frame(&mut ex, 3200, 1); // window 3
        let w = ex.finish(SimTime::from_secs(5));
        assert_eq!(w.len(), 5);
        let frames: Vec<u64> = w.iter().map(|w| w.frames).collect();
        assert_eq!(frames, vec![1, 0, 0, 1, 0]);
        let idx: Vec<u64> = w.iter().map(|w| w.window).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn small_packets_never_enter_video_features() {
        let mut ex = Extractor::new(recv_tap());
        for i in 0..50u64 {
            ex.record(SimTime::from_millis(20 * i), deq(1, 11, AUDIO_WIRE));
            ex.record(SimTime::from_millis(20 * i + 1), deq(1, 11, 96));
        }
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w[0].small_pkts, 100);
        assert_eq!(w[0].video_pkts, 0);
        assert_eq!(w[0].frames, 0);
        assert_eq!(w[0].wire_bytes, 50 * (AUDIO_WIRE + 96));
    }

    #[test]
    fn vantage_filters_links_flows_and_event_kinds() {
        // Recv tap ignores enqueues, other links, other flows.
        let mut ex = Extractor::new(recv_tap());
        ex.record(SimTime::from_millis(1), enq(1, 11, FULL_WIRE));
        ex.record(SimTime::from_millis(2), deq(0, 11, FULL_WIRE));
        ex.record(SimTime::from_millis(3), deq(1, 10, FULL_WIRE));
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w[0].video_pkts, 0);
        // Send tap sees enqueues AND same-link drops (the pre-queue view).
        let mut ex = Extractor::new(TapSpec {
            link: 0,
            flow: 10,
            vantage: Vantage::Send,
        });
        ex.record(SimTime::from_millis(1), enq(0, 10, FULL_WIRE));
        ex.record(SimTime::from_millis(2), drop(0, 10, FULL_WIRE));
        ex.record(SimTime::from_millis(3), drop(4, 10, FULL_WIRE)); // other link: not ours
        ex.record(SimTime::from_millis(4), deq(0, 10, 500)); // dequeue: invisible pre-queue
        let w = ex.finish(SimTime::from_secs(1));
        assert_eq!(w[0].video_pkts, 2);
        assert_eq!(w[0].drops, 1);
    }

    #[test]
    fn freeze_replica_flags_a_long_gap_and_damage_defers_recovery() {
        // Steady 30 fps for half a second, then silence, then recovery.
        let mut ex = Extractor::new(recv_tap());
        for i in 0..15u64 {
            frame(&mut ex, 33 * i, 1);
        }
        // Last frame at 462 ms; the 1.238 s gap >> max(3δ, δ+150ms) ≈ 183 ms.
        frame(&mut ex, 1700, 1);
        let w = ex.finish(SimTime::from_secs(2));
        assert_eq!(w.iter().map(|w| w.freeze_count).sum::<u64>(), 1);
        let ft: f64 = w.iter().map(|w| w.freeze_time_s).sum();
        assert!((ft - (1.238 - 0.033)).abs() < 0.02, "freeze time {ft}");
        // The freeze lands in the window of the recovery frame.
        assert_eq!(w[1].freeze_count, 1);

        // With a drop in between, ordinary frames do not advance the
        // timeline; only a keyframe-sized frame ends the damage, and the
        // whole damaged span counts as one freeze gap.
        let mut ex = Extractor::new(recv_tap());
        for i in 0..15u64 {
            frame(&mut ex, 33 * i, 1);
        }
        ex.record(SimTime::from_millis(500), drop(1, 11, FULL_WIRE));
        for i in 0..30u64 {
            frame(&mut ex, 520 + 33 * i, 1); // damaged: same size as before
        }
        frame(&mut ex, 1700, 8); // keyframe-sized: recovery
        let w = ex.finish(SimTime::from_secs(2));
        assert_eq!(w.iter().map(|w| w.freeze_count).sum::<u64>(), 1);
        assert_eq!(
            w.iter().map(|w| w.frames_decodable).sum::<u64>(),
            15 + 1,
            "damaged frames excluded from the decode timeline"
        );
        assert!(w.iter().map(|w| w.frames).sum::<u64>() > 40);
    }

    #[test]
    fn second_order_accumulators_track_iat_size_and_bursts() {
        let mut ex = Extractor::new(recv_tap());
        for i in 0..30u64 {
            frame(&mut ex, 33 * i, 2);
        }
        let w = ex.finish(SimTime::from_secs(1));
        let f = &w[0];
        // 90 video packets → 89 inter-arrival gaps, all in window 0.
        assert_eq!(f.iat_count, 89);
        assert!(f.iat_mean_s() > 0.0);
        assert!(f.iat_cv() > 0.0, "back-to-back vs 33 ms gaps vary");
        // Each frame is 2 full packets + 1 partial tail: the longest
        // full-packet run is 2 (the tail resets it).
        assert_eq!(f.burst_max, 2);
        // Payload sizes are bimodal (full vs tail) → std well above 0.
        assert!(f.video_payload_std() > 100.0, "{}", f.video_payload_std());
        // And the exact second moment matches the hand sum.
        let full_p = (FULL_WIRE - HEADER_BYTES) as f64;
        let tail_p = (500 - HEADER_BYTES) as f64;
        let expect = 60.0 * full_p * full_p + 30.0 * tail_p * tail_p;
        assert!((f.video_payload_sq - expect).abs() < 1e-6);
    }

    #[test]
    fn lag_and_rolling_context_reflect_sealed_history() {
        let mut ex = Extractor::new(recv_tap());
        // Window 0: busy. Window 1: silent. Window 2: one frame.
        for i in 0..30u64 {
            frame(&mut ex, 33 * i, 2);
        }
        frame(&mut ex, 2500, 2);
        let w = ex.finish(SimTime::from_secs(4));
        assert_eq!(w.len(), 4);
        let w0 = w[0].video_mbps();
        assert!(w0 > 0.0);
        assert_eq!(w[0].lag1_video_mbps, 0.0, "no history before window 0");
        assert_eq!(w[0].roll_full_fraction, 0.0);
        assert!((w[1].lag1_video_mbps - w0).abs() < 1e-12);
        assert!((w[1].roll_video_mbps - w0).abs() < 1e-12);
        // Window 2's context: lag1 sees the silent window 1, the rolling
        // mean averages windows {0, 1}.
        assert_eq!(w[2].lag1_video_mbps, 0.0);
        assert!((w[2].roll_video_mbps - w0 / 2.0).abs() < 1e-12);
        // Window 3 averages windows {0, 1, 2}.
        let w2 = w[2].video_mbps();
        assert!((w[3].roll_video_mbps - (w0 + w2) / 3.0).abs() < 1e-12);
        assert!((w[3].lag1_video_mbps - w2).abs() < 1e-12);
    }

    #[test]
    fn extractor_state_is_single_pass_and_order_insensitive_to_windows() {
        // The same stream fed in one go equals two extractors' worth of
        // identical prefixes — i.e. no hidden global passes.
        let mut a = Extractor::new(recv_tap());
        let mut b = Extractor::new(recv_tap());
        for i in 0..90u64 {
            frame(&mut a, 33 * i, 2);
            frame(&mut b, 33 * i, 2);
        }
        assert_eq!(
            a.finish(SimTime::from_secs(3)),
            b.finish(SimTime::from_secs(3))
        );
    }
}
