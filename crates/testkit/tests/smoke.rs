//! Survival smoke tests: every modeled application must sustain a 40-second
//! two-party call through a 0.5 Mbps constraint in either direction without
//! stalling — both ends keep decoding frames and no invariant breaks.

use vcabench_netsim::RateProfile;
use vcabench_simcore::SimTime;
use vcabench_vca::{two_party_call, VcaClient, VcaKind};

const KINDS: [VcaKind; 5] = [
    VcaKind::Zoom,
    VcaKind::ZoomChrome,
    VcaKind::Meet,
    VcaKind::Teams,
    VcaKind::TeamsChrome,
];

fn smoke(kind: VcaKind, up: RateProfile, down: RateProfile, label: &str) {
    let mut call = two_party_call(kind, up, down, 0xC0FFEE);
    call.net.run_until(SimTime::from_secs(40));
    let c1: &VcaClient = call.net.agent(call.topo.c1);
    let c2: &VcaClient = call.net.agent(call.topo.c2);
    assert!(
        c1.frames_decoded_from(1) > 0,
        "{kind:?} {label}: C1 decoded nothing from C2"
    );
    assert!(
        c2.frames_decoded_from(0) > 0,
        "{kind:?} {label}: C2 decoded nothing from C1"
    );
    call.net.assert_invariants();
}

#[test]
fn survives_constrained_uplink() {
    for kind in KINDS {
        smoke(
            kind,
            RateProfile::constant_mbps(0.5),
            RateProfile::constant_mbps(100.0),
            "0.5 Mbps uplink",
        );
    }
}

#[test]
fn survives_constrained_downlink() {
    for kind in KINDS {
        smoke(
            kind,
            RateProfile::constant_mbps(100.0),
            RateProfile::constant_mbps(0.5),
            "0.5 Mbps downlink",
        );
    }
}
