//! Golden-trace regression: a fixed scenario matrix is summarized and
//! compared byte-for-byte against committed JSON fixtures.
//!
//! Regenerate after an intended model change with
//! `VCABENCH_BLESS=1 cargo test -p vcabench-testkit --test golden_traces`
//! and commit the resulting `tests/golden/*.json` diff.

use vcabench_testkit::scenario::{ProfileSpec, Scenario, Topology};
use vcabench_testkit::{check_golden, run_scenario};
use vcabench_vca::VcaKind;

/// 100 Mbps — effectively unconstrained for a single call.
const UNCONSTRAINED: ProfileSpec = ProfileSpec::Constant { cmbps: 10_000 };
/// The paper's harshest static uplink constraint, 0.5 Mbps.
const UP_HALF_MBPS: ProfileSpec = ProfileSpec::Constant { cmbps: 50 };

fn golden_case(name: &str, kind: VcaKind, up: ProfileSpec) {
    let sc = Scenario {
        kind,
        topology: Topology::TwoParty,
        up,
        down: UNCONSTRAINED,
        duration_s: 20,
        seed: 7,
    };
    let out = run_scenario(&sc);
    // Golden runs double as invariant runs: a fixture must never be blessed
    // from a run that broke a conservation law.
    out.assert_clean();
    check_golden(name, &out.summary);
}

#[test]
fn zoom_unconstrained() {
    golden_case("zoom_unconstrained", VcaKind::Zoom, UNCONSTRAINED);
}

#[test]
fn zoom_uplink_500k() {
    golden_case("zoom_uplink_500k", VcaKind::Zoom, UP_HALF_MBPS);
}

#[test]
fn meet_unconstrained() {
    golden_case("meet_unconstrained", VcaKind::Meet, UNCONSTRAINED);
}

#[test]
fn meet_uplink_500k() {
    golden_case("meet_uplink_500k", VcaKind::Meet, UP_HALF_MBPS);
}

#[test]
fn teams_unconstrained() {
    golden_case("teams_unconstrained", VcaKind::Teams, UNCONSTRAINED);
}

#[test]
fn teams_uplink_500k() {
    golden_case("teams_uplink_500k", VcaKind::Teams, UP_HALF_MBPS);
}
