//! Property-based scenario fuzzing: every generated configuration must run
//! with zero invariant violations, and identical seeds must produce
//! byte-identical summaries.
//!
//! Case count defaults to 64 and honors `PROPTEST_CASES`. Failing seeds are
//! persisted to `proptest-regressions/tests/fuzz.txt` and re-run first on
//! subsequent invocations — commit that file when the fuzzer finds a bug.

use proptest::{prop_assert, prop_assert_eq, proptest};
use vcabench_testkit::scenario::arb_scenario;
use vcabench_testkit::{golden, run_scenario};

proptest! {
    /// Conservation, ordering, occupancy, capacity, monotonicity and
    /// congestion-bound invariants hold for arbitrary valid scenarios.
    #[test]
    fn fuzz_invariants(sc in arb_scenario(8, 30)) {
        let out = run_scenario(&sc);
        prop_assert!(
            out.checks > 0,
            "no invariant checks ran for {sc:?} — vacuous pass"
        );
        prop_assert!(
            out.violations.is_empty(),
            "{} invariant violation(s) for {:?}:\n{}",
            out.violations.len(),
            sc,
            out.violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The simulator is deterministic: the same scenario (including seed)
    /// run twice yields identical integer summaries.
    #[test]
    fn fuzz_determinism(sc in arb_scenario(8, 14)) {
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        prop_assert_eq!(
            golden::render(&a.summary),
            golden::render(&b.summary)
        );
    }
}
