//! Golden-trace fixtures: integer-exact run summaries compared byte-for-byte.
//!
//! A golden trace is deliberately *not* a full packet log: it is a compact
//! summary (per-link delivery counters plus a one-second byte series, and
//! frames decoded at each end) that still pins down the simulation tightly —
//! a changed drop decision or a shifted serialization boundary moves some
//! bin. Every field is an integer, so JSON round-trips are exact and the
//! comparison needs no tolerance.
//!
//! Workflow: `VCABENCH_BLESS=1 cargo test -p vcabench-testkit` regenerates
//! the fixtures under `tests/golden/`; a plain test run compares against
//! them and fails with a diff pointer on any divergence.

use std::path::PathBuf;

use serde::Serialize;
use vcabench_netsim::Link;
use vcabench_simcore::{SimDuration, SimTime};

/// Environment variable that switches golden tests into bless (regenerate)
/// mode when set to `1`.
pub const BLESS_ENV: &str = "VCABENCH_BLESS";

/// Summary of one link over a run. All integers: byte-exact across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LinkSummary {
    /// Topology-stable link name (e.g. `c1_up`).
    pub name: String,
    /// Packets fully delivered.
    pub delivered_pkts: u64,
    /// Packets dropped (tail drops plus impairment drops).
    pub dropped_pkts: u64,
    /// Bytes delivered.
    pub delivered_bytes: u64,
    /// Delivered bytes per one-second bin, zero-padded to the run length.
    pub bytes_per_sec: Vec<u64>,
}

impl LinkSummary {
    /// Summarize `link` over a run of `duration`.
    pub fn of<P>(name: &str, link: &Link<P>, duration: SimTime) -> Self {
        LinkSummary {
            name: name.to_string(),
            delivered_pkts: link.stats.total_delivered(),
            dropped_pkts: link.stats.total_dropped(),
            delivered_bytes: link.stats.delivered_bytes.values().sum(),
            bytes_per_sec: link
                .traces
                .total()
                .binned_bytes(SimDuration::from_secs(1), duration),
        }
    }
}

/// Integer-exact summary of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceSummary {
    /// Human-readable scenario description (also the fixture key).
    pub scenario: String,
    /// Run length in simulated seconds.
    pub duration_s: u32,
    /// Per-link summaries in topology order.
    pub links: Vec<LinkSummary>,
    /// Frames the measured client decoded from its counter-party.
    pub c1_frames_decoded: u64,
    /// Frames the counter-party decoded from the measured client.
    pub c2_frames_decoded: u64,
}

/// Render a summary as the canonical fixture text (pretty JSON, trailing
/// newline). Blessing and comparing both go through this single function so
/// the fixture format cannot drift between the two paths.
pub fn render(summary: &TraceSummary) -> String {
    let mut s = serde_json::to_string_pretty(&summary.to_json_value()).expect("summary serializes");
    s.push('\n');
    s
}

/// Path of the fixture for `name` under this crate's `tests/golden/`.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare `summary` against the committed fixture `name`, or regenerate the
/// fixture when [`BLESS_ENV`] is `1`.
///
/// Panics on mismatch or on a missing fixture, with instructions.
pub fn check_golden(name: &str, summary: &TraceSummary) {
    let rendered = render(summary);
    let path = golden_path(name);
    if std::env::var(BLESS_ENV).as_deref() == Ok("1") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create golden dir");
        }
        std::fs::write(&path, &rendered).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {}; generate it with \
             `VCABENCH_BLESS=1 cargo test -p vcabench-testkit --test golden_traces`",
            path.display()
        )
    });
    assert!(
        expected == rendered,
        "golden trace `{name}` diverged from {}.\n\
         If the change is an intended model improvement, re-bless with \
         `VCABENCH_BLESS=1 cargo test -p vcabench-testkit --test golden_traces` \
         and commit the diff.\n--- expected ---\n{expected}\n--- actual ---\n{rendered}",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSummary {
        TraceSummary {
            scenario: "unit".into(),
            duration_s: 2,
            links: vec![LinkSummary {
                name: "l0".into(),
                delivered_pkts: 3,
                dropped_pkts: 1,
                delivered_bytes: 4500,
                bytes_per_sec: vec![3000, 1500],
            }],
            c1_frames_decoded: 10,
            c2_frames_decoded: 12,
        }
    }

    #[test]
    fn render_is_deterministic_and_integer_only() {
        let a = render(&sample());
        let b = render(&sample());
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        assert!(!a.contains('.'), "no floats in fixtures: {a}");
        assert!(a.contains("\"delivered_bytes\": 4500"));
    }

    #[test]
    fn golden_path_is_crate_local() {
        let p = golden_path("x");
        assert!(p.ends_with("tests/golden/x.json"));
        assert!(p.to_string_lossy().contains("testkit"));
    }
}
