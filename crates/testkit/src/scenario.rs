//! Scenario generation and execution with every invariant audit armed.
//!
//! A [`Scenario`] is a *valid* simulation configuration drawn from the space
//! the paper's experiments inhabit: an application, a topology, piecewise
//! rate profiles on the measured access path, optional cross traffic, a
//! seed, and a bounded duration. [`run_scenario`] builds the network (with
//! the `testkit-checks` features of every underlying crate enabled by this
//! crate's dependency declarations), runs it, and returns the invariant
//! verdict plus an integer-exact [`TraceSummary`] for determinism and golden
//! comparisons.
//!
//! Rates are carried as integer *centi-Mbps* so scenarios are `Eq`, hashable
//! and print exactly — a fuzz failure message identifies the case fully.

use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use vcabench_apps::{TcpSenderAgent, TcpSinkAgent};
use vcabench_netsim::{topology, FlowId, Network, RateProfile};
use vcabench_simcore::{SimRng, SimTime, Violation};
use vcabench_transport::Wire;
use vcabench_vca::{two_party_call, wire_call, wire_call_at, VcaClient, VcaKind, ViewMode};

use crate::golden::{LinkSummary, TraceSummary};

/// Hard cap on fuzzed scenario length, in simulated seconds.
pub const MAX_DURATION_S: u32 = 30;

/// A piecewise-constant rate schedule in integer centi-Mbps (1 unit =
/// 0.01 Mbps), mirroring the paper's `tc` shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileSpec {
    /// Constant rate for the whole run.
    Constant {
        /// Rate in centi-Mbps.
        cmbps: u32,
    },
    /// One step: `start` until `at_s`, `then` afterwards.
    Step {
        /// Initial rate in centi-Mbps.
        start: u32,
        /// Step time in seconds.
        at_s: u32,
        /// Rate after the step, centi-Mbps.
        then: u32,
    },
    /// The §4 transient: `nominal` with a dip to `reduced` during
    /// `[start_s, start_s + dur_s)`.
    Disruption {
        /// Nominal rate, centi-Mbps.
        nominal: u32,
        /// Reduced rate during the dip, centi-Mbps.
        reduced: u32,
        /// Dip start, seconds.
        start_s: u32,
        /// Dip length, seconds.
        dur_s: u32,
    },
}

impl ProfileSpec {
    /// Materialize as a [`RateProfile`].
    pub fn to_profile(self) -> RateProfile {
        // 1 centi-Mbps = 1e4 bps.
        match self {
            ProfileSpec::Constant { cmbps } => RateProfile::constant(cmbps as f64 * 1e4),
            ProfileSpec::Step { start, at_s, then } => RateProfile::constant(start as f64 * 1e4)
                .step(SimTime::from_secs(at_s as u64), then as f64 * 1e4),
            ProfileSpec::Disruption {
                nominal,
                reduced,
                start_s,
                dur_s,
            } => RateProfile::disruption(
                nominal as f64 * 1e4,
                reduced as f64 * 1e4,
                SimTime::from_secs(start_s as u64),
                vcabench_simcore::SimDuration::from_secs(dur_s as u64),
            ),
        }
    }
}

/// What shares the bottleneck with the measured call (competition topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossTraffic {
    /// TCP bulk upload from the competing host (iPerf3-style).
    TcpUp,
    /// TCP bulk download to the competing host.
    TcpDown,
    /// A second VCA call of the given kind.
    Vca(VcaKind),
}

/// Network shape of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The §2.2 two-party setup; profiles shape C1's access link.
    TwoParty,
    /// The §6 star with `n` clients; profiles shape every access link.
    Multiparty {
        /// Number of participants (≥ 2).
        n: usize,
    },
    /// The §5 shared-bottleneck setup; profiles shape the bottleneck and
    /// the cross traffic joins a third of the way into the run.
    Competition {
        /// The competing application.
        cross: CrossTraffic,
    },
}

/// One fully-specified fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Application under test.
    pub kind: VcaKind,
    /// Network shape.
    pub topology: Topology,
    /// Uplink-direction shaping.
    pub up: ProfileSpec,
    /// Downlink-direction shaping.
    pub down: ProfileSpec,
    /// Run length in simulated seconds (≤ [`MAX_DURATION_S`]).
    pub duration_s: u32,
    /// Seed for all stochastic model components.
    pub seed: u64,
}

/// Verdict and summary of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Total invariant checks performed (engine + links + RTP receivers).
    pub checks: u64,
    /// Every violation recorded anywhere; empty on a healthy run.
    pub violations: Vec<Violation>,
    /// Integer-exact run summary for determinism/golden comparison.
    pub summary: TraceSummary,
}

impl ScenarioOutcome {
    /// Panic with a readable report if any invariant was violated or no
    /// checks ran (a vacuous pass proves nothing).
    pub fn assert_clean(&self) {
        assert!(self.checks > 0, "no invariant checks were performed");
        if !self.violations.is_empty() {
            let lines: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
            panic!(
                "{} invariant violation(s):\n{}",
                self.violations.len(),
                lines.join("\n")
            );
        }
    }
}

/// Build, run, and audit one scenario.
pub fn run_scenario(sc: &Scenario) -> ScenarioOutcome {
    match sc.topology {
        Topology::TwoParty => run_two_party(sc),
        Topology::Multiparty { n } => run_multiparty(sc, n),
        Topology::Competition { cross } => run_competition(sc, cross),
    }
}

fn end_time(sc: &Scenario) -> SimTime {
    SimTime::from_secs(sc.duration_s as u64)
}

/// Collect violations/checks common to every topology: the engine and link
/// audits inside `net`, routing health, and the clients' RTP receivers.
fn collect(net: &Network<Wire>, clients: &[&VcaClient]) -> (u64, Vec<Violation>) {
    let mut violations = net.invariant_violations();
    let mut checks = net.invariant_checks();
    // Routing is part of conservation at network scope: a packet that fell
    // off the routing table disappeared without being dropped by a queue.
    checks += 1;
    if net.unrouted_drops > 0 {
        violations.push(Violation {
            at: net.now(),
            invariant: "no-unrouted-packets",
            detail: format!("{} packet(s) had no route", net.unrouted_drops),
        });
    }
    for c in clients {
        checks += c.audit_checks();
        violations.extend(c.audit_violations());
    }
    (checks, violations)
}

fn run_two_party(sc: &Scenario) -> ScenarioOutcome {
    let mut call = two_party_call(sc.kind, sc.up.to_profile(), sc.down.to_profile(), sc.seed);
    let end = end_time(sc);
    call.net.run_until(end);
    let c1: &VcaClient = call.net.agent(call.topo.c1);
    let c2: &VcaClient = call.net.agent(call.topo.c2);
    let (checks, violations) = collect(&call.net, &[c1, c2]);
    let t = &call.topo;
    let links = [
        ("c1_up", t.c1_up),
        ("c1_down", t.c1_down),
        ("wan_up", t.wan_up),
        ("wan_down", t.wan_down),
        ("c2_up", t.c2_up),
        ("c2_down", t.c2_down),
    ]
    .iter()
    .map(|&(name, id)| LinkSummary::of(name, call.net.link(id), end))
    .collect();
    let summary = TraceSummary {
        scenario: format!("{sc:?}"),
        duration_s: sc.duration_s,
        links,
        c1_frames_decoded: c1.frames_decoded_from(1),
        c2_frames_decoded: c2.frames_decoded_from(0),
    };
    ScenarioOutcome {
        checks,
        violations,
        summary,
    }
}

fn run_multiparty(sc: &Scenario, n: usize) -> ScenarioOutcome {
    let mut rng = SimRng::seed_from_u64(sc.seed);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::multiparty(&mut net, n, sc.up.to_profile(), sc.down.to_profile());
    let clients = topo.clients.clone();
    let modes = vec![ViewMode::Gallery; n];
    let handles = wire_call(
        &mut net,
        sc.kind,
        topo.server,
        &clients,
        &modes,
        10,
        &mut rng,
    );
    let end = end_time(sc);
    net.run_until(end);
    let agents: Vec<&VcaClient> = handles.clients.iter().map(|&c| net.agent(c)).collect();
    let (checks, violations) = collect(&net, &agents);
    let c1_frames: u64 = (1..n as u32)
        .map(|s| agents[0].frames_decoded_from(s))
        .sum();
    let c2_frames = agents[1].frames_decoded_from(0);
    let links = topo
        .uplinks
        .iter()
        .enumerate()
        .map(|(i, &id)| LinkSummary::of(&format!("up{i}"), net.link(id), end))
        .chain(
            topo.downlinks
                .iter()
                .enumerate()
                .map(|(i, &id)| LinkSummary::of(&format!("down{i}"), net.link(id), end)),
        )
        .collect();
    let summary = TraceSummary {
        scenario: format!("{sc:?}"),
        duration_s: sc.duration_s,
        links,
        c1_frames_decoded: c1_frames,
        c2_frames_decoded: c2_frames,
    };
    ScenarioOutcome {
        checks,
        violations,
        summary,
    }
}

fn run_competition(sc: &Scenario, cross: CrossTraffic) -> ScenarioOutcome {
    let mut rng = SimRng::seed_from_u64(sc.seed);
    let mut net: Network<Wire> = Network::new();
    let topo = topology::competition(&mut net, sc.up.to_profile(), sc.down.to_profile());
    let h1 = wire_call(
        &mut net,
        sc.kind,
        topo.vca_server,
        &[topo.c1, topo.c2],
        &[ViewMode::Gallery, ViewMode::Gallery],
        10,
        &mut rng,
    );
    let comp_start = SimTime::from_secs((sc.duration_s / 3) as u64);
    let end = end_time(sc);
    match cross {
        CrossTraffic::Vca(kind) => {
            let _ = wire_call_at(
                &mut net,
                kind,
                topo.f_server,
                &[topo.f1, topo.f2],
                &[ViewMode::Gallery, ViewMode::Gallery],
                50,
                &mut rng,
                comp_start,
            );
        }
        CrossTraffic::TcpUp => {
            net.set_agent(
                topo.f1,
                Box::new(TcpSenderAgent::new(
                    1,
                    topo.f_server,
                    FlowId(70),
                    comp_start,
                    Some(end),
                )),
            );
            net.set_agent(topo.f_server, Box::new(TcpSinkAgent::new(FlowId(71))));
        }
        CrossTraffic::TcpDown => {
            net.set_agent(
                topo.f_server,
                Box::new(TcpSenderAgent::new(
                    1,
                    topo.f1,
                    FlowId(71),
                    comp_start,
                    Some(end),
                )),
            );
            net.set_agent(topo.f1, Box::new(TcpSinkAgent::new(FlowId(70))));
        }
    }
    net.run_until(end);
    let c1: &VcaClient = net.agent(h1.clients[0]);
    let c2: &VcaClient = net.agent(h1.clients[1]);
    let (checks, violations) = collect(&net, &[c1, c2]);
    let links = [
        ("bottleneck_up", topo.bottleneck_up),
        ("bottleneck_down", topo.bottleneck_down),
    ]
    .iter()
    .map(|&(name, id)| LinkSummary::of(name, net.link(id), end))
    .collect();
    let summary = TraceSummary {
        scenario: format!("{sc:?}"),
        duration_s: sc.duration_s,
        links,
        c1_frames_decoded: c1.frames_decoded_from(1),
        c2_frames_decoded: c2.frames_decoded_from(0),
    };
    ScenarioOutcome {
        checks,
        violations,
        summary,
    }
}

/// All application kinds the simulator models.
pub const ALL_KINDS: [VcaKind; 5] = [
    VcaKind::Zoom,
    VcaKind::ZoomChrome,
    VcaKind::Meet,
    VcaKind::Teams,
    VcaKind::TeamsChrome,
];

/// Proptest strategy over valid scenarios, durations in
/// `[min_duration_s, max_duration_s]`.
#[derive(Debug, Clone, Copy)]
pub struct ArbScenario {
    min_duration_s: u32,
    max_duration_s: u32,
}

/// Strategy generating arbitrary valid [`Scenario`]s with durations in
/// `[min_s, max_s]` (clamped to [`MAX_DURATION_S`]).
pub fn arb_scenario(min_s: u32, max_s: u32) -> ArbScenario {
    assert!(min_s >= 6, "runs shorter than 6 s never exchange media");
    let max_s = max_s.min(MAX_DURATION_S);
    assert!(min_s <= max_s);
    ArbScenario {
        min_duration_s: min_s,
        max_duration_s: max_s,
    }
}

fn draw_u32(rng: &mut TestRng, lo: u32, hi_incl: u32) -> u32 {
    lo + (rng.next_u64() % (hi_incl - lo + 1) as u64) as u32
}

fn draw_profile(rng: &mut TestRng, duration_s: u32) -> ProfileSpec {
    // Rates span 0.3–10 Mbps: below the paper's lowest disruption floor up
    // to comfortably unconstrained for a single call.
    let rate = |rng: &mut TestRng| draw_u32(rng, 30, 1000);
    match rng.next_u64() % 3 {
        0 => ProfileSpec::Constant { cmbps: rate(rng) },
        1 => ProfileSpec::Step {
            start: rate(rng),
            at_s: draw_u32(rng, 2, duration_s - 2),
            then: rate(rng),
        },
        _ => {
            let start_s = draw_u32(rng, 2, duration_s - 4);
            ProfileSpec::Disruption {
                nominal: rate(rng),
                reduced: draw_u32(rng, 25, 100),
                start_s,
                dur_s: draw_u32(rng, 2, (duration_s - start_s).min(10)),
            }
        }
    }
}

impl Strategy for ArbScenario {
    type Value = Scenario;

    fn generate(&self, rng: &mut TestRng) -> Scenario {
        let kind = ALL_KINDS[(rng.next_u64() % ALL_KINDS.len() as u64) as usize];
        let duration_s = draw_u32(rng, self.min_duration_s, self.max_duration_s);
        let topology = match rng.next_u64() % 4 {
            0 | 1 => Topology::TwoParty,
            2 => Topology::Multiparty {
                n: draw_u32(rng, 3, 5) as usize,
            },
            _ => Topology::Competition {
                cross: match rng.next_u64() % 3 {
                    0 => CrossTraffic::TcpUp,
                    1 => CrossTraffic::TcpDown,
                    _ => CrossTraffic::Vca(
                        ALL_KINDS[(rng.next_u64() % ALL_KINDS.len() as u64) as usize],
                    ),
                },
            },
        };
        Scenario {
            kind,
            topology,
            up: draw_profile(rng, duration_s),
            down: draw_profile(rng, duration_s),
            duration_s,
            seed: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_specs_materialize() {
        let c = ProfileSpec::Constant { cmbps: 50 }.to_profile();
        assert_eq!(c.rate_at(SimTime::from_secs(5)), 0.5e6);
        let s = ProfileSpec::Step {
            start: 100,
            at_s: 4,
            then: 50,
        }
        .to_profile();
        assert_eq!(s.rate_at(SimTime::from_secs(3)), 1e6);
        assert_eq!(s.rate_at(SimTime::from_secs(4)), 0.5e6);
        let d = ProfileSpec::Disruption {
            nominal: 100,
            reduced: 25,
            start_s: 5,
            dur_s: 3,
        }
        .to_profile();
        assert_eq!(d.rate_at(SimTime::from_secs(6)), 0.25e6);
        assert_eq!(d.rate_at(SimTime::from_secs(8)), 1e6);
    }

    #[test]
    fn generated_scenarios_are_valid() {
        let strat = arb_scenario(8, 16);
        for seed in 0..50 {
            let sc = strat.generate(&mut TestRng::seed_from_u64(seed));
            assert!(sc.duration_s >= 8 && sc.duration_s <= 16);
            // Profiles must be materializable (panics on invalid specs).
            let _ = sc.up.to_profile();
            let _ = sc.down.to_profile();
            if let Topology::Multiparty { n } = sc.topology {
                assert!((3..=5).contains(&n));
            }
        }
    }

    #[test]
    fn minimal_two_party_scenario_runs_clean() {
        let sc = Scenario {
            kind: VcaKind::Meet,
            topology: Topology::TwoParty,
            up: ProfileSpec::Constant { cmbps: 100 },
            down: ProfileSpec::Constant { cmbps: 100 },
            duration_s: 8,
            seed: 1,
        };
        let out = run_scenario(&sc);
        out.assert_clean();
        assert!(out.checks > 1_000, "expected real audit volume");
        assert!(out.summary.links.iter().any(|l| l.delivered_pkts > 0));
    }
}
