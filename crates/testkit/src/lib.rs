//! Test kit: property-based scenario fuzzing and golden-trace regression.
//!
//! The simulator's value rests on two claims the unit tests cannot carry
//! alone: that its conservation laws hold under *arbitrary* valid
//! configurations (not just the handful the experiments use), and that its
//! output is bit-stable across refactors. This crate attacks both:
//!
//! - [`scenario`] generates random-but-valid scenarios (application ×
//!   topology × rate profiles × seeds) and runs them with every invariant
//!   audit armed — the `testkit-checks` feature of the underlying crates is
//!   always on here, while release builds of the workspace compile the hook
//!   points away.
//! - [`golden`] snapshots compact, integer-exact per-link summaries of a
//!   fixed scenario matrix and compares new runs against the committed JSON
//!   fixtures with tolerance-free equality. `VCABENCH_BLESS=1` re-blesses.
//!
//! See the crate README for the bless and proptest-regression workflows.

pub mod golden;
pub mod scenario;

pub use golden::{check_golden, golden_path, LinkSummary, TraceSummary};
pub use scenario::{run_scenario, CrossTraffic, ProfileSpec, Scenario, ScenarioOutcome, Topology};
