//! # vcabench-apps
//!
//! Competing-application models for the §5 experiments: an iPerf3-style bulk
//! TCP flow, the Netflix multi-connection ABR client, and the YouTube
//! QUIC ABR client, plus the generic TCP endpoint agents they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abr;
pub mod netflix;
pub mod tcp_agents;
pub mod youtube;

pub use abr::{pick_level, AbrServer, ThroughputEstimator, DEFAULT_LEVELS};
pub use netflix::{NetflixClient, NetflixSample};
pub use tcp_agents::{TcpSenderAgent, TcpSinkAgent};
pub use youtube::YoutubeClient;
