//! The Netflix client model: segment ABR over many short TCP connections.
//!
//! The paper observes (§5.3, Fig 14): competing with Zoom on a 0.5 Mbps
//! downlink, Netflix opened **28 TCP connections** over the 120-second
//! experiment — at one point **11 in parallel** — yet still could not win
//! more than ~0.1 Mbps from Zoom. The model reproduces the mechanism: every
//! segment rides a fresh connection, and under starvation the client fans
//! the next segment out over parallel range requests.

use std::any::Any;
use std::collections::HashMap;

use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::{
    wire::{SignalMsg, TcpSegment, Wire},
    TcpReceiver,
};

use crate::abr::{
    pick_level, ThroughputEstimator, BUFFER_TARGET_S, DEFAULT_LEVELS, SEGMENT_SECONDS,
};

const TIMER_TICK: u64 = 1;
const TIMER_START: u64 = 2;
const TICK: SimDuration = SimDuration::from_millis(100);

struct Download {
    requested: u64,
    receiver: TcpReceiver,
    started_at: SimTime,
    segment: u64,
}

/// Per-second sample of the client's state (Fig 14b's connection counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetflixSample {
    /// Sample time.
    pub t: SimTime,
    /// Connections currently transferring.
    pub parallel: usize,
    /// Total connections opened so far.
    pub opened: u64,
    /// Current ladder level index.
    pub level: usize,
    /// Playback buffer, seconds.
    pub buffer_s: f64,
}

/// The Netflix streaming client.
pub struct NetflixClient {
    server: NodeId,
    /// Flow for requests/ACKs toward the server.
    pub up_flow: FlowId,
    /// When the stream starts.
    pub active_from: SimTime,
    /// When the viewer closes the tab.
    pub active_until: Option<SimTime>,
    levels: Vec<f64>,
    est: ThroughputEstimator,
    downloads: HashMap<u64, Download>,
    next_conn: u64,
    next_segment: u64,
    buffer_s: f64,
    playing: bool,
    /// Consecutive slow segments (drives the parallel fan-out).
    starved_score: u32,
    /// Total connections opened (the Fig 14b headline count).
    pub connections_opened: u64,
    /// Per-second samples.
    pub samples: Vec<NetflixSample>,
    /// Total media bytes downloaded.
    pub bytes_downloaded: u64,
    /// Rebuffer events (buffer hit zero while playing).
    pub rebuffers: u64,
    /// Completed downloads: (bytes, seconds) — diagnostics.
    pub download_log: Vec<(u64, f64)>,
}

impl NetflixClient {
    /// New client streaming from `server`, active in the given window.
    pub fn new(
        server: NodeId,
        up_flow: FlowId,
        active_from: SimTime,
        active_until: Option<SimTime>,
    ) -> Self {
        NetflixClient {
            server,
            up_flow,
            active_from,
            active_until,
            levels: DEFAULT_LEVELS.to_vec(),
            est: ThroughputEstimator::new(),
            downloads: HashMap::new(),
            next_conn: 1,
            next_segment: 0,
            buffer_s: 0.0,
            playing: false,
            starved_score: 0,
            connections_opened: 0,
            samples: Vec::new(),
            bytes_downloaded: 0,
            rebuffers: 0,
            download_log: Vec::new(),
        }
    }

    /// Current quality level.
    pub fn level(&self) -> usize {
        pick_level(&self.levels, self.est.estimate_mbps())
    }

    fn request_next_segment(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let level = self.level();
        let seg_bytes = (self.levels[level] * 1e6 / 8.0 * SEGMENT_SECONDS) as u64;
        // Fan out when starved: each consecutive slow segment doubles the
        // parallelism (capped), mirroring Netflix's observed behaviour of up
        // to 11 concurrent connections under contention.
        let parts = match self.starved_score {
            0 => 1,
            1 => 2,
            2 => 3,
            3 => 5,
            4 => 7,
            _ => 11,
        }
        .min(11);
        let per_part = (seg_bytes / parts as u64).max(20_000);
        let segment = self.next_segment;
        self.next_segment += 1;
        for _ in 0..parts {
            let conn = self.next_conn;
            self.next_conn += 1;
            self.connections_opened += 1;
            self.downloads.insert(
                conn,
                Download {
                    requested: per_part,
                    receiver: TcpReceiver::new(),
                    started_at: ctx.now,
                    segment,
                },
            );
            let msg = SignalMsg::SegmentRequest {
                conn,
                bytes: per_part,
            };
            ctx.send(self.up_flow, self.server, 120, Wire::Signal(msg));
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if let Some(until) = self.active_until {
            if ctx.now >= until {
                self.downloads.clear();
                return; // stream closed
            }
        }
        // Playback drain.
        if self.playing {
            if self.buffer_s > 0.0 {
                self.buffer_s = (self.buffer_s - TICK.as_secs_f64()).max(0.0);
            } else {
                self.rebuffers += 1;
                self.playing = false;
            }
        }
        // In-progress starvation: a segment stuck well past its duration is
        // abandoned and refetched with more parallelism (the mechanism that
        // drives Fig 14b's 11 concurrent connections — a stuck download
        // never completes and so could never raise the score by itself).
        let stuck: Vec<u64> = self
            .downloads
            .iter()
            .filter(|(_, d)| {
                ctx.now.saturating_since(d.started_at).as_secs_f64() > 3.0 * SEGMENT_SECONDS
            })
            .map(|(&c, _)| c)
            .collect();
        if !stuck.is_empty() {
            self.starved_score = (self.starved_score + 1).min(6);
            let mut refetch: Vec<u64> = Vec::new();
            for c in stuck {
                if let Some(d) = self.downloads.remove(&c) {
                    self.bytes_downloaded += d.receiver.bytes_received;
                    // An abandoned download is still a throughput sample —
                    // without it a client primed at high quality would keep
                    // requesting segments it can never finish and the
                    // ladder level would stay pinned high forever.
                    self.est.on_download(
                        d.receiver.bytes_received,
                        ctx.now.saturating_since(d.started_at),
                    );
                    if !refetch.contains(&d.segment) {
                        refetch.push(d.segment);
                    }
                }
            }
            // Refetch the abandoned segment(s); next_segment rewinds to the
            // earliest so playback order is preserved.
            if let Some(&earliest) = refetch.iter().min() {
                self.next_segment = earliest;
                self.request_next_segment(ctx);
            }
        }
        // Segment completion check.
        let done: Vec<u64> = self
            .downloads
            .iter()
            .filter(|(_, d)| d.receiver.bytes_received >= d.requested)
            .map(|(&c, _)| c)
            .collect();
        let mut finished_segments = Vec::new();
        for c in done {
            let d = self.downloads.remove(&c).expect("key exists");
            self.bytes_downloaded += d.receiver.bytes_received;
            self.est.on_download(
                d.receiver.bytes_received,
                ctx.now.saturating_since(d.started_at),
            );
            self.download_log.push((
                d.receiver.bytes_received,
                ctx.now.saturating_since(d.started_at).as_secs_f64(),
            ));
            let elapsed = ctx.now.saturating_since(d.started_at).as_secs_f64();
            if elapsed > SEGMENT_SECONDS * 2.75 {
                self.starved_score = (self.starved_score + 1).min(6);
            } else if elapsed < SEGMENT_SECONDS * 2.5 {
                self.starved_score = self.starved_score.saturating_sub(1);
            }
            finished_segments.push(d.segment);
        }
        // A segment counts once all its parts are in.
        for seg in finished_segments {
            if !self.downloads.values().any(|d| d.segment == seg) {
                self.buffer_s += SEGMENT_SECONDS;
                if self.buffer_s >= SEGMENT_SECONDS * 2.0 {
                    self.playing = true;
                }
            }
        }
        // Fetch-ahead.
        if self.downloads.is_empty() && self.buffer_s < BUFFER_TARGET_S {
            self.request_next_segment(ctx);
        }
        // Once-a-second sampling.
        if ctx.now.as_millis() % 1000 < TICK.as_millis() {
            self.samples.push(NetflixSample {
                t: ctx.now,
                parallel: self.downloads.len(),
                opened: self.connections_opened,
                level: self.level(),
                buffer_s: self.buffer_s,
            });
        }
        ctx.set_timer_after(TICK, TIMER_TICK);
    }
}

impl Agent<Wire> for NetflixClient {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.active_from > ctx.now {
            ctx.set_timer_at(self.active_from, TIMER_START);
        } else {
            ctx.set_timer_after(SimDuration::ZERO, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        if let Wire::Tcp(seg) = &pkt.payload {
            if seg.len > 0 {
                if let Some(d) = self.downloads.get_mut(&seg.conn) {
                    let ack = d.receiver.on_segment(seg.seq, seg.len);
                    let rsp = TcpSegment {
                        conn: seg.conn,
                        seq: 0,
                        len: 0,
                        ack: Some(ack),
                    };
                    ctx.send(self.up_flow, pkt.src, rsp.wire_size(), Wire::Tcp(rsp));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, timer: u64) {
        match timer {
            TIMER_START => {
                self.request_next_segment(ctx);
                ctx.set_timer_after(TICK, TIMER_TICK);
            }
            TIMER_TICK => self.tick(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::AbrServer;
    use vcabench_netsim::{LinkConfig, Network, RateProfile};

    fn stream_net(down_mbps: f64) -> (Network<Wire>, NodeId, NodeId) {
        stream_net_with(RateProfile::constant_mbps(down_mbps))
    }

    fn stream_net_with(profile: RateProfile) -> (Network<Wire>, NodeId, NodeId) {
        let mut net: Network<Wire> = Network::new();
        let client = net.add_node();
        let server = net.add_node();
        let down = LinkConfig::mbps(1.0, SimDuration::from_millis(15))
            .with_profile(profile)
            .with_queue_bytes(32 * 1024);
        let l_down = net.add_link(server, client, down);
        let l_up = net.add_link(
            client,
            server,
            LinkConfig::mbps(1000.0, SimDuration::from_millis(15)),
        );
        net.route(server, client, l_down);
        net.route(client, server, l_up);
        (net, client, server)
    }

    #[test]
    fn streams_at_high_quality_on_fat_link() {
        let (mut net, client, server) = stream_net(20.0);
        net.set_agent(
            client,
            Box::new(NetflixClient::new(server, FlowId(1), SimTime::ZERO, None)),
        );
        net.set_agent(server, Box::new(AbrServer::new(FlowId(2))));
        net.run_until(SimTime::from_secs(60));
        let c: &NetflixClient = net.agent(client);
        assert!(
            c.level() >= 3,
            "should reach a high level, got {}",
            c.level()
        );
        assert!(c.buffer_s > 5.0, "buffer built: {}", c.buffer_s);
        assert_eq!(c.rebuffers, 0);
        assert!(c.bytes_downloaded > 4_000_000);
        // One connection per segment, no starvation fan-out.
        assert!(c.starved_score <= 1);
    }

    #[test]
    fn buffer_drains_and_rebuffers_after_collapse() {
        // 30 s at 20 Mbps builds the playback buffer toward its 20 s
        // target; then the link collapses to 0.02 Mbps — far below even the
        // bottom ladder level — so playback drains the buffer at 1 s/s and
        // the client must eventually rebuffer and pin the quality floor.
        let profile = RateProfile::constant_mbps(20.0).step(SimTime::from_secs(30), 0.02 * 1e6);
        let (mut net, client, server) = stream_net_with(profile);
        net.set_agent(
            client,
            Box::new(NetflixClient::new(server, FlowId(1), SimTime::ZERO, None)),
        );
        net.set_agent(server, Box::new(AbrServer::new(FlowId(2))));
        net.run_until(SimTime::from_secs(30));
        let buffer_at_collapse = {
            let c: &NetflixClient = net.agent(client);
            assert!(c.buffer_s > 10.0, "buffer built first: {}", c.buffer_s);
            assert_eq!(c.rebuffers, 0, "healthy phase must not rebuffer");
            c.buffer_s
        };
        net.run_until(SimTime::from_secs(120));
        let c: &NetflixClient = net.agent(client);
        assert!(
            c.buffer_s < buffer_at_collapse / 2.0,
            "buffer drained: {} -> {}",
            buffer_at_collapse,
            c.buffer_s
        );
        assert!(c.rebuffers >= 1, "starved playback rebuffers");
        assert_eq!(c.level(), 0, "quality pinned at the ladder floor");
    }

    #[test]
    fn starvation_opens_parallel_connections() {
        // 0.08 Mbps for a 0.3 Mbps bottom level: chronically starved —
        // segments exceed the abandon threshold and the client fans out
        // (the §5.3 behaviour; at mild starvation it stays sequential).
        let (mut net, client, server) = stream_net(0.08);
        net.set_agent(
            client,
            Box::new(NetflixClient::new(server, FlowId(1), SimTime::ZERO, None)),
        );
        net.set_agent(server, Box::new(AbrServer::new(FlowId(2))));
        net.run_until(SimTime::from_secs(120));
        let c: &NetflixClient = net.agent(client);
        let max_parallel = c.samples.iter().map(|s| s.parallel).max().unwrap_or(0);
        assert!(
            max_parallel >= 3,
            "starved client should fan out, max parallel {max_parallel}"
        );
        assert!(
            c.connections_opened >= 10,
            "many connections over 120 s: {}",
            c.connections_opened
        );
        assert_eq!(c.level(), 0, "pinned at the bottom of the ladder");
    }
}
