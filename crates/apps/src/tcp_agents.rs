//! Generic TCP endpoint agents: a bulk sender and an acking sink.
//!
//! These wrap `vcabench-transport`'s [`Connection`]/[`TcpReceiver`] state
//! machines into network agents. The iPerf3 model (§5.2) is a bulk sender
//! with an activation window; the streaming models build on the same
//! plumbing with application logic on top.

use std::any::Any;
use std::collections::HashMap;

use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::{
    tcp::{Connection, TcpConfig},
    wire::{TcpSegment, Wire},
    TcpReceiver,
};

/// Sender tick interval (drives RTO checks and window refills).
pub const TCP_TICK: SimDuration = SimDuration::from_millis(5);
const TIMER_TICK: u64 = 1;
const TIMER_START: u64 = 2;

/// A bulk TCP sender (the iPerf3 client or any one-directional upload).
pub struct TcpSenderAgent {
    /// Connection id carried in segments.
    pub conn_id: u64,
    /// The TCP state machine.
    pub conn: Connection,
    peer: NodeId,
    flow: FlowId,
    /// When to start sending.
    pub active_from: SimTime,
    /// When to stop (no new data after this instant).
    pub active_until: Option<SimTime>,
    started: bool,
    stopped: bool,
}

impl TcpSenderAgent {
    /// Bulk sender toward `peer` on `flow`, active in the given window
    /// (`None` end = runs forever).
    pub fn new(
        conn_id: u64,
        peer: NodeId,
        flow: FlowId,
        active_from: SimTime,
        active_until: Option<SimTime>,
    ) -> Self {
        TcpSenderAgent {
            conn_id,
            conn: Connection::new(TcpConfig::default(), None),
            peer,
            flow,
            active_from,
            active_until,
            started: false,
            stopped: false,
        }
    }

    /// Bytes acknowledged end-to-end.
    pub fn bytes_acked(&self) -> u64 {
        self.conn.bytes_acked()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<vcabench_transport::SendAction>) {
        for a in actions {
            let seg = TcpSegment {
                conn: self.conn_id,
                seq: a.seq,
                len: a.len,
                ack: None,
            };
            ctx.send(self.flow, self.peer, seg.wire_size(), Wire::Tcp(seg));
        }
    }
}

impl Agent<Wire> for TcpSenderAgent {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.active_from > ctx.now {
            ctx.set_timer_at(self.active_from, TIMER_START);
        } else {
            self.started = true;
            ctx.set_timer_after(TCP_TICK, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        if self.stopped {
            return;
        }
        if let Wire::Tcp(seg) = &pkt.payload {
            if seg.conn == self.conn_id {
                if let Some(ack) = seg.ack {
                    let actions = self.conn.on_ack(ctx.now, ack);
                    self.pump(ctx, actions);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, timer: u64) {
        match timer {
            TIMER_START => {
                self.started = true;
                ctx.set_timer_after(SimDuration::ZERO, TIMER_TICK);
            }
            TIMER_TICK => {
                if let Some(until) = self.active_until {
                    if ctx.now >= until {
                        self.stopped = true;
                        return; // stop ticking: flow ends
                    }
                }
                if self.started {
                    let actions = self.conn.poll(ctx.now);
                    self.pump(ctx, actions);
                    ctx.set_timer_after(TCP_TICK, TIMER_TICK);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A TCP sink: acknowledges everything it receives, per connection id.
pub struct TcpSinkAgent {
    /// Per-connection receiver state.
    pub receivers: HashMap<u64, TcpReceiver>,
    /// Flow id used for the ACK traffic (reverse direction).
    pub ack_flow: FlowId,
}

impl TcpSinkAgent {
    /// Sink acking on `ack_flow`.
    pub fn new(ack_flow: FlowId) -> Self {
        TcpSinkAgent {
            receivers: HashMap::new(),
            ack_flow,
        }
    }

    /// Total bytes received across connections.
    pub fn total_bytes(&self) -> u64 {
        self.receivers.values().map(|r| r.bytes_received).sum()
    }
}

impl Agent<Wire> for TcpSinkAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        if let Wire::Tcp(seg) = &pkt.payload {
            if seg.len > 0 {
                let ack = self
                    .receivers
                    .entry(seg.conn)
                    .or_default()
                    .on_segment(seg.seq, seg.len);
                let rsp = TcpSegment {
                    conn: seg.conn,
                    seq: 0,
                    len: 0,
                    ack: Some(ack),
                };
                ctx.send(self.ack_flow, pkt.src, rsp.wire_size(), Wire::Tcp(rsp));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_netsim::{LinkConfig, Network, RateProfile};

    fn pipe_net(rate_mbps: f64) -> (Network<Wire>, NodeId, NodeId) {
        let mut net: Network<Wire> = Network::new();
        let a = net.add_node();
        let b = net.add_node();
        let cfg = LinkConfig::mbps(1.0, SimDuration::from_millis(10))
            .with_profile(RateProfile::constant_mbps(rate_mbps))
            .with_queue_bytes(32 * 1024);
        let l1 = net.add_link(a, b, cfg.clone());
        let l2 = net.add_link(b, a, LinkConfig::mbps(1000.0, SimDuration::from_millis(10)));
        net.route(a, b, l1);
        net.route(b, a, l2);
        (net, a, b)
    }

    #[test]
    fn bulk_sender_fills_pipe() {
        let (mut net, a, b) = pipe_net(2.0);
        net.set_agent(
            a,
            Box::new(TcpSenderAgent::new(1, b, FlowId(1), SimTime::ZERO, None)),
        );
        net.set_agent(b, Box::new(TcpSinkAgent::new(FlowId(2))));
        net.run_until(SimTime::from_secs(30));
        let sink: &TcpSinkAgent = net.agent(b);
        let goodput = sink.total_bytes() as f64 * 8.0 / 30.0 / 1e6;
        assert!(
            goodput > 1.6 && goodput < 2.05,
            "goodput {goodput} on 2 Mbps pipe"
        );
    }

    #[test]
    fn activation_window_respected() {
        let (mut net, a, b) = pipe_net(10.0);
        net.set_agent(
            a,
            Box::new(TcpSenderAgent::new(
                1,
                b,
                FlowId(1),
                SimTime::from_secs(5),
                Some(SimTime::from_secs(10)),
            )),
        );
        net.set_agent(b, Box::new(TcpSinkAgent::new(FlowId(2))));
        net.run_until(SimTime::from_secs(4));
        assert_eq!(
            net.agent::<TcpSinkAgent>(b).total_bytes(),
            0,
            "not yet active"
        );
        net.run_until(SimTime::from_secs(20));
        let sink: &TcpSinkAgent = net.agent(b);
        let bytes_at_20 = sink.total_bytes();
        assert!(bytes_at_20 > 1_000_000, "sent while active: {bytes_at_20}");
        net.run_until(SimTime::from_secs(25));
        let after = net.agent::<TcpSinkAgent>(b).total_bytes();
        // Only in-flight stragglers after the window closes.
        assert!(
            after - bytes_at_20 < 200_000,
            "tail {}",
            after - bytes_at_20
        );
    }
}
