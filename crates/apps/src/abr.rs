//! Adaptive-bitrate (ABR) streaming machinery shared by the Netflix and
//! YouTube models (§5.3).
//!
//! Both services fetch fixed-duration segments over reliable transport,
//! estimate throughput from completed downloads, and pick the highest
//! quality level the estimate supports. They differ in transport usage:
//! Netflix opens many short TCP connections (and fans out in parallel when
//! starved — Fig 14b counts 28 connections, up to 11 concurrent); YouTube
//! multiplexes one QUIC connection.

use std::any::Any;
use std::collections::HashMap;

use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::{
    tcp::{Connection, TcpConfig},
    wire::{SignalMsg, TcpSegment, Wire},
};

use crate::tcp_agents::TCP_TICK;

/// Bitrate ladder in Mbps (typical premium-VOD encodes).
pub const DEFAULT_LEVELS: [f64; 5] = [0.3, 0.7, 1.2, 2.3, 4.0];
/// Segment duration.
pub const SEGMENT_SECONDS: f64 = 4.0;
/// Playback buffer target.
pub const BUFFER_TARGET_S: f64 = 20.0;

/// Pick the highest ladder level sustainable at `est_mbps` with the standard
/// safety factor.
pub fn pick_level(levels: &[f64], est_mbps: f64) -> usize {
    let budget = est_mbps * 0.8;
    levels.iter().rposition(|&l| l <= budget).unwrap_or(0)
}

/// EWMA throughput estimator over completed downloads.
#[derive(Debug, Clone)]
pub struct ThroughputEstimator {
    est_mbps: Option<f64>,
}

impl ThroughputEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        ThroughputEstimator { est_mbps: None }
    }

    /// Record a completed download.
    pub fn on_download(&mut self, bytes: u64, elapsed: SimDuration) {
        let secs = elapsed.as_secs_f64().max(1e-3);
        let sample = bytes as f64 * 8.0 / secs / 1e6;
        self.est_mbps = Some(match self.est_mbps {
            Some(prev) => 0.6 * prev + 0.4 * sample,
            None => sample,
        });
    }

    /// Current estimate (defaults to the bottom of the ladder).
    pub fn estimate_mbps(&self) -> f64 {
        self.est_mbps.unwrap_or(DEFAULT_LEVELS[0])
    }
}

impl Default for ThroughputEstimator {
    fn default() -> Self {
        Self::new()
    }
}

/// The origin/CDN server: answers segment requests by streaming `bytes`
/// over a per-request TCP connection (Netflix) or a shared one (YouTube —
/// the client simply reuses one connection id).
pub struct AbrServer {
    /// Flow id for data toward the client.
    pub data_flow: FlowId,
    conns: HashMap<(NodeId, u64), (Connection, SimTime)>,
    cfg: TcpConfig,
}

impl AbrServer {
    /// New server sending data on `data_flow`.
    pub fn new(data_flow: FlowId) -> Self {
        AbrServer {
            data_flow,
            conns: HashMap::new(),
            cfg: TcpConfig::default(),
        }
    }

    /// Aggregate sender stats across all live connections (diagnostics).
    pub fn debug_stats(&self) -> Vec<(u64, f64, vcabench_transport::TcpStats)> {
        self.conns
            .iter()
            .map(|((_, id), (c, _))| (*id, c.cwnd(), c.stats))
            .collect()
    }

    /// New server with QUIC-ish transport (same CUBIC dynamics; kept as a
    /// separate constructor for clarity and future pacing differences).
    pub fn new_quic(data_flow: FlowId) -> Self {
        Self::new(data_flow)
    }

    fn pump(
        ctx: &mut Ctx<'_, Wire>,
        flow: FlowId,
        peer: NodeId,
        conn_id: u64,
        actions: Vec<vcabench_transport::SendAction>,
    ) {
        for a in actions {
            let seg = TcpSegment {
                conn: conn_id,
                seq: a.seq,
                len: a.len,
                ack: None,
            };
            ctx.send(flow, peer, seg.wire_size(), Wire::Tcp(seg));
        }
    }
}

impl Agent<Wire> for AbrServer {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        ctx.set_timer_after(TCP_TICK, 1);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        match &pkt.payload {
            Wire::Signal(SignalMsg::SegmentRequest { conn, bytes }) => {
                let key = (pkt.src, *conn);
                let now = ctx.now;
                let (c, last) = self
                    .conns
                    .entry(key)
                    .or_insert_with(|| (Connection::new(self.cfg.clone(), Some(0)), now));
                *last = now;
                c.enqueue(*bytes);
                let actions = c.poll(ctx.now);
                Self::pump(ctx, self.data_flow, pkt.src, *conn, actions);
            }
            Wire::Tcp(seg) => {
                if let Some(ack) = seg.ack {
                    if let Some((c, last)) = self.conns.get_mut(&(pkt.src, seg.conn)) {
                        *last = ctx.now;
                        let actions = c.on_ack(ctx.now, ack);
                        Self::pump(ctx, self.data_flow, pkt.src, seg.conn, actions);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, _timer: u64) {
        let keys: Vec<(NodeId, u64)> = self.conns.keys().copied().collect();
        for key in keys {
            let actions = self
                .conns
                .get_mut(&key)
                .map(|(c, _)| {
                    if c.abandoned() {
                        Vec::new()
                    } else {
                        c.poll(ctx.now)
                    }
                })
                .unwrap_or_default();
            Self::pump(ctx, self.data_flow, key.0, key.1, actions);
        }
        // Connections linger after completing their current request so a
        // persistent client (YouTube's single QUIC connection) can keep
        // using them — dropping early would restart sequence numbers.
        let now = ctx.now;
        self.conns.retain(|_, (c, last)| {
            let finished = c.done() || c.abandoned();
            !finished || now.saturating_since(*last) < SimDuration::from_secs(30)
        });
        ctx.set_timer_after(TCP_TICK, 1);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_picker_uses_safety_margin() {
        assert_eq!(pick_level(&DEFAULT_LEVELS, 10.0), 4);
        assert_eq!(pick_level(&DEFAULT_LEVELS, 1.0), 1); // 0.8 budget -> 0.7
        assert_eq!(pick_level(&DEFAULT_LEVELS, 0.2), 0);
        assert_eq!(pick_level(&DEFAULT_LEVELS, 3.0), 3);
    }

    #[test]
    fn quality_switches_follow_throughput() {
        // Drive estimator + picker through a bandwidth collapse and
        // recovery: the selected ladder level must ratchet down within a
        // few slow segments and climb back once downloads speed up again.
        let mut e = ThroughputEstimator::new();
        // Five fast segments: 3 MB in 4 s = 6 Mbps → top level (4.0 Mbps).
        for _ in 0..5 {
            e.on_download(3_000_000, SimDuration::from_secs(4));
        }
        assert_eq!(pick_level(&DEFAULT_LEVELS, e.estimate_mbps()), 4);
        // Collapse: 250 kB in 4 s = 0.5 Mbps. The EWMA (0.6 retain) needs a
        // handful of samples to converge; after six the pick must be at the
        // bottom of the ladder.
        let mut picks = Vec::new();
        for _ in 0..6 {
            e.on_download(250_000, SimDuration::from_secs(4));
            picks.push(pick_level(&DEFAULT_LEVELS, e.estimate_mbps()));
        }
        assert_eq!(
            *picks.last().unwrap(),
            0,
            "picks during collapse: {picks:?}"
        );
        // The downswitch is monotone — no upward flapping mid-collapse.
        assert!(picks.windows(2).all(|w| w[1] <= w[0]), "{picks:?}");
        // Recovery: fast segments again restore a high level.
        for _ in 0..6 {
            e.on_download(3_000_000, SimDuration::from_secs(4));
        }
        assert!(
            pick_level(&DEFAULT_LEVELS, e.estimate_mbps()) >= 3,
            "recovered estimate {}",
            e.estimate_mbps()
        );
    }

    #[test]
    fn estimator_ewma() {
        let mut e = ThroughputEstimator::new();
        assert_eq!(e.estimate_mbps(), DEFAULT_LEVELS[0]);
        // 1 MB in 4 s = 2 Mbps.
        e.on_download(1_000_000, SimDuration::from_secs(4));
        assert!((e.estimate_mbps() - 2.0).abs() < 1e-9);
        e.on_download(250_000, SimDuration::from_secs(4)); // 0.5 Mbps
        let est = e.estimate_mbps();
        assert!(est < 2.0 && est > 0.5, "smoothed: {est}");
    }
}
