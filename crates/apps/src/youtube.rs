//! The YouTube client model: segment ABR over a single QUIC connection.
//!
//! §5.3 pits the VCAs against YouTube, "which uses QUIC, a UDP-based
//! transport protocol, which can be TCP-friendly depending on some
//! configuration values". For bandwidth-sharing purposes the referenced
//! study (Corbel et al.) finds QUIC's CUBIC configuration competes like TCP,
//! so the model reuses the CUBIC state machine over a single long-lived
//! connection — the structural difference from Netflix (no connection
//! churn, no parallel fan-out).

use std::any::Any;

use vcabench_netsim::{Agent, Ctx, FlowId, NodeId, Packet};
use vcabench_simcore::{SimDuration, SimTime};
use vcabench_transport::{
    wire::{SignalMsg, TcpSegment, Wire},
    TcpReceiver,
};

use crate::abr::{
    pick_level, ThroughputEstimator, BUFFER_TARGET_S, DEFAULT_LEVELS, SEGMENT_SECONDS,
};

const TIMER_TICK: u64 = 1;
const TIMER_START: u64 = 2;
const TICK: SimDuration = SimDuration::from_millis(100);
/// The one QUIC connection id.
const QUIC_CONN: u64 = 9000;

/// The YouTube streaming client.
pub struct YoutubeClient {
    server: NodeId,
    /// Flow for requests/ACKs toward the server.
    pub up_flow: FlowId,
    /// Stream start time.
    pub active_from: SimTime,
    /// Stream end time.
    pub active_until: Option<SimTime>,
    receiver: TcpReceiver,
    est: ThroughputEstimator,
    /// Bytes expected by the end of the current segment (cumulative).
    expected_total: u64,
    segment_started: Option<SimTime>,
    segment_bytes: u64,
    buffer_s: f64,
    playing: bool,
    /// Total media bytes received.
    pub bytes_downloaded: u64,
    /// Rebuffer events.
    pub rebuffers: u64,
    /// Segments fetched.
    pub segments: u64,
}

impl YoutubeClient {
    /// New client streaming from `server` in the given activation window.
    pub fn new(
        server: NodeId,
        up_flow: FlowId,
        active_from: SimTime,
        active_until: Option<SimTime>,
    ) -> Self {
        YoutubeClient {
            server,
            up_flow,
            active_from,
            active_until,
            receiver: TcpReceiver::new(),
            est: ThroughputEstimator::new(),
            expected_total: 0,
            segment_started: None,
            segment_bytes: 0,
            buffer_s: 0.0,
            playing: false,
            bytes_downloaded: 0,
            rebuffers: 0,
            segments: 0,
        }
    }

    /// Current ladder level.
    pub fn level(&self) -> usize {
        pick_level(&DEFAULT_LEVELS, self.est.estimate_mbps())
    }

    fn request_segment(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let level = self.level();
        let bytes = (DEFAULT_LEVELS[level] * 1e6 / 8.0 * SEGMENT_SECONDS) as u64;
        self.expected_total += bytes;
        self.segment_started = Some(ctx.now);
        self.segment_bytes = bytes;
        self.segments += 1;
        let msg = SignalMsg::SegmentRequest {
            conn: QUIC_CONN,
            bytes,
        };
        ctx.send(self.up_flow, self.server, 120, Wire::Signal(msg));
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if let Some(until) = self.active_until {
            if ctx.now >= until {
                return;
            }
        }
        if self.playing {
            if self.buffer_s > 0.0 {
                self.buffer_s = (self.buffer_s - TICK.as_secs_f64()).max(0.0);
            } else {
                self.rebuffers += 1;
                self.playing = false;
            }
        }
        // Segment complete?
        if let Some(started) = self.segment_started {
            if self.receiver.bytes_received >= self.expected_total {
                self.est
                    .on_download(self.segment_bytes, ctx.now.saturating_since(started));
                self.bytes_downloaded = self.receiver.bytes_received;
                self.segment_started = None;
                self.buffer_s += SEGMENT_SECONDS;
                if self.buffer_s >= SEGMENT_SECONDS * 2.0 {
                    self.playing = true;
                }
            }
        }
        if self.segment_started.is_none() && self.buffer_s < BUFFER_TARGET_S {
            self.request_segment(ctx);
        }
        ctx.set_timer_after(TICK, TIMER_TICK);
    }
}

impl Agent<Wire> for YoutubeClient {
    fn start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.active_from > ctx.now {
            ctx.set_timer_at(self.active_from, TIMER_START);
        } else {
            ctx.set_timer_after(SimDuration::ZERO, TIMER_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Wire>, pkt: Packet<Wire>) {
        if let Wire::Tcp(seg) = &pkt.payload {
            if seg.len > 0 && seg.conn == QUIC_CONN {
                let ack = self.receiver.on_segment(seg.seq, seg.len);
                let rsp = TcpSegment {
                    conn: QUIC_CONN,
                    seq: 0,
                    len: 0,
                    ack: Some(ack),
                };
                ctx.send(self.up_flow, pkt.src, rsp.wire_size(), Wire::Tcp(rsp));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, timer: u64) {
        match timer {
            TIMER_START => {
                self.request_segment(ctx);
                ctx.set_timer_after(TICK, TIMER_TICK);
            }
            TIMER_TICK => self.tick(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abr::AbrServer;
    use vcabench_netsim::{LinkConfig, Network, RateProfile};

    #[test]
    fn youtube_streams_and_adapts() {
        let mut net: Network<Wire> = Network::new();
        let client = net.add_node();
        let server = net.add_node();
        let down = LinkConfig::mbps(1.0, SimDuration::from_millis(15))
            .with_profile(RateProfile::constant_mbps(3.0))
            .with_queue_bytes(32 * 1024);
        let l_down = net.add_link(server, client, down);
        let l_up = net.add_link(
            client,
            server,
            LinkConfig::mbps(1000.0, SimDuration::from_millis(15)),
        );
        net.route(server, client, l_down);
        net.route(client, server, l_up);
        net.set_agent(
            client,
            Box::new(YoutubeClient::new(server, FlowId(1), SimTime::ZERO, None)),
        );
        net.set_agent(server, Box::new(AbrServer::new_quic(FlowId(2))));
        net.run_until(SimTime::from_secs(90));
        let c: &YoutubeClient = net.agent(client);
        assert!(c.segments > 5, "segments {}", c.segments);
        assert!(c.bytes_downloaded > 3_000_000);
        // Ladder settles below the 3 Mbps link with the safety factor.
        assert!(c.level() >= 2, "level {}", c.level());
        assert!(c.level() <= 3);
        assert_eq!(c.rebuffers, 0);
    }
}
