//! A closed-form bottleneck model for exercising rate controllers without
//! the full packet simulator.
//!
//! Used by this crate's tests and benchmarks to study controller dynamics in
//! isolation: the link turns a requested send rate into loss, queueing delay,
//! and delivered rate exactly the way a drop-tail FIFO does in steady state.

use vcabench_simcore::{SimDuration, SimTime};

use crate::feedback::FeedbackReport;

/// Deterministic single-flow bottleneck approximation.
#[derive(Debug, Clone)]
pub struct SyntheticLink {
    /// Capacity, Mbps.
    pub capacity_mbps: f64,
    /// Base one-way delay, ms.
    pub base_owd_ms: f64,
    /// Maximum queueing delay before overflow, ms.
    pub max_queue_ms: f64,
    queue_ms: f64,
}

impl SyntheticLink {
    /// New link with the given capacity.
    pub fn new(capacity_mbps: f64) -> Self {
        SyntheticLink {
            capacity_mbps,
            base_owd_ms: 20.0,
            max_queue_ms: 300.0,
            queue_ms: 0.0,
        }
    }

    /// Current standing queue, in ms of delay.
    pub fn queue_ms(&self) -> f64 {
        self.queue_ms
    }

    /// Advance one interval with several flows sharing the bottleneck.
    /// Loss and queueing delay are shared; delivered rate is split in
    /// proportion to offered rates (a fluid approximation of FIFO sharing).
    pub fn step_shared(
        &mut self,
        now: SimTime,
        sends_mbps: &[f64],
        dt: SimDuration,
    ) -> Vec<FeedbackReport> {
        let total: f64 = sends_mbps.iter().sum();
        let combined = self.step(now, total, dt);
        sends_mbps
            .iter()
            .map(|&s| {
                let frac = if total > 0.0 { s / total } else { 0.0 };
                FeedbackReport {
                    receive_rate_mbps: combined.receive_rate_mbps * frac,
                    ..combined
                }
            })
            .collect()
    }

    /// Advance one interval: offer `send_mbps` for `dt`, produce feedback.
    pub fn step(&mut self, now: SimTime, send_mbps: f64, dt: SimDuration) -> FeedbackReport {
        let dt_s = dt.as_secs_f64();
        // Queue integrates the excess; drains the deficit.
        let excess = send_mbps - self.capacity_mbps;
        let d_queue_ms = excess / self.capacity_mbps * dt_s * 1000.0;
        let unclamped = self.queue_ms + d_queue_ms;
        self.queue_ms = unclamped.clamp(0.0, self.max_queue_ms);
        // Loss appears once the queue overflows.
        let overflow_ms = (unclamped - self.max_queue_ms).max(0.0);
        let offered_ms = (send_mbps / self.capacity_mbps * dt_s * 1000.0).max(1e-9);
        let loss = (overflow_ms / offered_ms).clamp(0.0, 1.0);
        let delivered = send_mbps.min(self.capacity_mbps) * (1.0 - loss).max(0.0);
        FeedbackReport {
            now,
            loss_fraction: loss,
            receive_rate_mbps: delivered.min(self.capacity_mbps),
            one_way_delay_ms: self.base_owd_ms + self.queue_ms,
            rtt: SimDuration::from_millis((2.0 * self.base_owd_ms + self.queue_ms) as u64),
            fec_recovered_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_is_clean() {
        let mut l = SyntheticLink::new(2.0);
        let r = l.step(SimTime::ZERO, 1.0, SimDuration::from_millis(100));
        assert_eq!(r.loss_fraction, 0.0);
        assert!((r.receive_rate_mbps - 1.0).abs() < 1e-9);
        assert_eq!(r.one_way_delay_ms, 20.0);
    }

    #[test]
    fn over_capacity_builds_queue_then_loses() {
        let mut l = SyntheticLink::new(1.0);
        let mut saw_delay_rise = false;
        let mut saw_loss = false;
        for i in 0..100 {
            let r = l.step(
                SimTime::from_millis(i * 100),
                2.0,
                SimDuration::from_millis(100),
            );
            if r.one_way_delay_ms > 25.0 {
                saw_delay_rise = true;
            }
            if r.loss_fraction > 0.0 {
                saw_loss = true;
            }
        }
        assert!(saw_delay_rise, "queue must grow before overflowing");
        assert!(saw_loss, "sustained overload must lose packets");
        assert!((l.queue_ms() - 300.0).abs() < 1e-6, "queue pegged at max");
    }

    #[test]
    fn queue_drains_when_idle() {
        let mut l = SyntheticLink::new(1.0);
        for i in 0..20 {
            l.step(
                SimTime::from_millis(i * 100),
                3.0,
                SimDuration::from_millis(100),
            );
        }
        assert!(l.queue_ms() > 0.0);
        for i in 20..80 {
            l.step(
                SimTime::from_millis(i * 100),
                0.2,
                SimDuration::from_millis(100),
            );
        }
        assert!(l.queue_ms() < 1.0, "queue should drain under light load");
    }
}
