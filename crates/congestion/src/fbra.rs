//! Zoom-style FEC-based probing rate control.
//!
//! The paper attributes Zoom's distinctive behaviour to congestion control in
//! the spirit of FBRA (Nagy et al., *"Congestion control using FEC for
//! conversational multimedia communication"*, MMSys 2014), combined with a
//! relay server and scalable video coding:
//!
//! * recovery after a disruption is **almost linear, then stepwise**: raise
//!   the rate, hold, raise again (Fig 4a) — the extra rate is redundant FEC,
//!   so induced loss does not hurt the user's video;
//! * probing continues **well above the nominal bitrate** before settling
//!   back, taking up to two minutes to return to steady state;
//! * the controller yields to loss only reluctantly, making Zoom highly
//!   **aggressive** under competition (Figs 8, 13, 14) — it can hold 75 % of
//!   a constrained link against another VCA, a TCP flow, or Netflix;
//! * during a constraint it tracks the available capacity closely (>85 %
//!   utilization, Fig 1a).

use vcabench_simcore::{SimDuration, SimTime};

use crate::feedback::{FeedbackReport, RateController};

/// Configuration of [`FbraController`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FbraConfig {
    /// Initial target, Mbps.
    pub start_mbps: f64,
    /// Hard floor, Mbps.
    pub min_mbps: f64,
    /// Encoder ceiling for the media payload, Mbps (720p talking head).
    pub media_max_mbps: f64,
    /// FEC overhead fraction in steady state (Zoom's relay adds ~15–25 %,
    /// §3.1 asymmetry analysis).
    pub steady_fec: f64,
    /// Maximum FEC overhead fraction while probing.
    pub probe_fec_max: f64,
    /// Linear ramp slope right after a disruption, Mbps/s.
    pub ramp_mbps_per_s: f64,
    /// Rate step added at each probe increment, Mbps.
    pub probe_step_mbps: f64,
    /// Hold time between probe increments.
    pub probe_hold: SimDuration,
    /// How long to stay at the probe ceiling before decaying.
    pub post_probe_hold: SimDuration,
    /// Decay slope back to nominal after probing, Mbps/s.
    pub decay_mbps_per_s: f64,
    /// Interval between spontaneous re-probes in steady state (Fig 13).
    pub reprobe_after: SimDuration,
    /// Multiplier on `reprobe_after` for this instance. Give each client a
    /// different jitter (e.g. drawn from the experiment RNG) so concurrent
    /// Zoom flows do not probe in lockstep — synchronized probing is a
    /// simulation artifact real deployments do not exhibit.
    pub reprobe_jitter: f64,
}

impl Default for FbraConfig {
    fn default() -> Self {
        FbraConfig {
            start_mbps: 0.15,
            min_mbps: 0.05,
            media_max_mbps: 0.68,
            steady_fec: 0.05,
            probe_fec_max: 0.60,
            ramp_mbps_per_s: 0.035,
            probe_step_mbps: 0.10,
            probe_hold: SimDuration::from_secs(6),
            post_probe_hold: SimDuration::from_secs(40),
            decay_mbps_per_s: 0.02,
            reprobe_after: SimDuration::from_secs(90),
            reprobe_jitter: 1.0,
        }
    }
}

impl FbraConfig {
    /// Nominal steady-state total rate (media ceiling + steady FEC).
    pub fn nominal_mbps(&self) -> f64 {
        self.media_max_mbps * (1.0 + self.steady_fec)
    }

    /// Probe ceiling (media ceiling + maximum FEC).
    pub fn probe_ceiling_mbps(&self) -> f64 {
        self.media_max_mbps * (1.0 + self.probe_fec_max)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Linear climb after start or a disruption.
    Ramp,
    /// Stepwise climb above nominal with elevated FEC.
    Probe,
    /// Sitting at the probe ceiling.
    ProbeHold,
    /// Decaying from the ceiling back to nominal.
    Decay,
    /// Steady state at nominal (or at the discovered capacity).
    Stay,
    /// Tracking a collapsed link during a disruption.
    Fall,
}

/// Zoom's FEC-probing controller.
#[derive(Debug, Clone)]
pub struct FbraController {
    cfg: FbraConfig,
    state: State,
    target: f64,
    /// Capacity discovered through loss, if any (None on an open link).
    capacity_estimate: Option<f64>,
    state_since: SimTime,
    last_step_at: SimTime,
    last_probe_finished: SimTime,
    /// Target when the current probe began and steps taken so far: a probe
    /// that dies on its first step reverts instead of re-anchoring to the
    /// (momentarily inflated) receive rate.
    pre_probe_target: f64,
    probe_steps: u32,
    /// Smoothed loss fraction (Stay-state decisions use this: per-interval
    /// loss samples are noisy in a way that systematically penalizes the
    /// larger of two competing flows).
    loss_ema: f64,
    clean_reports: u32,
    lossy_reports: u32,
    collapse_reports: u32,
    /// True after a Fall: the next Ramp ends in the stepwise probe phase
    /// (Fig 4a); the initial call ramp goes straight to nominal instead.
    recovering: bool,
    last_report: Option<SimTime>,
    min_bound: f64,
    max_bound: f64,
}

impl FbraController {
    /// Create a controller with the given configuration.
    pub fn new(cfg: FbraConfig) -> Self {
        FbraController {
            state: State::Ramp,
            target: cfg.start_mbps,
            capacity_estimate: None,
            state_since: SimTime::ZERO,
            last_step_at: SimTime::ZERO,
            last_probe_finished: SimTime::ZERO,
            clean_reports: 0,
            lossy_reports: 0,
            collapse_reports: 0,
            recovering: false,
            pre_probe_target: 0.0,
            probe_steps: 0,
            loss_ema: 0.0,
            last_report: None,
            min_bound: cfg.min_mbps,
            max_bound: f64::INFINITY,
            cfg,
        }
    }

    /// Current state name (diagnostics / tests).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Ramp => "ramp",
            State::Probe => "probe",
            State::ProbeHold => "probe-hold",
            State::Decay => "decay",
            State::Stay => "stay",
            State::Fall => "fall",
        }
    }

    /// Adjust the encoder media ceiling (pinned Zoom senders push ~1 Mbps
    /// regardless of call size, §6.2).
    pub fn set_media_max(&mut self, media_max_mbps: f64) {
        self.cfg.media_max_mbps = media_max_mbps.max(0.1);
    }

    /// The controller's notion of nominal total rate.
    pub fn nominal_mbps(&self) -> f64 {
        match self.capacity_estimate {
            Some(cap) => cap.min(self.cfg.nominal_mbps()),
            None => self.cfg.nominal_mbps(),
        }
    }

    fn enter(&mut self, state: State, now: SimTime) {
        if state == State::Probe && self.state != State::Probe {
            self.pre_probe_target = self.target;
            self.probe_steps = 0;
        }
        self.state = state;
        self.state_since = now;
        self.last_step_at = now;
    }
}

impl RateController for FbraController {
    fn on_report(&mut self, r: &FeedbackReport) {
        let dt = self
            .last_report
            .map(|t| r.now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.1)
            .clamp(0.0, 1.0);
        self.last_report = Some(r.now);

        self.loss_ema = 0.8 * self.loss_ema + 0.2 * r.loss_fraction;
        // Severity bookkeeping.
        if r.loss_fraction < 0.02 {
            self.clean_reports += 1;
            self.lossy_reports = 0;
        } else {
            self.clean_reports = 0;
            if r.loss_fraction > 0.05 {
                self.lossy_reports += 1;
            }
        }

        // A collapse pre-empts every state: track the delivered rate, as the
        // paper observes Zoom doing during the disruption window. A collapse
        // is heavy *sustained* loss with a receive rate far below the send
        // rate — a competitor joining the queue causes loss too, but delivery
        // stays near the send rate, and Zoom must not reset in that case (it
        // holds its ground; Fig 8c/9a).
        if r.loss_fraction > 0.40 && r.receive_rate_mbps < 0.45 * self.target {
            self.collapse_reports += 1;
        } else {
            self.collapse_reports = 0;
        }
        if self.collapse_reports >= 3 && self.state != State::Fall {
            self.capacity_estimate = Some(r.receive_rate_mbps.max(self.cfg.min_mbps));
            self.target = (r.receive_rate_mbps * 0.95).max(self.cfg.min_mbps);
            self.recovering = true;
            self.enter(State::Fall, r.now);
        }

        match self.state {
            State::Fall => {
                if r.loss_fraction > 0.15 {
                    // Keep following the link down.
                    self.target = (r.receive_rate_mbps * 0.95).max(self.cfg.min_mbps);
                } else if self.clean_reports >= 3 {
                    // Link healed (or we reached the new capacity): climb.
                    self.enter(State::Ramp, r.now);
                }
            }
            State::Ramp => {
                if self.lossy_reports >= 2 {
                    // Capacity found during the climb. Two consecutive lossy
                    // reports are required (as in Probe): a single noisy
                    // report under low *random* loss — which FEC repairs —
                    // must not anchor the target below nominal.
                    self.capacity_estimate = Some(r.receive_rate_mbps.max(self.cfg.min_mbps));
                    self.target = (r.receive_rate_mbps * 0.97).max(self.cfg.min_mbps);
                    self.enter(State::Stay, r.now);
                } else {
                    self.target += self.cfg.ramp_mbps_per_s * dt;
                    // After a disruption, switch to the stepwise probing the
                    // paper shows in Fig 4a once at roughly half of nominal.
                    // The *initial* call ramp instead climbs straight to
                    // nominal (Fig 4a's flat first minute).
                    if self.recovering && self.target >= 0.55 * self.cfg.nominal_mbps() {
                        self.enter(State::Probe, r.now);
                    } else if !self.recovering && self.target >= self.cfg.nominal_mbps() {
                        self.target = self.cfg.nominal_mbps();
                        self.last_probe_finished = r.now;
                        self.enter(State::Stay, r.now);
                    }
                }
            }
            State::Probe => {
                if self.lossy_reports >= 2 {
                    self.capacity_estimate = Some(r.receive_rate_mbps.max(self.cfg.min_mbps));
                    // A probe that hit loss before reaching the ceiling found
                    // a full link: put the target back where it was (minus a
                    // nudge) rather than re-anchor to the inflated
                    // during-probe receive rate — otherwise every failed
                    // probe ratchets competing flows toward equality and
                    // erases the incumbent advantage. Post-disruption
                    // recoveries still keep their gains: the recovery climb
                    // itself raised `pre_probe_target`.
                    self.target = if self.recovering {
                        (r.receive_rate_mbps * 0.97)
                            .min(self.cfg.nominal_mbps())
                            .max(self.cfg.min_mbps)
                    } else {
                        (self.pre_probe_target * 0.97).max(self.cfg.min_mbps)
                    };
                    self.last_probe_finished = r.now;
                    self.enter(State::Stay, r.now);
                } else if r.now.saturating_since(self.last_step_at) >= self.cfg.probe_hold {
                    self.target += self.cfg.probe_step_mbps;
                    self.probe_steps += 1;
                    self.last_step_at = r.now;
                    if self.target >= self.cfg.probe_ceiling_mbps() {
                        self.target = self.cfg.probe_ceiling_mbps();
                        self.recovering = false;
                        self.enter(State::ProbeHold, r.now);
                    }
                }
            }
            State::ProbeHold => {
                if self.lossy_reports >= 2 {
                    self.capacity_estimate = Some(r.receive_rate_mbps.max(self.cfg.min_mbps));
                    self.target = (r.receive_rate_mbps * 0.97)
                        .min(self.cfg.nominal_mbps())
                        .max(self.cfg.min_mbps);
                    self.last_probe_finished = r.now;
                    self.enter(State::Stay, r.now);
                } else if r.now.saturating_since(self.state_since) >= self.cfg.post_probe_hold {
                    // No capacity ceiling found: the link is open.
                    self.capacity_estimate = None;
                    self.enter(State::Decay, r.now);
                }
            }
            State::Decay => {
                self.target -= self.cfg.decay_mbps_per_s * dt;
                if self.target <= self.nominal_mbps() {
                    self.target = self.nominal_mbps();
                    self.last_probe_finished = r.now;
                    self.enter(State::Stay, r.now);
                }
            }
            State::Stay => {
                // Reluctant *multiplicative* yield under moderate sustained
                // loss, and multiplicative creep when clean: both preserve
                // the ratio between competing Zoom flows, which is what makes
                // the incumbent advantage of Fig 9a persist (no AIMD-style
                // convergence to fairness). Decisions use the smoothed loss.
                if self.loss_ema > 0.12 {
                    // Yield only when loss exceeds what FEC repairs — losses
                    // the redundancy covers don't degrade Zoom's video, so
                    // its controller ignores them. This tolerance is the core
                    // of Zoom's aggressiveness against competing traffic
                    // (§5: ≥75 % of the link against VCAs, TCP, and Netflix).
                    // The yield stays multiplicative (ratio-preserving).
                    let yield_per_s = 0.05 + 0.4 * (self.loss_ema - 0.12).max(0.0);
                    self.target *= 1.0 - yield_per_s * dt;
                    self.capacity_estimate = Some(
                        self.capacity_estimate
                            .map(|c| 0.9 * c + 0.1 * r.receive_rate_mbps)
                            .unwrap_or(r.receive_rate_mbps),
                    );
                } else if self.loss_ema < 0.05 {
                    // Loss at or below the steady FEC budget is repaired
                    // transparently, so the controller treats the link as
                    // clean — random loss of a couple percent must not park
                    // the target in a dead zone below nominal.
                    // A post-disruption recovery that reached Stay early
                    // (Zoom tracks the constrained link cleanly, so Fall
                    // exits during the disruption) still owes the stepwise
                    // probe of Fig 4a once it has climbed halfway back.
                    if self.recovering && self.target >= 0.55 * self.cfg.nominal_mbps() {
                        self.enter(State::Probe, r.now);
                        return;
                    }
                    // A clean link slowly restores confidence: the capacity
                    // estimate drifts upward so a constraint that has lifted
                    // is eventually rediscovered even between probes.
                    if let Some(cap) = self.capacity_estimate.as_mut() {
                        *cap *= 1.0 + 0.01 * dt;
                    }
                    // Creep back toward nominal, strictly proportionally.
                    // Both the loss yield above and this creep must preserve
                    // the *ratio* between competing Zoom flows: an additive
                    // floor here (tried earlier) turns the yield/creep cycle
                    // into AIMD, which converges to fairness and erases the
                    // incumbent advantage of Fig 9a (the paper's incumbent
                    // holds ~75 % for the whole competition). The creep aims
                    // at the configured nominal, not at the remembered
                    // capacity estimate: when the path is clean, Zoom
                    // re-contests bandwidth and lets loss (beyond FEC) be the
                    // brake. The estimate only schedules re-probes.
                    if self.target < self.cfg.nominal_mbps() {
                        let step = 0.04 * self.target * dt;
                        self.target = (self.target + step).min(self.cfg.nominal_mbps());
                    }
                    // Spontaneous re-probe to test whether a previously
                    // discovered ceiling has lifted (Fig 13's burst against
                    // iPerf3). On a link where no ceiling was ever found the
                    // controller has nothing to test and stays at nominal
                    // (Table 2's flat 0.78 Mbps average).
                    let reprobe = self
                        .cfg
                        .reprobe_after
                        .mul_f64(self.cfg.reprobe_jitter.max(0.1));
                    if self.capacity_estimate.is_some()
                        && r.now.saturating_since(self.last_probe_finished) >= reprobe
                        && r.now.saturating_since(self.state_since) >= reprobe / 2
                    {
                        self.enter(State::Probe, r.now);
                    }
                }
            }
        }

        self.target = self.target.clamp(
            self.min_bound,
            self.max_bound.min(self.cfg.probe_ceiling_mbps()),
        );
        #[cfg(feature = "testkit-checks")]
        {
            assert!(
                self.target.is_finite() && self.target >= self.min_bound,
                "FBRA target {} below floor {}",
                self.target,
                self.min_bound
            );
            assert!(
                self.target <= self.max_bound.min(self.cfg.probe_ceiling_mbps()),
                "FBRA target {} above ceiling {}",
                self.target,
                self.max_bound.min(self.cfg.probe_ceiling_mbps())
            );
            let fec = self.fec_fraction();
            assert!(
                (0.0..1.0).contains(&fec),
                "FBRA FEC fraction {fec} outside [0, 1)"
            );
        }
    }

    fn target_mbps(&self) -> f64 {
        self.target
    }

    fn set_bounds(&mut self, min_mbps: f64, max_mbps: f64) {
        self.min_bound = min_mbps;
        self.max_bound = max_mbps;
        self.target = self.target.clamp(min_mbps, max_mbps);
    }

    fn fec_fraction(&self) -> f64 {
        // Media is capped at the encoder ceiling; everything above it is FEC,
        // with at least the steady-state overhead always present.
        let media = (self.target / (1.0 + self.cfg.steady_fec)).min(self.cfg.media_max_mbps);
        if self.target <= 0.0 {
            0.0
        } else {
            ((self.target - media) / self.target).clamp(0.0, 0.95)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticLink;

    const DT: SimDuration = SimDuration::from_millis(100);

    fn drive(
        cc: &mut FbraController,
        link: &mut SyntheticLink,
        from_s: u64,
        to_s: u64,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        for i in from_s * 10..to_s * 10 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, cc.target_mbps(), DT);
            cc.on_report(&fb);
            out.push(cc.target_mbps());
        }
        out
    }

    #[test]
    fn settles_at_nominal_on_open_link() {
        let cfg = FbraConfig::default();
        let nominal = cfg.nominal_mbps();
        let mut cc = FbraController::new(cfg);
        let mut link = SyntheticLink::new(1000.0);
        let rates = drive(&mut cc, &mut link, 0, 240);
        let last = *rates.last().unwrap();
        assert!(
            (last - nominal).abs() < 0.05,
            "expected nominal {nominal}, got {last}"
        );
        // The *initial* ramp must NOT run the stepwise probe: the paper's
        // Fig 4a shows a flat first minute at nominal. (The probe overshoot
        // is exercised by the disruption-recovery test.)
        let peak = rates.iter().cloned().fold(0.0, f64::max);
        assert!(peak <= nominal * 1.1, "initial ramp overshot: peak {peak}");
    }

    #[test]
    fn tracks_constrained_capacity_efficiently() {
        let mut cc = FbraController::new(FbraConfig::default());
        let mut link = SyntheticLink::new(0.5);
        let rates = drive(&mut cc, &mut link, 0, 150);
        let late = &rates[rates.len() - 300..];
        let avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            avg > 0.40 && avg < 0.60,
            "should utilize >80% of a 0.5 Mbps link, got {avg}"
        );
    }

    #[test]
    fn disruption_recovery_is_stepwise_and_slow() {
        let cfg = FbraConfig::default();
        let nominal = cfg.nominal_mbps();
        let mut cc = FbraController::new(cfg);
        let mut link = SyntheticLink::new(1000.0);
        drive(&mut cc, &mut link, 0, 240); // settle
        link.capacity_mbps = 0.25;
        drive(&mut cc, &mut link, 240, 270); // 30 s disruption
        assert!(
            cc.target_mbps() < 0.3,
            "should track the collapsed link, at {}",
            cc.target_mbps()
        );
        link.capacity_mbps = 1000.0;
        let rec = drive(&mut cc, &mut link, 270, 470);
        let t_nominal = rec
            .iter()
            .position(|&r| r >= nominal)
            .map(|i| i as f64 * 0.1)
            .expect("must eventually recover");
        assert!(
            t_nominal > 15.0,
            "severe recovery should be slow, took {t_nominal}s"
        );
        // Overshoot after recovery (probing above nominal).
        let peak = rec.iter().cloned().fold(0.0, f64::max);
        assert!(peak > nominal * 1.15, "peak {peak}");
        // And eventually settles back to nominal.
        let last = *rec.last().unwrap();
        assert!((last - nominal).abs() < 0.08, "settled at {last}");
    }

    #[test]
    fn incumbent_beats_newcomer() {
        // Fig 9a: Zoom is not even fair to itself.
        let mut a = FbraController::new(FbraConfig {
            reprobe_jitter: 0.9,
            ..FbraConfig::default()
        });
        let mut b = FbraController::new(FbraConfig {
            reprobe_jitter: 1.3,
            ..FbraConfig::default()
        });
        let mut link = SyntheticLink::new(0.5);
        // Incumbent converges alone for 60 s.
        for i in 0..600 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, a.target_mbps(), DT);
            a.on_report(&fb);
        }
        // Competitor joins for 120 s.
        let mut a_sum = 0.0;
        let mut b_sum = 0.0;
        for i in 600..1800 {
            let now = SimTime::from_millis(i * 100);
            let fbs = link.step_shared(now, &[a.target_mbps(), b.target_mbps()], DT);
            a.on_report(&fbs[0]);
            b.on_report(&fbs[1]);
            if i > 1200 {
                a_sum += a.target_mbps();
                b_sum += b.target_mbps();
            }
        }
        let share = a_sum / (a_sum + b_sum);
        assert!(share > 0.6, "incumbent Zoom should dominate, share {share}");
    }

    #[test]
    fn fec_fraction_rises_when_probing() {
        // Probing (and its FEC boost) only happens after a disruption; the
        // initial ramp goes straight to nominal with steady FEC.
        let cfg = FbraConfig::default();
        let mut cc = FbraController::new(cfg.clone());
        let mut link = SyntheticLink::new(1000.0);
        drive(&mut cc, &mut link, 0, 120);
        let steady = cfg.steady_fec / (1.0 + cfg.steady_fec);
        assert!(
            (cc.fec_fraction() - steady).abs() < 0.05,
            "pre-disruption FEC {} vs steady {steady}",
            cc.fec_fraction()
        );
        // Disrupt and restore: the recovery probe boosts FEC well above
        // the steady overhead.
        link.capacity_mbps = 0.25;
        drive(&mut cc, &mut link, 120, 150);
        link.capacity_mbps = 1000.0;
        let mut max_fec: f64 = 0.0;
        for i in 1500..3500 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, cc.target_mbps(), DT);
            cc.on_report(&fb);
            max_fec = max_fec.max(cc.fec_fraction());
        }
        assert!(
            max_fec > steady + 0.1,
            "recovery probing must boost FEC, max {max_fec}"
        );
        // And it settles back to steady afterwards.
        assert!(
            (cc.fec_fraction() - steady).abs() < 0.05,
            "post-probe FEC {} vs steady {steady}",
            cc.fec_fraction()
        );
    }

    #[test]
    fn set_bounds_respected() {
        let mut cc = FbraController::new(FbraConfig::default());
        cc.set_bounds(0.1, 0.3);
        let mut link = SyntheticLink::new(1000.0);
        let rates = drive(&mut cc, &mut link, 0, 60);
        assert!(rates.iter().all(|&r| r <= 0.3 + 1e-9));
    }
}
