//! Teams-style conservative loss-based rate control.
//!
//! The paper's observations about Microsoft Teams' proprietary controller:
//!
//! * a **high nominal bitrate** (~1.4–1.9 Mbps, Table 2) with visibly more
//!   run-to-run variability than Meet or Zoom (the wide CIs in Fig 1);
//! * a **sharp backoff** on congestion followed by a **slow linear phase**
//!   "immediately after the interruption before increasing quickly back to
//!   normal" (Fig 4a) — giving Teams the longest recovery times (Figs 4b, 5b);
//! * extreme **passivity against TCP** (Fig 12: ≤37 % of a 2 Mbps uplink,
//!   ≤20 % of the downlink) and against other VCAs on the downlink (Fig 10),
//!   because every loss event triggers another backoff-and-slow-climb cycle;
//! * **end-to-end control** through a dumb relay: the far sender reduces its
//!   rate to what the receiver can take and must re-probe after a disruption
//!   (Fig 6) — modelled in the `vca` crate by wiring this controller at the
//!   sending client rather than at the server.

use vcabench_simcore::{SimDuration, SimRng, SimTime};

use crate::feedback::{FeedbackReport, RateController};

/// Configuration of [`TeamsController`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TeamsConfig {
    /// Initial target, Mbps.
    pub start_mbps: f64,
    /// Hard floor, Mbps.
    pub min_mbps: f64,
    /// Center of the nominal band, Mbps.
    pub nominal_mbps: f64,
    /// Amplitude of the slow nominal oscillation, Mbps (run-to-run
    /// variability the paper observes for Teams).
    pub osc_amplitude_mbps: f64,
    /// Period of the nominal oscillation.
    pub osc_period: SimDuration,
    /// Loss fraction that triggers a backoff.
    pub loss_threshold: f64,
    /// Multiplier applied to the receive rate on backoff.
    pub backoff_factor: f64,
    /// Duration of the slow (linear) recovery phase.
    pub slow_phase: SimDuration,
    /// Slope of the slow phase, Mbps/s.
    pub slow_mbps_per_s: f64,
    /// Multiplicative climb per second in the fast phase.
    pub fast_per_s: f64,
}

impl Default for TeamsConfig {
    fn default() -> Self {
        TeamsConfig {
            start_mbps: 0.8,
            min_mbps: 0.10,
            nominal_mbps: 1.65,
            osc_amplitude_mbps: 0.25,
            osc_period: SimDuration::from_secs(47),
            loss_threshold: 0.02,
            backoff_factor: 0.6,
            slow_phase: SimDuration::from_secs(8),
            slow_mbps_per_s: 0.02,
            fast_per_s: 0.15,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Climbing after start or a backoff: first linear, then multiplicative.
    Recover,
    /// At nominal, tracking the oscillating set-point.
    Track,
}

/// The Teams-style controller.
#[derive(Debug, Clone)]
pub struct TeamsController {
    cfg: TeamsConfig,
    state: State,
    target: f64,
    backoff_at: Option<SimTime>,
    phase: f64,
    last_report: Option<SimTime>,
    min_bound: f64,
    max_bound: f64,
}

impl TeamsController {
    /// Create a controller; `rng` seeds the oscillator phase so repeated
    /// runs reproduce the paper's run-to-run variability deterministically.
    pub fn new(cfg: TeamsConfig, rng: &mut SimRng) -> Self {
        let phase = rng.uniform() * std::f64::consts::TAU;
        TeamsController {
            state: State::Recover,
            target: cfg.start_mbps,
            backoff_at: None,
            phase,
            last_report: None,
            min_bound: cfg.min_mbps,
            max_bound: f64::INFINITY,
            cfg,
        }
    }

    /// The oscillating nominal set-point at time `t`.
    pub fn setpoint_mbps(&self, t: SimTime) -> f64 {
        let w = std::f64::consts::TAU / self.cfg.osc_period.as_secs_f64();
        self.cfg.nominal_mbps
            + self.cfg.osc_amplitude_mbps * (w * t.as_secs_f64() + self.phase).sin()
    }

    /// Whether the controller is in its post-backoff recovery.
    pub fn recovering(&self) -> bool {
        self.state == State::Recover
    }

    /// Current state name (diagnostics / telemetry).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Recover => "recover",
            State::Track => "track",
        }
    }

    /// Move the nominal set-point (used for Teams' pinned-sender behaviour,
    /// whose uplink grows with call size — §6.2).
    pub fn set_nominal(&mut self, nominal_mbps: f64) {
        self.cfg.nominal_mbps = nominal_mbps.max(self.cfg.min_mbps);
    }
}

impl RateController for TeamsController {
    fn on_report(&mut self, r: &FeedbackReport) {
        let dt = self
            .last_report
            .map(|t| r.now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.1)
            .clamp(0.0, 1.0);
        self.last_report = Some(r.now);

        // Any loss above the (low) threshold causes a sharp backoff. This
        // hair-trigger is what makes Teams passive against TCP and on
        // contended downlinks.
        if r.loss_fraction > self.cfg.loss_threshold {
            let floor = (self.cfg.backoff_factor * r.receive_rate_mbps).max(self.cfg.min_mbps);
            if floor < self.target {
                self.target = floor;
            }
            self.backoff_at = Some(r.now);
            self.state = State::Recover;
        } else {
            match self.state {
                State::Recover => {
                    let since = self
                        .backoff_at
                        .map(|t| r.now.saturating_since(t))
                        .unwrap_or(SimDuration::MAX);
                    if since < self.cfg.slow_phase {
                        // The paper's "increases the upstream bitrate slowly
                        // immediately after the interruption".
                        self.target += self.cfg.slow_mbps_per_s * dt;
                    } else {
                        // "...before increasing quickly back to normal".
                        self.target *= 1.0 + self.cfg.fast_per_s * dt;
                    }
                    if self.target >= self.setpoint_mbps(r.now) {
                        self.state = State::Track;
                    }
                }
                State::Track => {
                    // Chase the oscillating set-point with a low-pass filter.
                    let sp = self.setpoint_mbps(r.now);
                    self.target += (sp - self.target) * (0.5 * dt).min(1.0);
                }
            }
        }

        self.target = self.target.clamp(self.min_bound, self.max_bound);
        #[cfg(feature = "testkit-checks")]
        {
            assert!(
                self.target.is_finite()
                    && self.target >= self.min_bound
                    && self.target <= self.max_bound,
                "Teams target {} outside [{}, {}]",
                self.target,
                self.min_bound,
                self.max_bound
            );
        }
    }

    fn target_mbps(&self) -> f64 {
        self.target
    }

    fn set_bounds(&mut self, min_mbps: f64, max_mbps: f64) {
        self.min_bound = min_mbps;
        self.max_bound = max_mbps;
        self.target = self.target.clamp(min_mbps, max_mbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticLink;

    const DT: SimDuration = SimDuration::from_millis(100);

    fn new_cc(seed: u64) -> TeamsController {
        let mut rng = SimRng::seed_from_u64(seed);
        TeamsController::new(TeamsConfig::default(), &mut rng)
    }

    fn drive(
        cc: &mut TeamsController,
        link: &mut SyntheticLink,
        from_s: u64,
        to_s: u64,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        for i in from_s * 10..to_s * 10 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, cc.target_mbps(), DT);
            cc.on_report(&fb);
            out.push(cc.target_mbps());
        }
        out
    }

    #[test]
    fn reaches_high_nominal_band_and_oscillates() {
        let mut cc = new_cc(1);
        let mut link = SyntheticLink::new(1000.0);
        let rates = drive(&mut cc, &mut link, 0, 180);
        let late = &rates[rates.len() - 600..];
        let avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
        assert!((1.3..=2.0).contains(&avg), "nominal band, got {avg}");
        let min = late.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = late.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.2, "should oscillate visibly: {min}..{max}");
    }

    #[test]
    fn phase_differs_across_seeds() {
        let a = new_cc(1);
        let b = new_cc(2);
        let t = SimTime::from_secs(10);
        assert!((a.setpoint_mbps(t) - b.setpoint_mbps(t)).abs() > 1e-6);
    }

    #[test]
    fn backoff_then_slow_then_fast_recovery() {
        let mut cc = new_cc(3);
        let mut link = SyntheticLink::new(1000.0);
        drive(&mut cc, &mut link, 0, 120);
        let before = cc.target_mbps();
        // 30 s crush to 0.25 Mbps.
        link.capacity_mbps = 0.25;
        drive(&mut cc, &mut link, 120, 150);
        assert!(cc.target_mbps() < 0.4, "crushed to {}", cc.target_mbps());
        link.capacity_mbps = 1000.0;
        let rec = drive(&mut cc, &mut link, 150, 300);
        // Slow phase: after 5 s we must still be way below nominal.
        assert!(
            rec[50] < 0.6,
            "recovery must start slowly, at 5 s rate was {}",
            rec[50]
        );
        // Eventually recovers to the pre-disruption band.
        let t_rec = rec
            .iter()
            .position(|&v| v >= before * 0.9)
            .map(|i| i as f64 * 0.1)
            .expect("must recover");
        assert!(
            t_rec > 15.0 && t_rec < 120.0,
            "Teams recovery should be slow but finite: {t_rec}s"
        );
    }

    #[test]
    fn persistent_loss_keeps_teams_pinned_low() {
        // Against a competitor that keeps the queue overflowing, Teams keeps
        // backing off (the Fig 12 passivity).
        let mut cc = new_cc(4);
        let mut link = SyntheticLink::new(2.0);
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..1800 {
            let now = SimTime::from_millis(i * 100);
            // Background flow pushes 2.2 Mbps regardless (bulk TCP-ish).
            let fbs = link.step_shared(now, &[cc.target_mbps(), 2.2], DT);
            cc.on_report(&fbs[0]);
            if i > 900 {
                sum += cc.target_mbps();
                n += 1;
            }
        }
        let avg = sum / n as f64;
        assert!(avg < 0.9, "Teams must stay passive under loss, got {avg}");
    }

    #[test]
    fn bounds_clamp_target() {
        let mut cc = new_cc(5);
        cc.set_bounds(0.2, 0.9);
        let mut link = SyntheticLink::new(1000.0);
        let rates = drive(&mut cc, &mut link, 0, 60);
        assert!(rates
            .iter()
            .all(|&v| (0.2 - 1e-9..=0.9 + 1e-9).contains(&v)));
    }
}
