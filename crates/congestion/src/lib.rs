//! # vcabench-congestion
//!
//! Rate controllers for real-time media, one per VCA studied in the paper:
//!
//! | VCA   | Controller | Basis |
//! |-------|-----------|-------|
//! | Meet  | [`GccController`] | Google Congestion Control (delay-gradient + loss bound), per Carlucci et al. and the WebRTC implementation Meet runs in Chrome |
//! | Zoom  | [`FbraController`] | FEC-based probing in the style of FBRA (Nagy et al.), matching the stepwise ramps, above-nominal probing, and competition aggressiveness the paper measures |
//! | Teams | [`TeamsController`] | conservative loss-based control with sharp backoff and a slow-then-fast recovery, matching Figs 4–6 and Teams' passivity in §5 |
//!
//! All controllers consume the same [`FeedbackReport`] stream and expose the
//! [`RateController`] trait; [`synthetic::SyntheticLink`] provides a
//! closed-form bottleneck for studying them in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fbra;
pub mod feedback;
pub mod gcc;
pub mod synthetic;
pub mod teams;

pub use fbra::{FbraConfig, FbraController};
pub use feedback::{FeedbackReport, RateController};
pub use gcc::{GccConfig, GccController, Signal, TrendlineDetector};
pub use synthetic::SyntheticLink;
pub use teams::{TeamsConfig, TeamsController};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vcabench_simcore::{SimDuration, SimRng, SimTime};

    fn arbitrary_report(i: u64, loss: f64, rate: f64, owd: f64) -> FeedbackReport {
        FeedbackReport {
            now: SimTime::from_millis(i * 100),
            loss_fraction: loss,
            receive_rate_mbps: rate,
            one_way_delay_ms: owd,
            rtt: SimDuration::from_millis(40),
            fec_recovered_fraction: 0.0,
        }
    }

    proptest! {
        /// Every controller's target stays within its configured bounds no
        /// matter what feedback it ingests.
        #[test]
        fn targets_respect_bounds(
            losses in proptest::collection::vec(0.0f64..0.8, 50..150),
            rates in proptest::collection::vec(0.01f64..5.0, 50..150),
            owds in proptest::collection::vec(5.0f64..400.0, 50..150),
        ) {
            let mut rng = SimRng::seed_from_u64(1);
            let mut ctrls: Vec<Box<dyn RateController>> = vec![
                Box::new(GccController::new(GccConfig::default())),
                Box::new(FbraController::new(FbraConfig::default())),
                Box::new(TeamsController::new(TeamsConfig::default(), &mut rng)),
            ];
            for c in ctrls.iter_mut() {
                c.set_bounds(0.05, 3.0);
            }
            let n = losses.len().min(rates.len()).min(owds.len());
            for i in 0..n {
                for c in ctrls.iter_mut() {
                    c.on_report(&arbitrary_report(i as u64, losses[i], rates[i], owds[i]));
                    let t = c.target_mbps();
                    prop_assert!((0.05..=3.0).contains(&t), "target {t} out of bounds");
                    prop_assert!(t.is_finite());
                    let f = c.fec_fraction();
                    prop_assert!((0.0..1.0).contains(&f), "fec fraction {f}");
                }
            }
        }

        /// The synthetic link conserves sanity: loss in [0,1], delivery never
        /// exceeds capacity, delay includes the base.
        #[test]
        fn synthetic_link_invariants(sends in proptest::collection::vec(0.0f64..10.0, 1..100)) {
            let mut link = SyntheticLink::new(1.0);
            for (i, &s) in sends.iter().enumerate() {
                let fb = link.step(SimTime::from_millis(i as u64 * 100), s, SimDuration::from_millis(100));
                prop_assert!((0.0..=1.0).contains(&fb.loss_fraction));
                prop_assert!(fb.receive_rate_mbps <= 1.0 + 1e-9);
                prop_assert!(fb.one_way_delay_ms >= link.base_owd_ms - 1e-9);
            }
        }
    }
}

#[cfg(test)]
mod cross_tests {
    //! Cross-controller comparisons that encode the paper's rankings.
    use super::*;
    use vcabench_simcore::{SimDuration, SimRng, SimTime};

    const DT: SimDuration = SimDuration::from_millis(100);

    fn drive(
        cc: &mut dyn RateController,
        link: &mut SyntheticLink,
        from_s: u64,
        to_s: u64,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        for i in from_s * 10..to_s * 10 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, cc.target_mbps(), DT);
            cc.on_report(&fb);
            out.push(cc.target_mbps());
        }
        out
    }

    /// Time (s) from restoration until the controller regains 90 % of its
    /// pre-disruption rate.
    fn recovery_secs(cc: &mut dyn RateController, sev_mbps: f64) -> f64 {
        let mut link = SyntheticLink::new(1000.0);
        drive(cc, &mut link, 0, 240);
        let before = cc.target_mbps();
        link.capacity_mbps = sev_mbps;
        drive(cc, &mut link, 240, 270);
        link.capacity_mbps = 1000.0;
        let rec = drive(cc, &mut link, 270, 470);
        rec.iter()
            .position(|&v| v >= 0.9 * before)
            .map(|i| i as f64 * 0.1)
            .unwrap_or(f64::INFINITY)
    }

    #[test]
    fn all_controllers_take_long_to_recover_from_severe_drop() {
        // §4 headline: "all VCAs take at least 20 seconds to recover from
        // severe uplink drops to 0.25 Mbps". At controller level we check
        // all are slow (>10 s) and finite.
        let mut rng = SimRng::seed_from_u64(42);
        let mut meet = GccController::new(GccConfig {
            max_mbps: 0.96,
            ..GccConfig::default()
        });
        let mut zoom = FbraController::new(FbraConfig::default());
        let mut teams = TeamsController::new(TeamsConfig::default(), &mut rng);
        let t_meet = recovery_secs(&mut meet, 0.25);
        let t_zoom = recovery_secs(&mut zoom, 0.25);
        let t_teams = recovery_secs(&mut teams, 0.25);
        for (name, t) in [("meet", t_meet), ("zoom", t_zoom), ("teams", t_teams)] {
            assert!(t.is_finite(), "{name} never recovered");
            assert!(t > 10.0, "{name} recovered implausibly fast: {t}s");
        }
        // Teams' nominal is the highest, so it has the most ground to cover.
        assert!(t_teams > t_meet, "teams {t_teams} vs meet {t_meet}");
    }

    #[test]
    fn zoom_dominates_meet_under_competition() {
        // Fig 8a: an incumbent Meet backs off when Zoom joins.
        let mut meet = GccController::new(GccConfig {
            max_mbps: 0.96,
            ..GccConfig::default()
        });
        let mut zoom = FbraController::new(FbraConfig::default());
        let mut link = SyntheticLink::new(0.5);
        for i in 0..600 {
            let now = SimTime::from_millis(i * 100);
            let fb = link.step(now, meet.target_mbps(), DT);
            meet.on_report(&fb);
        }
        let mut meet_sum = 0.0;
        let mut zoom_sum = 0.0;
        for i in 600..2400 {
            let now = SimTime::from_millis(i * 100);
            let fbs = link.step_shared(now, &[meet.target_mbps(), zoom.target_mbps()], DT);
            meet.on_report(&fbs[0]);
            zoom.on_report(&fbs[1]);
            if i > 1800 {
                meet_sum += meet.target_mbps();
                zoom_sum += zoom.target_mbps();
            }
        }
        let zoom_share = zoom_sum / (zoom_sum + meet_sum);
        assert!(
            zoom_share > 0.5,
            "Zoom must win against delay-based Meet even as newcomer: {zoom_share}"
        );
    }

    #[test]
    fn nominal_rate_ordering_matches_table2() {
        // Teams > Meet ≈ Zoom on an open link.
        let mut rng = SimRng::seed_from_u64(7);
        let mut meet = GccController::new(GccConfig {
            max_mbps: 0.96,
            ..GccConfig::default()
        });
        let mut zoom = FbraController::new(FbraConfig::default());
        let mut teams = TeamsController::new(TeamsConfig::default(), &mut rng);
        let mut l1 = SyntheticLink::new(1000.0);
        let mut l2 = SyntheticLink::new(1000.0);
        let mut l3 = SyntheticLink::new(1000.0);
        let m = drive(&mut meet, &mut l1, 0, 240);
        let z = drive(&mut zoom, &mut l2, 0, 240);
        let t = drive(&mut teams, &mut l3, 0, 240);
        let avg = |v: &[f64]| v[v.len() - 300..].iter().sum::<f64>() / 300.0;
        let (am, az, at) = (avg(&m), avg(&z), avg(&t));
        assert!(at > am && at > az, "Teams highest: t={at} m={am} z={az}");
        assert!((am - 0.96).abs() < 0.15, "Meet ~0.96: {am}");
        assert!((az - 0.78).abs() < 0.15, "Zoom ~0.78: {az}");
    }
}
