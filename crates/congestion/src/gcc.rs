//! Google Congestion Control (GCC) — the WebRTC algorithm Meet uses.
//!
//! Implemented from Carlucci et al., *"Analysis and design of the google
//! congestion control for web real-time communication"* (MMSys 2016), the
//! reference the paper cites for Meet's behaviour:
//!
//! * a **trendline filter** estimates the gradient of one-way queueing delay;
//! * an **adaptive-threshold overuse detector** turns the gradient into
//!   overuse / normal / underuse signals;
//! * an **AIMD rate controller** (multiplicative increase ~8 %/s far from
//!   convergence, additive near it; multiplicative decrease to
//!   0.85 × receive rate) reacts to the signals;
//! * a **loss-based bound** caps the rate when loss exceeds 10 %.
//!
//! Being delay-based, GCC keeps queues short — and therefore yields to
//! loss-based competitors (Zoom) while sharing fairly with itself, exactly
//! the competition behaviour in §5 of the measurement paper.

use std::collections::VecDeque;

use vcabench_simcore::SimTime;

use crate::feedback::{FeedbackReport, RateController};

/// Overuse detector output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Queueing delay rising beyond threshold.
    Overuse,
    /// Queueing delay falling: queues draining.
    Underuse,
    /// Steady.
    Normal,
}

/// Trendline estimator + adaptive-threshold detector over one-way delay.
#[derive(Debug, Clone)]
pub struct TrendlineDetector {
    window: usize,
    samples: VecDeque<(f64, f64)>, // (time s, owd ms)
    threshold_ms_per_s: f64,
    overuse_count: u32,
    last_update_s: Option<f64>,
}

impl TrendlineDetector {
    /// Detector with a `window`-sample regression.
    pub fn new(window: usize) -> Self {
        TrendlineDetector {
            window,
            samples: VecDeque::new(),
            threshold_ms_per_s: 10.0,
            overuse_count: 0,
            last_update_s: None,
        }
    }

    /// Least-squares slope of the delay samples, ms per second.
    pub fn slope(&self) -> f64 {
        let n = self.samples.len();
        if n < 3 {
            return 0.0;
        }
        let mean_t = self.samples.iter().map(|s| s.0).sum::<f64>() / n as f64;
        let mean_d = self.samples.iter().map(|s| s.1).sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for &(t, d) in &self.samples {
            num += (t - mean_t) * (d - mean_d);
            den += (t - mean_t) * (t - mean_t);
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Feed one delay sample; returns the detector signal.
    pub fn update(&mut self, now: SimTime, owd_ms: f64) -> Signal {
        let t = now.as_secs_f64();
        self.samples.push_back((t, owd_ms));
        while self.samples.len() > self.window {
            self.samples.pop_front();
        }
        let slope = self.slope();

        // Adaptive threshold (WebRTC-style): the threshold chases |slope|,
        // rising quickly (k_u) and decaying slowly (k_d), bounded to keep the
        // detector sane.
        let dt = self
            .last_update_s
            .map(|last| (t - last).clamp(0.0, 1.0))
            .unwrap_or(0.0);
        self.last_update_s = Some(t);
        let k = if slope.abs() > self.threshold_ms_per_s {
            0.087
        } else {
            0.039
        };
        self.threshold_ms_per_s += k * (slope.abs() - self.threshold_ms_per_s) * dt * 10.0;
        // Floor calibrated to the serialization-jitter of sub-Mbps access
        // links (one 1.1 kB packet at 0.8 Mbps is 11 ms): below it the
        // detector would chase per-packet noise instead of standing queues.
        self.threshold_ms_per_s = self.threshold_ms_per_s.clamp(8.0, 60.0);

        if slope > self.threshold_ms_per_s {
            self.overuse_count += 1;
            if self.overuse_count >= 2 {
                return Signal::Overuse;
            }
            Signal::Normal
        } else if slope < -self.threshold_ms_per_s {
            self.overuse_count = 0;
            Signal::Underuse
        } else {
            self.overuse_count = 0;
            Signal::Normal
        }
    }
}

/// Rate-controller state (per the GCC state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Increase,
    Hold,
    Decrease,
}

/// Configuration of [`GccController`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GccConfig {
    /// Initial target, Mbps.
    pub start_mbps: f64,
    /// Hard floor, Mbps (WebRTC uses ~50 kbps; video becomes unusable below).
    pub min_mbps: f64,
    /// Hard ceiling, Mbps (the encoder's maximum useful bitrate).
    pub max_mbps: f64,
    /// Multiplicative increase per second when far from convergence.
    pub eta_per_s: f64,
    /// Additive increase per second near convergence, Mbps/s.
    pub additive_mbps_per_s: f64,
    /// Decrease factor applied to the receive rate on overuse.
    pub beta: f64,
    /// Trendline regression window, samples.
    pub window: usize,
}

impl Default for GccConfig {
    fn default() -> Self {
        GccConfig {
            start_mbps: 0.3,
            min_mbps: 0.05,
            max_mbps: 2.0,
            eta_per_s: 0.08,
            additive_mbps_per_s: 0.10,
            beta: 0.85,
            window: 10,
        }
    }
}

/// The GCC delay + loss rate controller.
///
/// ```
/// use vcabench_congestion::{GccConfig, GccController, RateController, SyntheticLink};
/// use vcabench_simcore::{SimDuration, SimTime};
///
/// let mut cc = GccController::new(GccConfig::default());
/// let mut link = SyntheticLink::new(1.0); // a 1 Mbps bottleneck
/// for i in 0..600 {
///     let fb = link.step(
///         SimTime::from_millis(i * 100),
///         cc.target_mbps(),
///         SimDuration::from_millis(100),
///     );
///     cc.on_report(&fb);
/// }
/// let t = cc.target_mbps();
/// assert!(t > 0.7 && t < 1.3, "converges near capacity: {t}");
/// ```
#[derive(Debug, Clone)]
pub struct GccController {
    cfg: GccConfig,
    detector: TrendlineDetector,
    state: State,
    target: f64,
    /// EMA of the receive rate around decreases: the "link capacity" anchor
    /// used to decide near-convergence.
    avg_max_mbps: Option<f64>,
    last_report: Option<SimTime>,
    hold_until: Option<SimTime>,
    last_decrease: Option<SimTime>,
    /// Smoothed receive rate (decreases anchor to this, not to the noisy
    /// instantaneous 100 ms sample).
    recv_ema: Option<f64>,
    /// Most recent detector signal (diagnostics / telemetry).
    last_signal: Signal,
}

impl GccController {
    /// Create a controller with the given configuration.
    pub fn new(cfg: GccConfig) -> Self {
        let target = cfg.start_mbps.clamp(cfg.min_mbps, cfg.max_mbps);
        GccController {
            detector: TrendlineDetector::new(cfg.window),
            state: State::Increase,
            target,
            avg_max_mbps: None,
            last_report: None,
            hold_until: None,
            last_decrease: None,
            recv_ema: None,
            last_signal: Signal::Normal,
            cfg,
        }
    }

    /// Current state name (diagnostics / telemetry).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Increase => "increase",
            State::Hold => "hold",
            State::Decrease => "decrease",
        }
    }

    /// Most recent detector signal name (diagnostics / telemetry).
    pub fn signal_name(&self) -> &'static str {
        match self.last_signal {
            Signal::Overuse => "overuse",
            Signal::Underuse => "underuse",
            Signal::Normal => "normal",
        }
    }

    /// Detector signal handling → state machine transition.
    fn transition(&mut self, signal: Signal, now: SimTime) {
        self.last_signal = signal;
        match signal {
            Signal::Overuse => self.state = State::Decrease,
            Signal::Underuse => {
                self.state = State::Hold;
                self.hold_until = Some(now + vcabench_simcore::SimDuration::from_millis(300));
            }
            Signal::Normal => {
                if self.state == State::Decrease {
                    self.state = State::Hold;
                    self.hold_until = Some(now + vcabench_simcore::SimDuration::from_millis(300));
                } else if self.state == State::Hold
                    && self.hold_until.map(|t| now >= t).unwrap_or(true)
                {
                    self.state = State::Increase;
                }
            }
        }
    }
}

impl RateController for GccController {
    fn on_report(&mut self, r: &FeedbackReport) {
        let dt = self
            .last_report
            .map(|t| r.now.saturating_since(t).as_secs_f64())
            .unwrap_or(0.1)
            .clamp(0.0, 1.0);
        self.last_report = Some(r.now);

        let recv = match self.recv_ema {
            Some(prev) => 0.7 * prev + 0.3 * r.receive_rate_mbps,
            None => r.receive_rate_mbps,
        };
        self.recv_ema = Some(recv);

        let signal = self.detector.update(r.now, r.one_way_delay_ms);
        self.transition(signal, r.now);

        match self.state {
            State::Decrease => {
                // At most one multiplicative decrease per 600 ms: a single
                // delay spike keeps the trendline positive for several report
                // intervals while it transits the regression window, and
                // cutting on each of them would collapse the rate far below
                // β × receive (WebRTC rate-limits decreases the same way).
                let spaced = self
                    .last_decrease
                    .map(|t| {
                        r.now.saturating_since(t) >= vcabench_simcore::SimDuration::from_millis(600)
                    })
                    .unwrap_or(true);
                if spaced {
                    self.last_decrease = Some(r.now);
                    self.target = (self.cfg.beta * recv).max(self.cfg.min_mbps);
                    // Anchor the near-convergence detector at the rate where
                    // congestion appeared.
                    self.avg_max_mbps = Some(match self.avg_max_mbps {
                        Some(avg) => 0.95 * avg + 0.05 * recv,
                        None => recv,
                    });
                }
            }
            State::Hold => {}
            State::Increase => {
                // Near convergence = within a band around the anchor where
                // congestion last appeared. Far *below* (post-disruption) and
                // far *above* (the anchor is stale) both use multiplicative
                // increase.
                let near = self
                    .avg_max_mbps
                    .map(|m| self.target > 0.9 * m && self.target < 1.3 * m)
                    .unwrap_or(false);
                if near {
                    self.target += self.cfg.additive_mbps_per_s * dt;
                } else {
                    self.target *= 1.0 + self.cfg.eta_per_s * dt;
                }
            }
        }

        // Loss-based bound: sustained loss overrides delay control (a pegged
        // drop-tail queue has zero delay *gradient*, so the trendline goes
        // blind exactly when loss appears), moderate loss inhibits increase.
        if r.loss_fraction > 0.06 {
            self.target = self.target.min(self.target * (1.0 - 0.7 * r.loss_fraction));
        } else if r.loss_fraction > 0.02 && self.state == State::Increase {
            // hold: undo this interval's increase by re-clamping to the
            // receive rate when it is meaningful.
            if r.receive_rate_mbps > 0.05 {
                self.target = self.target.min(r.receive_rate_mbps * 1.05);
            }
        }

        // Never run far beyond what is actually getting through — but only
        // when the path shows stress. A video sender is often app-limited
        // (the encoder sends less than the target allows); capping against
        // the app-limited receive rate would wedge the estimate at the
        // encoder's current output (WebRTC handles app-limited phases the
        // same way).
        let stressed = r.loss_fraction > 0.02 || self.state == State::Decrease;
        if stressed && recv > 0.05 {
            self.target = self.target.min(1.5 * recv);
        }
        self.target = self.target.clamp(self.cfg.min_mbps, self.cfg.max_mbps);
        #[cfg(feature = "testkit-checks")]
        {
            assert!(
                self.target.is_finite()
                    && self.target >= self.cfg.min_mbps
                    && self.target <= self.cfg.max_mbps,
                "GCC target {} outside [{}, {}]",
                self.target,
                self.cfg.min_mbps,
                self.cfg.max_mbps
            );
        }
    }

    fn target_mbps(&self) -> f64 {
        self.target
    }

    fn set_bounds(&mut self, min_mbps: f64, max_mbps: f64) {
        self.cfg.min_mbps = min_mbps;
        self.cfg.max_mbps = max_mbps;
        self.target = self.target.clamp(min_mbps, max_mbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticLink;
    use vcabench_simcore::SimDuration;

    const DT: SimDuration = SimDuration::from_millis(100);

    fn run_loop(
        cc: &mut GccController,
        link: &mut SyntheticLink,
        from_s: u64,
        to_s: u64,
    ) -> Vec<f64> {
        let mut rates = Vec::new();
        let steps_from = from_s * 10;
        let steps_to = to_s * 10;
        for i in steps_from..steps_to {
            let now = SimTime::from_millis(i * 100);
            let r = link.step(now, cc.target_mbps(), DT);
            cc.on_report(&r);
            rates.push(cc.target_mbps());
        }
        rates
    }

    #[test]
    fn converges_to_capacity_without_heavy_loss() {
        let mut cc = GccController::new(GccConfig::default());
        let mut link = SyntheticLink::new(1.0);
        let rates = run_loop(&mut cc, &mut link, 0, 60);
        let late = &rates[rates.len() - 100..];
        let avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
        assert!(avg > 0.8 && avg < 1.3, "late avg {avg}");
        // Delay-based control must keep the standing queue modest.
        assert!(link.queue_ms() < 150.0, "queue {}", link.queue_ms());
    }

    #[test]
    fn respects_max_bound_on_fat_link() {
        let mut cc = GccController::new(GccConfig {
            max_mbps: 0.95,
            ..GccConfig::default()
        });
        let mut link = SyntheticLink::new(1000.0);
        let rates = run_loop(&mut cc, &mut link, 0, 60);
        let last = *rates.last().unwrap();
        assert!(
            (last - 0.95).abs() < 1e-6,
            "should pin at encoder max, got {last}"
        );
    }

    #[test]
    fn detector_flags_rising_delay() {
        let mut det = TrendlineDetector::new(10);
        let mut sig = Signal::Normal;
        for i in 0..30 {
            // 20 ms/s upward ramp.
            sig = det.update(SimTime::from_millis(i * 100), 20.0 + 2.0 * i as f64);
        }
        assert_eq!(sig, Signal::Overuse);
    }

    #[test]
    fn detector_flags_draining_queue_as_underuse() {
        let mut det = TrendlineDetector::new(10);
        let mut sig = Signal::Normal;
        for i in 0..30 {
            sig = det.update(SimTime::from_millis(i * 100), 100.0 - 3.0 * i as f64);
        }
        assert_eq!(sig, Signal::Underuse);
    }

    #[test]
    fn recovery_time_grows_with_severity() {
        // Converge on a fat link capped at 0.96 (Meet nominal), disrupt to
        // `sev` for 30 s, then measure time back to 90% of nominal.
        let recover = |sev: f64| -> f64 {
            let mut cc = GccController::new(GccConfig {
                max_mbps: 0.96,
                ..GccConfig::default()
            });
            let mut link = SyntheticLink::new(100.0);
            run_loop(&mut cc, &mut link, 0, 60);
            link.capacity_mbps = sev;
            run_loop(&mut cc, &mut link, 60, 90);
            link.capacity_mbps = 100.0;
            let rates = run_loop(&mut cc, &mut link, 90, 200);
            rates
                .iter()
                .position(|&r| r >= 0.9 * 0.96)
                .map(|i| i as f64 * 0.1)
                .unwrap_or(f64::INFINITY)
        };
        let severe = recover(0.25);
        let mild = recover(0.75);
        assert!(severe.is_finite() && mild.is_finite());
        assert!(severe > mild, "severe {severe}s should exceed mild {mild}s");
        assert!(
            severe > 5.0,
            "severe recovery should take many seconds: {severe}"
        );
    }

    #[test]
    fn heavy_loss_caps_rate() {
        let mut cc = GccController::new(GccConfig::default());
        // Feed artificial 30% loss reports at a generous receive rate.
        for i in 0..100 {
            cc.on_report(&FeedbackReport {
                now: SimTime::from_millis(i * 100),
                loss_fraction: 0.3,
                receive_rate_mbps: 1.0,
                one_way_delay_ms: 20.0,
                rtt: SimDuration::from_millis(40),
                fec_recovered_fraction: 0.0,
            });
        }
        assert!(cc.target_mbps() < 0.2, "got {}", cc.target_mbps());
    }

    #[test]
    fn set_bounds_clamps_immediately() {
        let mut cc = GccController::new(GccConfig::default());
        cc.set_bounds(0.5, 0.6);
        assert!(cc.target_mbps() >= 0.5 && cc.target_mbps() <= 0.6);
    }

    #[test]
    fn two_gcc_flows_share_fairly() {
        // The Fig 9b result: two Meet clients converge to ~fair share.
        let mut a = GccController::new(GccConfig::default());
        let mut b = GccController::new(GccConfig::default());
        let mut link = SyntheticLink::new(0.5);
        let mut share_a = 0.0;
        let mut share_b = 0.0;
        for i in 0..3000 {
            let now = SimTime::from_millis(i * 100);
            let reports = link.step_shared(now, &[a.target_mbps(), b.target_mbps()], DT);
            a.on_report(&reports[0]);
            b.on_report(&reports[1]);
            if i > 2500 {
                share_a += a.target_mbps();
                share_b += b.target_mbps();
            }
        }
        let ratio = share_a / (share_a + share_b);
        assert!(
            (0.3..=0.7).contains(&ratio),
            "GCC vs GCC should be roughly fair, ratio {ratio}"
        );
    }
}
