//! Feedback reports driving the rate controllers.
//!
//! All three VCAs run proprietary congestion control above RTP, fed by
//! RTCP-style receiver reports (§2.1). We model one report structure carrying
//! the signals the published algorithms use: loss fraction (TFRC/Teams),
//! one-way delay (GCC's gradient filter), the receiver's measured goodput
//! (GCC's REMB), and the FEC recovery ratio (Zoom's FBRA-style probing).

use vcabench_simcore::{SimDuration, SimTime};

/// A receiver feedback report, generated periodically (default every 100 ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackReport {
    /// Time the report is processed at the sender.
    pub now: SimTime,
    /// Fraction of packets lost since the previous report, in `[0, 1]`.
    pub loss_fraction: f64,
    /// Receiver-measured delivery rate over the report interval, Mbps.
    pub receive_rate_mbps: f64,
    /// Mean relative one-way delay over the interval, milliseconds.
    ///
    /// "Relative" means offset by an arbitrary per-session constant (clock
    /// sync is not assumed); controllers only use its *changes*.
    pub one_way_delay_ms: f64,
    /// Smoothed round-trip time estimate.
    pub rtt: SimDuration,
    /// Fraction of lost media packets recovered by FEC this interval
    /// (only meaningful for FEC-protected flows; 0 otherwise).
    pub fec_recovered_fraction: f64,
}

impl FeedbackReport {
    /// A quiescent report: no loss, rate matching `rate`, flat delay.
    pub fn quiet(now: SimTime, rate_mbps: f64, owd_ms: f64) -> Self {
        FeedbackReport {
            now,
            loss_fraction: 0.0,
            receive_rate_mbps: rate_mbps,
            one_way_delay_ms: owd_ms,
            rtt: SimDuration::from_millis(40),
            fec_recovered_fraction: 0.0,
        }
    }
}

/// Common interface of the media rate controllers.
pub trait RateController {
    /// Ingest a feedback report and update the target rate.
    fn on_report(&mut self, report: &FeedbackReport);
    /// Current target *total* send rate (media + any redundancy), Mbps.
    fn target_mbps(&self) -> f64;
    /// Clamp the controller output to `[min, max]` Mbps. Implementations
    /// apply the clamp to current and future targets.
    fn set_bounds(&mut self, min_mbps: f64, max_mbps: f64);
    /// Fraction of the target rate that is FEC/redundancy (0 when the
    /// algorithm sends no redundancy).
    fn fec_fraction(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_report_is_quiescent() {
        let r = FeedbackReport::quiet(SimTime::from_secs(1), 1.0, 20.0);
        assert_eq!(r.loss_fraction, 0.0);
        assert_eq!(r.receive_rate_mbps, 1.0);
        assert_eq!(r.fec_recovered_fraction, 0.0);
    }
}
