//! Anomaly detection and causal annotation over a derived [`Timeline`].
//!
//! The detector classifies five episode families — sustained queue,
//! congestion-controller oscillation, stall with an idle link, FEC
//! spike, slow recovery — each with a severity and a time range, and
//! annotates every freeze with the spans that plausibly caused it: all
//! diagnostic spans overlapping a lookback window ending at the freeze.
//! A freeze whose lookback contains both a *reduced* rate regime and a
//! queue-buildup episode carries the full disruption → queue-buildup →
//! freeze causal chain (`chain_complete`); that chain is what the
//! `repro observe` gate asserts on the pinned disruption scenarios.
//!
//! Everything is a pure function of the timeline, so the online and
//! offline paths (and every `--jobs` level) produce identical output.

use std::collections::BTreeMap;

use serde_json::{Map, Value};
use vcabench_simcore::SimTime;

use crate::span::{ObserveConfig, Span, SpanKind, Timeline};

/// Schema tag of the per-run diagnosis JSON object.
pub const DIAGNOSIS_SCHEMA: &str = "vcabench-diagnosis/v1";

/// How bad an anomaly is. Ordered: `Info < Warn < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Notable but expected under the configured workload.
    Info,
    /// Quality was degraded.
    Warn,
    /// Quality was degraded and data was lost.
    Critical,
}

impl Severity {
    /// Stable lowercase tag for reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// All anomaly class tags the detector can emit, sorted.
pub const ANOMALY_CLASSES: [&str; 5] = [
    "cc_oscillation",
    "fec_spike",
    "slow_recovery",
    "stall_with_idle_link",
    "sustained_queue",
];

/// One classified episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Class tag (one of [`ANOMALY_CLASSES`]).
    pub class: &'static str,
    /// Severity of the episode.
    pub severity: Severity,
    /// Episode start.
    pub start: SimTime,
    /// Episode end.
    pub end: SimTime,
    /// What the episode is about (`"link 0"` / `"client 1"`).
    pub subject: String,
    /// One-line human-readable description.
    pub detail: String,
    /// Indices into the diagnosis span list of the spans this episode
    /// was derived from, ascending.
    pub causes: Vec<usize>,
}

impl Anomaly {
    /// Serialize with the schema's fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("class".to_string(), Value::String(self.class.to_string()));
        m.insert(
            "severity".to_string(),
            Value::String(self.severity.name().to_string()),
        );
        m.insert("start_us".to_string(), Value::U64(self.start.as_micros()));
        m.insert("end_us".to_string(), Value::U64(self.end.as_micros()));
        m.insert("subject".to_string(), Value::String(self.subject.clone()));
        m.insert("detail".to_string(), Value::String(self.detail.clone()));
        m.insert(
            "causes".to_string(),
            Value::Array(self.causes.iter().map(|&i| Value::U64(i as u64)).collect()),
        );
        Value::Object(m)
    }
}

/// The causal annotation of one freeze span: what was going on in the
/// lookback window that ended at the freeze.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Index of the freeze span in the diagnosis span list.
    pub freeze_span: usize,
    /// Client whose render path froze.
    pub client: u64,
    /// Sending client.
    pub sender: u64,
    /// Freeze interval start.
    pub start: SimTime,
    /// Freeze interval end.
    pub end: SimTime,
    /// `"congestion"` (a queue built up), `"loss"` (packets were dropped
    /// with no buildup), or `"decoder_stall"` (the network was idle).
    pub verdict: &'static str,
    /// Indices of contributory spans overlapping the lookback window,
    /// ascending: queue buildups, reduced rate regimes, backoff cc
    /// epochs, FEC elevations.
    pub contributors: Vec<usize>,
    /// True when the contributors contain both a reduced rate regime and
    /// a queue-buildup episode — the full disruption → queue-buildup →
    /// freeze chain.
    pub chain_complete: bool,
}

impl Explanation {
    /// Serialize with the schema's fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "freeze_span".to_string(),
            Value::U64(self.freeze_span as u64),
        );
        m.insert("client".to_string(), Value::U64(self.client));
        m.insert("sender".to_string(), Value::U64(self.sender));
        m.insert("start_us".to_string(), Value::U64(self.start.as_micros()));
        m.insert("end_us".to_string(), Value::U64(self.end.as_micros()));
        m.insert(
            "verdict".to_string(),
            Value::String(self.verdict.to_string()),
        );
        m.insert(
            "contributors".to_string(),
            Value::Array(
                self.contributors
                    .iter()
                    .map(|&i| Value::U64(i as u64))
                    .collect(),
            ),
        );
        m.insert(
            "chain_complete".to_string(),
            Value::Bool(self.chain_complete),
        );
        Value::Object(m)
    }
}

/// The per-run scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// `"healthy"`, `"degraded"`, or `"critical"`.
    pub grade: &'static str,
    /// 0–100; 100 minus penalties (5 per info, 10 per warn, 25 per
    /// critical anomaly, 5 per freeze), floored at 0.
    pub score: u64,
    /// Run length in whole microseconds.
    pub duration_us: u64,
    /// Spans derived.
    pub spans: u64,
    /// Anomalies detected.
    pub anomalies: u64,
    /// Anomaly counts per class tag, sorted by tag.
    pub by_class: BTreeMap<&'static str, u64>,
    /// Freeze spans.
    pub freezes: u64,
    /// Total frozen time across all freeze spans, microseconds.
    pub freeze_us: u64,
    /// Freezes whose explanation carries the complete causal chain.
    pub chains_complete: u64,
}

impl HealthReport {
    /// Serialize with the schema's fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("grade".to_string(), Value::String(self.grade.to_string()));
        m.insert("score".to_string(), Value::U64(self.score));
        m.insert("duration_us".to_string(), Value::U64(self.duration_us));
        m.insert("spans".to_string(), Value::U64(self.spans));
        m.insert("anomalies".to_string(), Value::U64(self.anomalies));
        let mut by = Map::new();
        for (&class, &n) in &self.by_class {
            by.insert(class.to_string(), Value::U64(n));
        }
        m.insert("by_class".to_string(), Value::Object(by));
        m.insert("freezes".to_string(), Value::U64(self.freezes));
        m.insert("freeze_us".to_string(), Value::U64(self.freeze_us));
        m.insert(
            "chains_complete".to_string(),
            Value::U64(self.chains_complete),
        );
        Value::Object(m)
    }
}

/// The full diagnosis of one run: the timeline plus everything derived
/// from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The derived timeline (spans + per-second windows).
    pub timeline: Timeline,
    /// Classified episodes, sorted by (start, end, class, subject).
    pub anomalies: Vec<Anomaly>,
    /// One explanation per freeze span, in span order.
    pub explanations: Vec<Explanation>,
    /// The scorecard.
    pub health: HealthReport,
}

impl Diagnosis {
    /// Serialize the whole diagnosis (sans raw windows — those live in
    /// the spans artifact and the diff engine) with fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "schema".to_string(),
            Value::String(DIAGNOSIS_SCHEMA.to_string()),
        );
        m.insert(
            "end_us".to_string(),
            Value::U64(self.timeline.end.as_micros()),
        );
        m.insert(
            "spans".to_string(),
            Value::Array(
                self.timeline
                    .spans
                    .iter()
                    .map(Span::to_json_value)
                    .collect(),
            ),
        );
        m.insert(
            "anomalies".to_string(),
            Value::Array(self.anomalies.iter().map(Anomaly::to_json_value).collect()),
        );
        m.insert(
            "explanations".to_string(),
            Value::Array(
                self.explanations
                    .iter()
                    .map(Explanation::to_json_value)
                    .collect(),
            ),
        );
        m.insert("health".to_string(), self.health.to_json_value());
        Value::Object(m)
    }
}

/// A cc state that means the controller is backing off — a causal
/// contributor when it precedes a freeze.
fn is_backoff_state(state: &str, signal: Option<&str>) -> bool {
    matches!(state, "decrease" | "fall" | "decay") || signal == Some("overuse")
}

/// Total drops recorded in the per-second windows overlapping
/// `[from, to]`.
fn drops_in(timeline: &Timeline, from: SimTime, to: SimTime) -> u64 {
    let w0 = (from.as_micros() / 1_000_000) as usize;
    let w1 = (to.as_micros() / 1_000_000) as usize;
    timeline
        .windows
        .iter()
        .skip(w0)
        .take(w1.saturating_sub(w0) + 1)
        .map(|w| w.drops)
        .sum()
}

/// Classify episodes and annotate freezes. Pure: identical timelines
/// yield identical diagnoses.
pub fn diagnose(timeline: Timeline, cfg: &ObserveConfig) -> Diagnosis {
    let spans = &timeline.spans;
    let mut anomalies: Vec<Anomaly> = Vec::new();

    // sustained_queue: a buildup episode outliving the threshold.
    // Critical when it tail-dropped packets, Warn otherwise.
    for (i, sp) in spans.iter().enumerate() {
        if let SpanKind::QueueBuildup {
            link,
            peak_bytes,
            drops,
        } = sp.kind
        {
            if sp.secs() >= cfg.sustained_queue_secs {
                anomalies.push(Anomaly {
                    class: "sustained_queue",
                    severity: if drops > 0 {
                        Severity::Critical
                    } else {
                        Severity::Warn
                    },
                    start: sp.start,
                    end: sp.end,
                    subject: format!("link {link}"),
                    detail: format!(
                        "queue held above {} B for {:.1} s (peak {} B, {} drops)",
                        cfg.queue_enter_bytes,
                        sp.secs(),
                        peak_bytes,
                        drops
                    ),
                    causes: vec![i],
                });
            }
        }
    }

    // cc_oscillation: a run of consecutive flappy epochs on one client.
    let mut per_client: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, sp) in spans.iter().enumerate() {
        if let SpanKind::CcEpoch { client, .. } = sp.kind {
            per_client.entry(client).or_default().push(i);
        }
    }
    for (&client, epochs) in &per_client {
        let mut run: Vec<usize> = Vec::new();
        let flush = |run: &mut Vec<usize>, anomalies: &mut Vec<Anomaly>| {
            if run.len() >= cfg.oscillation_epochs {
                let first = &spans[run[0]];
                let last = &spans[*run.last().expect("run is non-empty")];
                anomalies.push(Anomaly {
                    class: "cc_oscillation",
                    severity: Severity::Warn,
                    start: first.start,
                    end: last.end,
                    subject: format!("client {client}"),
                    detail: format!(
                        "{} consecutive cc epochs each under {:.1} s",
                        run.len(),
                        cfg.flappy_epoch_secs
                    ),
                    causes: run.clone(),
                });
            }
            run.clear();
        };
        for &i in epochs {
            if spans[i].secs() < cfg.flappy_epoch_secs {
                run.push(i);
            } else {
                flush(&mut run, &mut anomalies);
            }
        }
        flush(&mut run, &mut anomalies);
    }

    // fec_spike: a sustained FEC-elevation window.
    for (i, sp) in spans.iter().enumerate() {
        if let SpanKind::FecElevation {
            client,
            peak_fraction,
        } = sp.kind
        {
            if sp.secs() >= cfg.fec_spike_secs {
                anomalies.push(Anomaly {
                    class: "fec_spike",
                    severity: Severity::Info,
                    start: sp.start,
                    end: sp.end,
                    subject: format!("client {client}"),
                    detail: format!(
                        "planned FEC fraction held at or above {:.2} for {:.1} s (peak {:.2})",
                        cfg.fec_elevated_fraction,
                        sp.secs(),
                        peak_fraction
                    ),
                    causes: vec![i],
                });
            }
        }
    }

    // slow_recovery: a buildup on a link that outlives the link's rate
    // recovery (the end of a reduced regime) by more than the threshold.
    for (ri, regime) in spans.iter().enumerate() {
        let SpanKind::RateRegime {
            link,
            reduced: true,
            ..
        } = regime.kind
        else {
            continue;
        };
        if regime.end >= timeline.end {
            continue; // never recovered: the buildup is the disruption's fault
        }
        let recovery = regime.end;
        let slack = SimTime::from_secs_f64(cfg.slow_recovery_secs).as_micros();
        for (bi, buildup) in spans.iter().enumerate() {
            let SpanKind::QueueBuildup { link: bl, .. } = buildup.kind else {
                continue;
            };
            if bl != link || buildup.start > recovery {
                continue;
            }
            if buildup.end.as_micros() > recovery.as_micros() + slack {
                anomalies.push(Anomaly {
                    class: "slow_recovery",
                    severity: Severity::Warn,
                    start: recovery,
                    end: buildup.end,
                    subject: format!("link {link}"),
                    detail: format!(
                        "queue stayed built up {:.1} s past the rate recovery",
                        (buildup.end - recovery).as_secs_f64()
                    ),
                    causes: vec![ri.min(bi), ri.max(bi)],
                });
            }
        }
    }

    // Causal annotation: one explanation per freeze span.
    let lookback = SimTime::from_secs_f64(cfg.lookback_secs).as_micros();
    let mut explanations: Vec<Explanation> = Vec::new();
    for (fi, fsp) in spans.iter().enumerate() {
        let SpanKind::Freeze { client, sender, .. } = fsp.kind else {
            continue;
        };
        let from = SimTime::from_micros(fsp.start.as_micros().saturating_sub(lookback));
        let to = fsp.end;
        let mut contributors: Vec<usize> = Vec::new();
        let mut saw_buildup = false;
        let mut saw_reduced = false;
        for (i, sp) in spans.iter().enumerate() {
            if i == fi || !sp.overlaps(from, to) {
                continue;
            }
            let contributes = match &sp.kind {
                SpanKind::QueueBuildup { .. } => {
                    saw_buildup = true;
                    true
                }
                SpanKind::RateRegime { reduced, .. } => {
                    saw_reduced |= reduced;
                    *reduced
                }
                SpanKind::CcEpoch { state, signal, .. } => is_backoff_state(state, *signal),
                SpanKind::FecElevation { .. } => true,
                SpanKind::Freeze { .. } => false,
            };
            if contributes {
                contributors.push(i);
            }
        }
        let verdict = if saw_buildup {
            "congestion"
        } else if drops_in(&timeline, from, to) > 0 {
            "loss"
        } else {
            "decoder_stall"
        };
        explanations.push(Explanation {
            freeze_span: fi,
            client,
            sender,
            start: fsp.start,
            end: fsp.end,
            verdict,
            contributors,
            chain_complete: saw_buildup && saw_reduced,
        });
    }

    // stall_with_idle_link: a freeze the lookback cannot pin on the
    // network at all — no buildup, no drops.
    for ex in &explanations {
        if ex.verdict == "decoder_stall" {
            anomalies.push(Anomaly {
                class: "stall_with_idle_link",
                severity: Severity::Warn,
                start: ex.start,
                end: ex.end,
                subject: format!("client {}", ex.client),
                detail: format!(
                    "render froze for {:.1} s with no queue buildup or drops in the \
                     {:.0} s lookback",
                    (ex.end - ex.start).as_secs_f64(),
                    cfg.lookback_secs
                ),
                causes: vec![ex.freeze_span],
            });
        }
    }

    anomalies.sort_by(|a, b| {
        a.start
            .cmp(&b.start)
            .then(a.end.cmp(&b.end))
            .then(a.class.cmp(b.class))
            .then(a.subject.cmp(&b.subject))
    });

    // Scorecard.
    let mut by_class: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut penalty: u64 = 0;
    for a in &anomalies {
        *by_class.entry(a.class).or_insert(0) += 1;
        penalty += match a.severity {
            Severity::Info => 5,
            Severity::Warn => 10,
            Severity::Critical => 25,
        };
    }
    let freezes: Vec<&Span> = timeline.spans_of("freeze").collect();
    penalty += 5 * freezes.len() as u64;
    let freeze_us: u64 = freezes
        .iter()
        .map(|s| s.end.as_micros() - s.start.as_micros())
        .sum();
    let worst = anomalies.iter().map(|a| a.severity).max();
    let grade = if worst >= Some(Severity::Critical) {
        "critical"
    } else if worst.is_some() || !freezes.is_empty() {
        "degraded"
    } else {
        "healthy"
    };
    let health = HealthReport {
        grade,
        score: 100u64.saturating_sub(penalty),
        duration_us: timeline.end.as_micros(),
        spans: timeline.spans.len() as u64,
        anomalies: anomalies.len() as u64,
        by_class,
        freezes: freezes.len() as u64,
        freeze_us,
        chains_complete: explanations.iter().filter(|e| e.chain_complete).count() as u64,
    };

    Diagnosis {
        timeline,
        anomalies,
        explanations,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanBuilder;
    use vcabench_telemetry::{EventKind, Recorder};

    fn builder() -> SpanBuilder {
        SpanBuilder::new(ObserveConfig::default())
    }

    fn diagnose_built(b: SpanBuilder, end_secs: u64) -> Diagnosis {
        diagnose(
            b.finish(SimTime::from_secs(end_secs)),
            &ObserveConfig::default(),
        )
    }

    fn enq(link: u64, queue_bytes: u64) -> EventKind {
        EventKind::PacketEnqueued {
            link,
            flow: 10,
            pkt: 0,
            bytes: 1200,
            queue_bytes,
            queue_pkts: 1,
        }
    }

    #[test]
    fn empty_timeline_is_healthy() {
        let d = diagnose_built(builder(), 10);
        assert!(d.anomalies.is_empty());
        assert!(d.explanations.is_empty());
        assert_eq!(d.health.grade, "healthy");
        assert_eq!(d.health.score, 100);
    }

    #[test]
    fn sustained_queue_with_drops_is_critical() {
        let mut b = builder();
        b.record(SimTime::from_secs(1), enq(0, 10_000));
        b.record(
            SimTime::from_secs(2),
            EventKind::PacketDropped {
                link: 0,
                flow: 10,
                pkt: 1,
                bytes: 1200,
                queue_bytes: 32_000,
                reason: "queue_full",
            },
        );
        b.record(SimTime::from_secs(4), enq(0, 100));
        let d = diagnose_built(b, 10);
        assert_eq!(d.anomalies.len(), 1);
        let a = &d.anomalies[0];
        assert_eq!(a.class, "sustained_queue");
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(a.subject, "link 0");
        assert_eq!(d.health.grade, "critical");
        assert_eq!(d.health.score, 75);
    }

    #[test]
    fn cc_oscillation_fires_on_flappy_epochs_only() {
        let mut b = builder();
        // Seven 0.5 s epochs, then a long stable one.
        for i in 0..7u64 {
            b.record(
                SimTime::from_millis(500 * i),
                EventKind::CcState {
                    client: 0,
                    controller: "gcc",
                    state: if i % 2 == 0 { "increase" } else { "decrease" },
                    signal: None,
                    target_mbps: 1.0,
                },
            );
        }
        let d = diagnose_built(b, 30);
        let osc: Vec<&Anomaly> = d
            .anomalies
            .iter()
            .filter(|a| a.class == "cc_oscillation")
            .collect();
        assert_eq!(osc.len(), 1);
        assert_eq!(
            osc[0].causes.len(),
            6,
            "the final long epoch breaks the run"
        );
        assert_eq!(osc[0].severity, Severity::Warn);

        // Three flappy epochs are below the threshold: no anomaly.
        let mut b = builder();
        for i in 0..4u64 {
            b.record(
                SimTime::from_millis(500 * i),
                EventKind::CcState {
                    client: 0,
                    controller: "gcc",
                    state: "hold",
                    signal: None,
                    target_mbps: 1.0,
                },
            );
        }
        let d = diagnose_built(b, 30);
        assert!(d.anomalies.iter().all(|a| a.class != "cc_oscillation"));
    }

    #[test]
    fn fec_spike_is_info_grade() {
        let mut b = builder();
        b.record(
            SimTime::from_secs(1),
            EventKind::FecRatio {
                client: 0,
                fraction: 0.3,
                fec_per_media: 0.3,
            },
        );
        b.record(
            SimTime::from_secs(4),
            EventKind::FecRatio {
                client: 0,
                fraction: 0.01,
                fec_per_media: 0.01,
            },
        );
        let d = diagnose_built(b, 10);
        assert_eq!(d.anomalies.len(), 1);
        assert_eq!(d.anomalies[0].class, "fec_spike");
        assert_eq!(d.anomalies[0].severity, Severity::Info);
        assert_eq!(d.health.grade, "degraded");
        assert_eq!(d.health.score, 95);
    }

    #[test]
    fn slow_recovery_needs_a_buildup_outliving_the_recovery() {
        let mut b = builder();
        let step = |bps| EventKind::RateStep { link: 0, bps };
        b.record(SimTime::from_secs(0), step(3e6));
        b.record(SimTime::from_secs(10), step(3e5)); // disruption
        b.record(SimTime::from_secs(11), enq(0, 20_000)); // buildup opens
        b.record(SimTime::from_secs(20), step(3e6)); // recovery
        b.record(SimTime::from_secs(25), enq(0, 100)); // buildup closes 5 s later
        let d = diagnose_built(b, 30);
        let slow: Vec<&Anomaly> = d
            .anomalies
            .iter()
            .filter(|a| a.class == "slow_recovery")
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].start, SimTime::from_secs(20));
        assert_eq!(slow[0].end, SimTime::from_secs(25));
        assert_eq!(slow[0].causes.len(), 2);
    }

    #[test]
    fn freeze_during_disruption_explains_as_complete_congestion_chain() {
        let mut b = builder();
        b.record(
            SimTime::from_secs(0),
            EventKind::RateStep { link: 0, bps: 3e6 },
        );
        b.record(
            SimTime::from_secs(20),
            EventKind::RateStep { link: 0, bps: 3e5 },
        );
        b.record(SimTime::from_millis(20_500), enq(0, 30_000));
        b.record(
            SimTime::from_secs(25),
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 1,
                total_ms: 2000.0,
            },
        );
        b.record(
            SimTime::from_secs(35),
            EventKind::RateStep { link: 0, bps: 3e6 },
        );
        b.record(SimTime::from_secs(36), enq(0, 100));
        let d = diagnose_built(b, 60);
        assert_eq!(d.explanations.len(), 1);
        let ex = &d.explanations[0];
        assert_eq!(ex.verdict, "congestion");
        assert!(
            ex.chain_complete,
            "reduced regime + buildup both in lookback"
        );
        assert!(ex.contributors.len() >= 2);
        assert_eq!(d.health.chains_complete, 1);
        assert!(d
            .anomalies
            .iter()
            .all(|a| a.class != "stall_with_idle_link"));
    }

    #[test]
    fn freeze_on_an_idle_link_is_a_decoder_stall_anomaly() {
        let mut b = builder();
        b.record(
            SimTime::from_secs(15),
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 1,
                total_ms: 1500.0,
            },
        );
        let d = diagnose_built(b, 30);
        assert_eq!(d.explanations.len(), 1);
        assert_eq!(d.explanations[0].verdict, "decoder_stall");
        assert!(!d.explanations[0].chain_complete);
        assert_eq!(d.anomalies.len(), 1);
        assert_eq!(d.anomalies[0].class, "stall_with_idle_link");
        assert_eq!(d.health.grade, "degraded");
    }

    #[test]
    fn freeze_after_drops_without_buildup_is_loss() {
        let mut b = builder();
        b.record(
            SimTime::from_secs(14),
            EventKind::PacketDropped {
                link: 0,
                flow: 10,
                pkt: 1,
                bytes: 1200,
                queue_bytes: 0,
                reason: "impairment",
            },
        );
        b.record(
            SimTime::from_secs(15),
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 1,
                total_ms: 500.0,
            },
        );
        let d = diagnose_built(b, 30);
        assert_eq!(d.explanations[0].verdict, "loss");
        assert!(d
            .anomalies
            .iter()
            .all(|a| a.class != "stall_with_idle_link"));
    }

    #[test]
    fn anomaly_classes_are_sorted_and_complete() {
        let mut sorted = ANOMALY_CLASSES;
        sorted.sort_unstable();
        assert_eq!(sorted, ANOMALY_CLASSES);
    }

    #[test]
    fn diagnosis_json_has_schema_and_fixed_top_level_keys() {
        let d = diagnose_built(builder(), 5);
        let v = d.to_json_value();
        assert_eq!(
            v.get("schema"),
            Some(&Value::String(DIAGNOSIS_SCHEMA.to_string()))
        );
        let Value::Object(m) = v else {
            panic!("not an object")
        };
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "end_us",
                "spans",
                "anomalies",
                "explanations",
                "health"
            ]
        );
    }
}
