//! The span deriver: fold the flat telemetry event stream into typed
//! intervals.
//!
//! Raw traces answer "what happened at t"; diagnosis needs "what was
//! going on between t₀ and t₁". [`SpanBuilder`] implements
//! [`Recorder`], so it runs online (attached to a live simulation) or
//! offline (replaying an exported `.events.jsonl`) and — like the infer
//! and fingerprint banks — produces the identical [`Timeline`] either
//! way. Five span types are derived:
//!
//! | span            | opened by                          | closed by                     |
//! |-----------------|------------------------------------|-------------------------------|
//! | `cc_epoch`      | a `cc_state` transition            | the next transition / run end |
//! | `rate_regime`   | a `rate_step` changing the rate    | the next step / run end       |
//! | `freeze`        | derived: `freeze` events carry the cumulative stall time, so each one closes the interval it reports |
//! | `fec_elevation` | `fec_ratio.fraction` ≥ threshold   | fraction below threshold      |
//! | `queue_buildup` | sampled `queue_bytes` ≥ enter      | `queue_bytes` < exit (hysteresis) |
//!
//! Alongside the spans the builder keeps a per-second [`WindowMetrics`]
//! series (enqueued bytes/packets, drops, peak queue depth, freeze
//! events) — the aligned rows the trace-diff engine subtracts.
//!
//! Everything is a pure fold over the event stream: byte-identical
//! output for identical traces, no hash-map iteration, no wall clock.

use std::collections::BTreeMap;

use serde_json::{Map, Value};
use vcabench_simcore::SimTime;
use vcabench_telemetry::{EventKind, Recorder};

/// Schema tag of the span JSONL artifact (header line + key order).
pub const SPANS_SCHEMA: &str = "vcabench-spans/v1";

/// Tuning knobs for span derivation and anomaly detection. The defaults
/// are calibrated against the pinned disruption scenarios: unconstrained
/// two-party runs peak below 2.5 kB of queue, while any rate disruption
/// fills the 32 kB default queue within a second.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveConfig {
    /// Queue depth (bytes) at or above which a buildup episode opens.
    pub queue_enter_bytes: u64,
    /// Queue depth (bytes) below which an open episode closes.
    pub queue_exit_bytes: u64,
    /// Planned FEC fraction at or above which an elevation window opens.
    pub fec_elevated_fraction: f64,
    /// Minimum buildup length (seconds) to classify `sustained_queue`.
    pub sustained_queue_secs: f64,
    /// A cc epoch shorter than this (seconds) counts as flappy.
    pub flappy_epoch_secs: f64,
    /// Consecutive flappy epochs needed to classify `cc_oscillation`.
    pub oscillation_epochs: usize,
    /// Minimum elevation length (seconds) to classify `fec_spike`.
    pub fec_spike_secs: f64,
    /// A buildup outliving a rate recovery by more than this (seconds)
    /// classifies `slow_recovery`.
    pub slow_recovery_secs: f64,
    /// How far back (seconds) from a freeze the causal annotator looks
    /// for contributory spans.
    pub lookback_secs: f64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            queue_enter_bytes: 8192,
            queue_exit_bytes: 4096,
            fec_elevated_fraction: 0.15,
            sustained_queue_secs: 1.0,
            flappy_epoch_secs: 1.0,
            oscillation_epochs: 6,
            fec_spike_secs: 1.0,
            slow_recovery_secs: 2.0,
            lookback_secs: 10.0,
        }
    }
}

/// What a [`Span`] covers, without the interval. Field vocabularies are
/// the telemetry event vocabularies (`&'static str` interned on import),
/// so online- and offline-derived spans compare equal.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// One congestion-controller state held by one client.
    CcEpoch {
        /// Client index owning the controller.
        client: u64,
        /// Controller family (`"gcc"` / `"fbra"` / `"teams"`).
        controller: &'static str,
        /// State held throughout the epoch.
        state: &'static str,
        /// Detector signal that opened the epoch (GCC only).
        signal: Option<&'static str>,
        /// Send-rate target entering the epoch, Mbps.
        target_mbps: f64,
    },
    /// One shaping-rate plateau of one link.
    RateRegime {
        /// Link index.
        link: u64,
        /// Service rate held throughout the regime, bits per second.
        bps: f64,
        /// Whether this regime *lowered* the rate (bps below the
        /// previous regime's) — the disruption marker the causal
        /// annotator keys on.
        reduced: bool,
    },
    /// One render-stall interval reported by the freeze detector.
    Freeze {
        /// Client whose render path froze.
        client: u64,
        /// Sending client.
        sender: u64,
        /// Cumulative freeze ordinal for this (client, sender) pair.
        seq: u64,
    },
    /// A window of elevated planned FEC.
    FecElevation {
        /// Client index.
        client: u64,
        /// Highest planned FEC fraction seen inside the window.
        peak_fraction: f64,
    },
    /// A sustained-queue episode on one link.
    QueueBuildup {
        /// Link index.
        link: u64,
        /// Peak queued bytes seen inside the episode.
        peak_bytes: u64,
        /// Packets dropped at this link during the episode.
        drops: u64,
    },
}

impl SpanKind {
    /// Stable snake_case tag identifying the span type in the JSONL
    /// schema, and the rendering order of span-kind summaries.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::CcEpoch { .. } => "cc_epoch",
            SpanKind::RateRegime { .. } => "rate_regime",
            SpanKind::Freeze { .. } => "freeze",
            SpanKind::FecElevation { .. } => "fec_elevation",
            SpanKind::QueueBuildup { .. } => "queue_buildup",
        }
    }

    /// All span tags the schema defines, sorted.
    pub const NAMES: [&'static str; 5] = [
        "cc_epoch",
        "fec_elevation",
        "freeze",
        "queue_buildup",
        "rate_regime",
    ];

    /// Sort rank for the deterministic span ordering (ties on start
    /// time): matches [`SpanKind::NAMES`] order.
    fn rank(&self) -> u8 {
        match self {
            SpanKind::CcEpoch { .. } => 0,
            SpanKind::FecElevation { .. } => 1,
            SpanKind::Freeze { .. } => 2,
            SpanKind::QueueBuildup { .. } => 3,
            SpanKind::RateRegime { .. } => 4,
        }
    }

    /// Secondary discriminator for the deterministic span ordering.
    fn subject_id(&self) -> u64 {
        match self {
            SpanKind::CcEpoch { client, .. } => *client,
            SpanKind::FecElevation { client, .. } => *client,
            SpanKind::Freeze { client, .. } => *client,
            SpanKind::QueueBuildup { link, .. } => *link,
            SpanKind::RateRegime { link, .. } => *link,
        }
    }

    /// Deterministic human-readable subject (`"link 0"` / `"client 1"`).
    pub fn subject(&self) -> String {
        match self {
            SpanKind::CcEpoch { client, .. }
            | SpanKind::FecElevation { client, .. }
            | SpanKind::Freeze { client, .. } => format!("client {client}"),
            SpanKind::QueueBuildup { link, .. } | SpanKind::RateRegime { link, .. } => {
                format!("link {link}")
            }
        }
    }
}

/// A typed interval derived from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive; equals the run end for spans still open
    /// at [`SpanBuilder::finish`]).
    pub end: SimTime,
    /// What the interval covers.
    pub kind: SpanKind,
}

impl Span {
    /// Interval length in seconds.
    pub fn secs(&self) -> f64 {
        (self.end.as_micros().saturating_sub(self.start.as_micros())) as f64 * 1e-6
    }

    /// True when this span overlaps `[from, to]` (closed interval).
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.start <= to && self.end >= from
    }

    /// Serialize to a JSON object with the schema's fixed key order:
    /// `start_us`, `end_us`, `kind`, then the kind's fields.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("start_us".to_string(), Value::U64(self.start.as_micros()));
        m.insert("end_us".to_string(), Value::U64(self.end.as_micros()));
        m.insert(
            "kind".to_string(),
            Value::String(self.kind.name().to_string()),
        );
        let s = |v: &str| Value::String(v.to_string());
        match &self.kind {
            SpanKind::CcEpoch {
                client,
                controller,
                state,
                signal,
                target_mbps,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("controller".to_string(), s(controller));
                m.insert("state".to_string(), s(state));
                m.insert("signal".to_string(), signal.map(s).unwrap_or(Value::Null));
                m.insert("target_mbps".to_string(), Value::F64(*target_mbps));
            }
            SpanKind::RateRegime { link, bps, reduced } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("bps".to_string(), Value::F64(*bps));
                m.insert("reduced".to_string(), Value::Bool(*reduced));
            }
            SpanKind::Freeze {
                client,
                sender,
                seq,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("sender".to_string(), Value::U64(*sender));
                m.insert("seq".to_string(), Value::U64(*seq));
            }
            SpanKind::FecElevation {
                client,
                peak_fraction,
            } => {
                m.insert("client".to_string(), Value::U64(*client));
                m.insert("peak_fraction".to_string(), Value::F64(*peak_fraction));
            }
            SpanKind::QueueBuildup {
                link,
                peak_bytes,
                drops,
            } => {
                m.insert("link".to_string(), Value::U64(*link));
                m.insert("peak_bytes".to_string(), Value::U64(*peak_bytes));
                m.insert("drops".to_string(), Value::U64(*drops));
            }
        }
        Value::Object(m)
    }
}

/// Per-second aggregate of the event stream (the diff engine's aligned
/// rows). Window `w` covers sim seconds `[w, w+1)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowMetrics {
    /// Window index (seconds).
    pub window: u64,
    /// Packets enqueued across all links.
    pub enq_pkts: u64,
    /// Bytes enqueued across all links.
    pub enq_bytes: u64,
    /// Packets dropped across all links.
    pub drops: u64,
    /// Peak sampled queue depth (bytes) across all links.
    pub peak_queue_bytes: u64,
    /// `freeze` events registered in the window.
    pub freezes: u64,
}

/// The derived timeline: sorted spans plus the per-second metric series.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// All derived spans, sorted by (start, end, kind, subject).
    pub spans: Vec<Span>,
    /// Per-second aggregates, dense from window 0 to the run end.
    pub windows: Vec<WindowMetrics>,
    /// Run end passed to [`SpanBuilder::finish`].
    pub end: SimTime,
}

impl Timeline {
    /// Spans of one kind tag, in timeline order.
    pub fn spans_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| s.kind.name() == name)
    }

    /// Serialize as the `vcabench-spans/v1` JSONL artifact: a header
    /// line carrying the schema tag and run end, then one span per line.
    pub fn spans_jsonl(&self) -> String {
        let mut header = Map::new();
        header.insert(
            "schema".to_string(),
            Value::String(SPANS_SCHEMA.to_string()),
        );
        header.insert("end_us".to_string(), Value::U64(self.end.as_micros()));
        header.insert("spans".to_string(), Value::U64(self.spans.len() as u64));
        let mut out = serde_json::to_string(&Value::Object(header)).expect("header serialization");
        out.push('\n');
        for sp in &self.spans {
            out.push_str(&serde_json::to_string(&sp.to_json_value()).expect("span serialization"));
            out.push('\n');
        }
        out
    }
}

/// Open-interval bookkeeping for one link's queue state.
#[derive(Debug, Clone, Copy)]
struct QueueTrack {
    /// Open episode: (start, peak_bytes, drops).
    open: Option<(SimTime, u64, u64)>,
}

/// The streaming span deriver. Feed it the event stream (online via
/// [`vcabench_telemetry::Telemetry::attach`], offline via
/// [`vcabench_telemetry::replay_jsonl`]), then call
/// [`SpanBuilder::finish`].
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    cfg: ObserveConfig,
    done: Vec<Span>,
    /// Open cc epoch per client: (start, controller, state, signal, target).
    cc: BTreeMap<
        u64,
        (
            SimTime,
            &'static str,
            &'static str,
            Option<&'static str>,
            f64,
        ),
    >,
    /// Open rate regime per link: (start, bps, reduced).
    rate: BTreeMap<u64, (SimTime, f64, bool)>,
    /// Cumulative freeze ms per (client, sender).
    freeze_ms: BTreeMap<(u64, u64), f64>,
    /// Open FEC elevation per client: (start, peak_fraction).
    fec: BTreeMap<u64, (SimTime, f64)>,
    queues: BTreeMap<u64, QueueTrack>,
    windows: Vec<WindowMetrics>,
}

impl SpanBuilder {
    /// A builder with the given thresholds.
    pub fn new(cfg: ObserveConfig) -> Self {
        SpanBuilder {
            cfg,
            done: Vec::new(),
            cc: BTreeMap::new(),
            rate: BTreeMap::new(),
            freeze_ms: BTreeMap::new(),
            fec: BTreeMap::new(),
            queues: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    fn window_at(&mut self, at: SimTime) -> &mut WindowMetrics {
        let w = (at.as_micros() / 1_000_000) as usize;
        while self.windows.len() <= w {
            let next = self.windows.len() as u64;
            self.windows.push(WindowMetrics {
                window: next,
                ..WindowMetrics::default()
            });
        }
        &mut self.windows[w]
    }

    /// Fold one queue-depth sample on `link` into the buildup tracker.
    fn queue_sample(&mut self, at: SimTime, link: u64, queue_bytes: u64, dropped: bool) {
        let enter = self.cfg.queue_enter_bytes;
        let exit = self.cfg.queue_exit_bytes;
        let track = self.queues.entry(link).or_insert(QueueTrack { open: None });
        match &mut track.open {
            None => {
                if queue_bytes >= enter {
                    track.open = Some((at, queue_bytes, u64::from(dropped)));
                }
            }
            Some((_, peak, drops)) => {
                *peak = (*peak).max(queue_bytes);
                *drops += u64::from(dropped);
                if queue_bytes < exit {
                    let (start, peak, drops) = track.open.take().expect("episode is open");
                    self.done.push(Span {
                        start,
                        end: at,
                        kind: SpanKind::QueueBuildup {
                            link,
                            peak_bytes: peak,
                            drops,
                        },
                    });
                }
            }
        }
    }

    /// Close every open interval at `end`, sort, and return the timeline.
    /// Windows are padded densely to cover `[0, end)`.
    pub fn finish(mut self, end: SimTime) -> Timeline {
        let mut spans = std::mem::take(&mut self.done);
        for (&client, &(start, controller, state, signal, target_mbps)) in &self.cc {
            spans.push(Span {
                start,
                end,
                kind: SpanKind::CcEpoch {
                    client,
                    controller,
                    state,
                    signal,
                    target_mbps,
                },
            });
        }
        for (&link, &(start, bps, reduced)) in &self.rate {
            spans.push(Span {
                start,
                end,
                kind: SpanKind::RateRegime { link, bps, reduced },
            });
        }
        for (&client, &(start, peak_fraction)) in &self.fec {
            spans.push(Span {
                start,
                end,
                kind: SpanKind::FecElevation {
                    client,
                    peak_fraction,
                },
            });
        }
        for (&link, track) in &self.queues {
            if let Some((start, peak_bytes, drops)) = track.open {
                spans.push(Span {
                    start,
                    end,
                    kind: SpanKind::QueueBuildup {
                        link,
                        peak_bytes,
                        drops,
                    },
                });
            }
        }
        spans.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(a.end.cmp(&b.end))
                .then(a.kind.rank().cmp(&b.kind.rank()))
                .then(a.kind.subject_id().cmp(&b.kind.subject_id()))
        });
        let mut windows = self.windows;
        let want = (end.as_micros().div_ceil(1_000_000)) as usize;
        while windows.len() < want {
            let next = windows.len() as u64;
            windows.push(WindowMetrics {
                window: next,
                ..WindowMetrics::default()
            });
        }
        Timeline {
            spans,
            windows,
            end,
        }
    }
}

impl Recorder for SpanBuilder {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        match kind {
            EventKind::PacketEnqueued {
                link,
                bytes,
                queue_bytes,
                ..
            } => {
                let w = self.window_at(at);
                w.enq_pkts += 1;
                w.enq_bytes += bytes;
                w.peak_queue_bytes = w.peak_queue_bytes.max(queue_bytes);
                self.queue_sample(at, link, queue_bytes, false);
            }
            EventKind::PacketDequeued {
                link, queue_bytes, ..
            } => {
                let w = self.window_at(at);
                w.peak_queue_bytes = w.peak_queue_bytes.max(queue_bytes);
                self.queue_sample(at, link, queue_bytes, false);
            }
            EventKind::PacketDropped {
                link, queue_bytes, ..
            } => {
                let w = self.window_at(at);
                w.drops += 1;
                w.peak_queue_bytes = w.peak_queue_bytes.max(queue_bytes);
                self.queue_sample(at, link, queue_bytes, true);
            }
            EventKind::RateStep { link, bps } => {
                let prev = self.rate.insert(link, (at, bps, false));
                if let Some((start, prev_bps, reduced)) = prev {
                    if prev_bps == bps {
                        // Same rate restated: keep the original regime.
                        self.rate.insert(link, (start, prev_bps, reduced));
                    } else {
                        self.done.push(Span {
                            start,
                            end: at,
                            kind: SpanKind::RateRegime {
                                link,
                                bps: prev_bps,
                                reduced,
                            },
                        });
                        self.rate.insert(link, (at, bps, bps < prev_bps));
                    }
                }
            }
            EventKind::CcState {
                client,
                controller,
                state,
                signal,
                target_mbps,
            } => {
                let prev = self
                    .cc
                    .insert(client, (at, controller, state, signal, target_mbps));
                if let Some((start, p_controller, p_state, p_signal, p_target)) = prev {
                    self.done.push(Span {
                        start,
                        end: at,
                        kind: SpanKind::CcEpoch {
                            client,
                            controller: p_controller,
                            state: p_state,
                            signal: p_signal,
                            target_mbps: p_target,
                        },
                    });
                }
            }
            EventKind::FecRatio {
                client, fraction, ..
            } => {
                let elevated = fraction >= self.cfg.fec_elevated_fraction;
                match self.fec.get_mut(&client) {
                    None => {
                        if elevated {
                            self.fec.insert(client, (at, fraction));
                        }
                    }
                    Some((start, peak)) => {
                        if elevated {
                            *peak = peak.max(fraction);
                        } else {
                            let (start, peak) = (*start, *peak);
                            self.fec.remove(&client);
                            self.done.push(Span {
                                start,
                                end: at,
                                kind: SpanKind::FecElevation {
                                    client,
                                    peak_fraction: peak,
                                },
                            });
                        }
                    }
                }
            }
            EventKind::Freeze {
                client,
                sender,
                count,
                total_ms,
            } => {
                self.window_at(at).freezes += 1;
                let prev = self
                    .freeze_ms
                    .insert((client, sender), total_ms)
                    .unwrap_or(0.0);
                let delta_us = ((total_ms - prev).max(0.0) * 1e3) as u64;
                let start = SimTime::from_micros(at.as_micros().saturating_sub(delta_us));
                self.done.push(Span {
                    start,
                    end: at,
                    kind: SpanKind::Freeze {
                        client,
                        sender,
                        seq: count,
                    },
                });
            }
            EventKind::LayerSwitch { .. }
            | EventKind::Fir { .. }
            | EventKind::InvariantViolation { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(link: u64, queue_bytes: u64) -> EventKind {
        EventKind::PacketEnqueued {
            link,
            flow: 10,
            pkt: 0,
            bytes: 1200,
            queue_bytes,
            queue_pkts: 1,
        }
    }

    #[test]
    fn queue_buildup_opens_on_enter_and_closes_with_hysteresis() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        b.record(SimTime::from_millis(100), enq(0, 1000));
        b.record(SimTime::from_millis(200), enq(0, 9000)); // opens
        b.record(SimTime::from_millis(300), enq(0, 30_000)); // peak
        b.record(SimTime::from_millis(400), enq(0, 5000)); // above exit: stays open
        b.record(
            SimTime::from_millis(500),
            EventKind::PacketDropped {
                link: 0,
                flow: 10,
                pkt: 1,
                bytes: 1200,
                queue_bytes: 32_000,
                reason: "queue_full",
            },
        );
        b.record(SimTime::from_millis(600), enq(0, 1000)); // closes
        let tl = b.finish(SimTime::from_secs(1));
        let spans: Vec<&Span> = tl.spans_of("queue_buildup").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, SimTime::from_millis(200));
        assert_eq!(spans[0].end, SimTime::from_millis(600));
        match spans[0].kind {
            SpanKind::QueueBuildup {
                link,
                peak_bytes,
                drops,
            } => {
                assert_eq!(link, 0);
                assert_eq!(peak_bytes, 32_000);
                assert_eq!(drops, 1);
            }
            ref other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn cc_epochs_chain_and_last_closes_at_end() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        let cc = |state: &'static str, target: f64| EventKind::CcState {
            client: 0,
            controller: "gcc",
            state,
            signal: None,
            target_mbps: target,
        };
        b.record(SimTime::from_secs(1), cc("increase", 1.0));
        b.record(SimTime::from_secs(3), cc("decrease", 0.5));
        let tl = b.finish(SimTime::from_secs(10));
        let spans: Vec<&Span> = tl.spans_of("cc_epoch").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, SimTime::from_secs(1));
        assert_eq!(spans[0].end, SimTime::from_secs(3));
        assert_eq!(spans[1].end, SimTime::from_secs(10));
    }

    #[test]
    fn rate_regimes_mark_reductions_and_ignore_restatements() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        let step = |t: u64, bps: f64| (SimTime::from_secs(t), EventKind::RateStep { link: 0, bps });
        for (at, ev) in [step(0, 3e6), step(5, 3e6), step(20, 3e5), step(35, 3e6)] {
            b.record(at, ev);
        }
        let tl = b.finish(SimTime::from_secs(60));
        let spans: Vec<&Span> = tl.spans_of("rate_regime").collect();
        assert_eq!(spans.len(), 3, "restated rate does not split the regime");
        match (&spans[0].kind, &spans[1].kind, &spans[2].kind) {
            (
                SpanKind::RateRegime { reduced: r0, .. },
                SpanKind::RateRegime {
                    bps: b1,
                    reduced: r1,
                    ..
                },
                SpanKind::RateRegime { reduced: r2, .. },
            ) => {
                assert!(!r0);
                assert!(*r1 && *b1 == 3e5, "the dip regime is marked reduced");
                assert!(!r2, "recovery regime is not a reduction");
            }
            other => panic!("wrong kinds {other:?}"),
        }
        assert_eq!(spans[1].start, SimTime::from_secs(20));
        assert_eq!(spans[1].end, SimTime::from_secs(35));
    }

    #[test]
    fn freeze_events_become_intervals_via_cumulative_deltas() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        b.record(
            SimTime::from_secs(10),
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 1,
                total_ms: 2000.0,
            },
        );
        b.record(
            SimTime::from_secs(15),
            EventKind::Freeze {
                client: 1,
                sender: 0,
                count: 2,
                total_ms: 2500.0,
            },
        );
        let tl = b.finish(SimTime::from_secs(20));
        let spans: Vec<&Span> = tl.spans_of("freeze").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, SimTime::from_secs(8));
        assert_eq!(spans[0].end, SimTime::from_secs(10));
        assert_eq!(spans[1].start, SimTime::from_millis(14_500));
        assert_eq!(spans[1].end, SimTime::from_secs(15));
    }

    #[test]
    fn fec_elevation_window_tracks_peak() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        let fec = |t: u64, fraction: f64| {
            (
                SimTime::from_secs(t),
                EventKind::FecRatio {
                    client: 0,
                    fraction,
                    fec_per_media: fraction,
                },
            )
        };
        for (at, ev) in [fec(1, 0.05), fec(2, 0.2), fec(3, 0.4), fec(4, 0.05)] {
            b.record(at, ev);
        }
        let tl = b.finish(SimTime::from_secs(5));
        let spans: Vec<&Span> = tl.spans_of("fec_elevation").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start, SimTime::from_secs(2));
        assert_eq!(spans[0].end, SimTime::from_secs(4));
        match spans[0].kind {
            SpanKind::FecElevation { peak_fraction, .. } => assert_eq!(peak_fraction, 0.4),
            ref other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn windows_are_dense_and_aggregate_events() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        b.record(SimTime::from_millis(500), enq(0, 1000));
        b.record(SimTime::from_millis(2500), enq(0, 2000));
        let tl = b.finish(SimTime::from_secs(5));
        assert_eq!(tl.windows.len(), 5);
        assert_eq!(tl.windows[0].enq_pkts, 1);
        assert_eq!(tl.windows[0].enq_bytes, 1200);
        assert_eq!(tl.windows[1].enq_pkts, 0);
        assert_eq!(tl.windows[2].peak_queue_bytes, 2000);
        assert!(tl
            .windows
            .iter()
            .enumerate()
            .all(|(i, w)| w.window == i as u64));
    }

    #[test]
    fn spans_jsonl_has_header_and_fixed_key_order() {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        b.record(
            SimTime::from_secs(1),
            EventKind::RateStep { link: 0, bps: 1e6 },
        );
        let tl = b.finish(SimTime::from_secs(2));
        let text = tl.spans_jsonl();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"schema\":\"vcabench-spans/v1\",\"end_us\":2000000,\"spans\":1}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"start_us\":1000000,\"end_us\":2000000,\"kind\":\"rate_regime\",\
             \"link\":0,\"bps\":1000000,\"reduced\":false}"
        );
    }

    #[test]
    fn span_names_are_sorted_and_complete() {
        let mut sorted = SpanKind::NAMES;
        sorted.sort_unstable();
        assert_eq!(sorted, SpanKind::NAMES);
    }
}
