//! # vcabench-observe
//!
//! Streaming diagnosis over the telemetry stream: the layer that turns
//! raw traces into findings. The paper's core analyses are causal
//! narratives — a rate disruption fills a bottleneck queue, the
//! congestion controller backs off, the receiver freezes, recovery is
//! VCA-specific — and this crate reconstructs those narratives
//! automatically instead of leaving them to JSONL archaeology.
//!
//! - [`span`] — the [`SpanBuilder`] (a [`vcabench_telemetry::Recorder`],
//!   so it runs online during a simulation or offline over exported
//!   `.events.jsonl` traces, provably identically) folds the flat event
//!   stream into a [`Timeline`] of typed intervals — cc-state epochs,
//!   rate regimes, freeze intervals, FEC-elevation windows,
//!   queue-buildup episodes — plus per-second [`WindowMetrics`], and
//!   exports the `vcabench-spans/v1` JSONL artifact.
//! - [`anomaly`] — [`diagnose`] classifies episodes (sustained queue,
//!   cc oscillation, stall with idle link, FEC spike, slow recovery)
//!   with severity and time range, annotates every freeze with its
//!   contributory spans in a lookback window ([`Explanation`], including
//!   the disruption → queue-buildup → freeze `chain_complete` marker),
//!   and scores the run as a [`HealthReport`].
//! - [`diff`] — [`diff_runs`]/[`DiffReport`] compare two diagnosed runs
//!   or trace sets (aligned window deltas, anomalies appearing and
//!   disappearing, span-duration shifts), frozen as the
//!   `vcabench-diff/v1` artifact.
//!
//! The harness layer (`vcabench-harness::observe`) wires these into live
//! runs, the pinned disruption suite, and the `repro observe` /
//! `repro diff` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod diff;
pub mod span;

pub use anomaly::{
    diagnose, Anomaly, Diagnosis, Explanation, HealthReport, Severity, ANOMALY_CLASSES,
    DIAGNOSIS_SCHEMA,
};
pub use diff::{diff_runs, AnomalyDelta, DiffReport, RunDiff, SpanShift, WindowDelta, DIFF_SCHEMA};
pub use span::{ObserveConfig, Span, SpanBuilder, SpanKind, Timeline, WindowMetrics, SPANS_SCHEMA};

use vcabench_simcore::SimTime;
use vcabench_telemetry::{EventKind, Recorder};

/// Wrapper recorder remembering the last event timestamp, so an offline
/// replay can close still-open spans at the end of the trace when the
/// caller does not know the run duration.
struct LastAt<'a> {
    inner: &'a mut SpanBuilder,
    last: SimTime,
}

impl Recorder for LastAt<'_> {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        self.last = at;
        self.inner.record(at, kind);
    }
}

/// Diagnose an exported `.events.jsonl` trace offline.
///
/// `end` closes still-open spans; pass the real run duration when known
/// (the online path does), otherwise the last event timestamp is used.
/// With the same events and the same `end`, the result is identical to
/// attaching a [`SpanBuilder`] to the live run — proven by the harness
/// identity test.
pub fn diagnose_jsonl(
    text: &str,
    cfg: &ObserveConfig,
    end: Option<SimTime>,
) -> Result<Diagnosis, String> {
    let mut builder = SpanBuilder::new(cfg.clone());
    let mut tap = LastAt {
        inner: &mut builder,
        last: SimTime::ZERO,
    };
    vcabench_telemetry::replay_jsonl(text, &mut tap)?;
    let end = end.unwrap_or(tap.last).max(tap.last);
    Ok(diagnose(builder.finish(end), cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_diagnosis_defaults_end_to_the_last_event() {
        let text = "{\"t\":0,\"kind\":\"rate_step\",\"link\":0,\"bps\":3000000}\n\
                    {\"t\":20000000,\"kind\":\"rate_step\",\"link\":0,\"bps\":300000}\n";
        let d = diagnose_jsonl(text, &ObserveConfig::default(), None).unwrap();
        assert_eq!(d.timeline.end, SimTime::from_secs(20));
        assert_eq!(d.timeline.spans.len(), 2);
        let explicit = diagnose_jsonl(
            text,
            &ObserveConfig::default(),
            Some(SimTime::from_secs(60)),
        )
        .unwrap();
        assert_eq!(explicit.timeline.end, SimTime::from_secs(60));
        // The open regime now closes at the explicit end.
        assert_eq!(explicit.timeline.spans[1].end, SimTime::from_secs(60));
    }

    #[test]
    fn offline_diagnosis_rejects_malformed_traces() {
        assert!(diagnose_jsonl("not json", &ObserveConfig::default(), None).is_err());
    }
}
