//! The trace-diff engine: structured before/after comparison of two
//! diagnosed runs (or two campaign trace directories, matched by label
//! upstream).
//!
//! A diff answers the triage questions an engine-optimization or
//! scenario-change PR raises: which per-second windows diverged and by
//! how much, which anomalies appeared or disappeared, and how the time
//! spent in each span family shifted. The result freezes as a
//! `vcabench-diff/v1` JSON artifact with fixed key order — byte-identical
//! for identical inputs regardless of `--jobs`.

use std::collections::BTreeMap;

use serde_json::{Map, Value};

use crate::anomaly::Diagnosis;
use crate::span::WindowMetrics;

/// Schema tag of the diff artifact.
pub const DIFF_SCHEMA: &str = "vcabench-diff/v1";

/// How many top diverging windows a run diff keeps.
const TOP_WINDOWS: usize = 5;

/// Signed per-window metric deltas (B minus A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowDelta {
    /// Window index (seconds).
    pub window: u64,
    /// Enqueued-bytes delta.
    pub d_enq_bytes: i64,
    /// Drop-count delta.
    pub d_drops: i64,
    /// Peak-queue-depth delta, bytes.
    pub d_peak_queue_bytes: i64,
    /// Freeze-event delta.
    pub d_freezes: i64,
}

impl WindowDelta {
    fn between(w: u64, a: &WindowMetrics, b: &WindowMetrics) -> Self {
        WindowDelta {
            window: w,
            d_enq_bytes: b.enq_bytes as i64 - a.enq_bytes as i64,
            d_drops: b.drops as i64 - a.drops as i64,
            d_peak_queue_bytes: b.peak_queue_bytes as i64 - a.peak_queue_bytes as i64,
            d_freezes: b.freezes as i64 - a.freezes as i64,
        }
    }

    /// Divergence magnitude used to rank windows: byte-scale deltas plus
    /// heavily weighted packet-loss and freeze deltas.
    fn magnitude(&self) -> u64 {
        self.d_enq_bytes.unsigned_abs()
            + self.d_peak_queue_bytes.unsigned_abs()
            + 10_000 * (self.d_drops.unsigned_abs() + self.d_freezes.unsigned_abs())
    }

    fn to_json_value(self) -> Value {
        let mut m = Map::new();
        m.insert("window".to_string(), Value::U64(self.window));
        m.insert("d_enq_bytes".to_string(), Value::I64(self.d_enq_bytes));
        m.insert("d_drops".to_string(), Value::I64(self.d_drops));
        m.insert(
            "d_peak_queue_bytes".to_string(),
            Value::I64(self.d_peak_queue_bytes),
        );
        m.insert("d_freezes".to_string(), Value::I64(self.d_freezes));
        Value::Object(m)
    }
}

/// Occurrence counts of one (class, subject) anomaly key in each run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyDelta {
    /// Anomaly class tag.
    pub class: String,
    /// Anomaly subject (`"link 0"` / `"client 1"`).
    pub subject: String,
    /// Occurrences in run A.
    pub count_a: u64,
    /// Occurrences in run B.
    pub count_b: u64,
}

impl AnomalyDelta {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("class".to_string(), Value::String(self.class.clone()));
        m.insert("subject".to_string(), Value::String(self.subject.clone()));
        m.insert("count_a".to_string(), Value::U64(self.count_a));
        m.insert("count_b".to_string(), Value::U64(self.count_b));
        Value::Object(m)
    }
}

/// Aggregate span time of one (kind, subject) key in each run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanShift {
    /// Span kind tag.
    pub kind: String,
    /// Span subject.
    pub subject: String,
    /// Spans of this key in run A.
    pub count_a: u64,
    /// Spans of this key in run B.
    pub count_b: u64,
    /// Total span time in run A, microseconds.
    pub us_a: u64,
    /// Total span time in run B, microseconds.
    pub us_b: u64,
}

impl SpanShift {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("kind".to_string(), Value::String(self.kind.clone()));
        m.insert("subject".to_string(), Value::String(self.subject.clone()));
        m.insert("count_a".to_string(), Value::U64(self.count_a));
        m.insert("count_b".to_string(), Value::U64(self.count_b));
        m.insert("us_a".to_string(), Value::U64(self.us_a));
        m.insert("us_b".to_string(), Value::U64(self.us_b));
        Value::Object(m)
    }
}

/// The structured comparison of one pair of diagnosed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Run label (the campaign label in dir mode; caller-chosen for a
    /// single pair).
    pub label: String,
    /// Health grade of run A / run B.
    pub grade_a: &'static str,
    /// Health grade of run B.
    pub grade_b: &'static str,
    /// Health score of run A.
    pub score_a: u64,
    /// Health score of run B.
    pub score_b: u64,
    /// Per-second windows in run A.
    pub windows_a: u64,
    /// Per-second windows in run B.
    pub windows_b: u64,
    /// Total enqueued-bytes delta (B minus A).
    pub d_enq_bytes_total: i64,
    /// Total drop-count delta.
    pub d_drops_total: i64,
    /// Total freeze-event delta.
    pub d_freezes_total: i64,
    /// The most diverging windows, ranked by magnitude (ties: earlier
    /// window first); at most `TOP_WINDOWS` (5), only windows that differ.
    pub top_windows: Vec<WindowDelta>,
    /// Anomaly keys more frequent in B than in A, sorted by key.
    pub appearing: Vec<AnomalyDelta>,
    /// Anomaly keys more frequent in A than in B, sorted by key.
    pub disappearing: Vec<AnomalyDelta>,
    /// Span keys whose count or total time changed, sorted by key.
    pub span_shifts: Vec<SpanShift>,
}

/// Compare two diagnosed runs (B relative to A).
pub fn diff_runs(label: &str, a: &Diagnosis, b: &Diagnosis) -> RunDiff {
    // Aligned per-window deltas over the union of window ranges; a
    // missing window counts as all-zero.
    let zero = WindowMetrics::default();
    let n = a.timeline.windows.len().max(b.timeline.windows.len());
    let mut deltas: Vec<WindowDelta> = Vec::new();
    let mut d_enq_bytes_total = 0i64;
    let mut d_drops_total = 0i64;
    let mut d_freezes_total = 0i64;
    for w in 0..n {
        let wa = a.timeline.windows.get(w).unwrap_or(&zero);
        let wb = b.timeline.windows.get(w).unwrap_or(&zero);
        let d = WindowDelta::between(w as u64, wa, wb);
        d_enq_bytes_total += d.d_enq_bytes;
        d_drops_total += d.d_drops;
        d_freezes_total += d.d_freezes;
        if d.magnitude() > 0 {
            deltas.push(d);
        }
    }
    deltas.sort_by(|x, y| {
        y.magnitude()
            .cmp(&x.magnitude())
            .then(x.window.cmp(&y.window))
    });
    deltas.truncate(TOP_WINDOWS);

    // Anomaly census per (class, subject).
    let census = |d: &Diagnosis| -> BTreeMap<(String, String), u64> {
        let mut m = BTreeMap::new();
        for an in &d.anomalies {
            *m.entry((an.class.to_string(), an.subject.clone()))
                .or_insert(0) += 1;
        }
        m
    };
    let ca = census(a);
    let cb = census(b);
    let mut keys: Vec<&(String, String)> = ca.keys().chain(cb.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut appearing = Vec::new();
    let mut disappearing = Vec::new();
    for key in keys {
        let na = ca.get(key).copied().unwrap_or(0);
        let nb = cb.get(key).copied().unwrap_or(0);
        let delta = AnomalyDelta {
            class: key.0.clone(),
            subject: key.1.clone(),
            count_a: na,
            count_b: nb,
        };
        if nb > na {
            appearing.push(delta);
        } else if na > nb {
            disappearing.push(delta);
        }
    }

    // Span-duration census per (kind, subject).
    let span_census = |d: &Diagnosis| -> BTreeMap<(String, String), (u64, u64)> {
        let mut m: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for sp in &d.timeline.spans {
            let e = m
                .entry((sp.kind.name().to_string(), sp.kind.subject()))
                .or_insert((0, 0));
            e.0 += 1;
            e.1 += sp.end.as_micros() - sp.start.as_micros();
        }
        m
    };
    let sa = span_census(a);
    let sb = span_census(b);
    let mut span_keys: Vec<&(String, String)> = sa.keys().chain(sb.keys()).collect();
    span_keys.sort();
    span_keys.dedup();
    let mut span_shifts = Vec::new();
    for key in span_keys {
        let (count_a, us_a) = sa.get(key).copied().unwrap_or((0, 0));
        let (count_b, us_b) = sb.get(key).copied().unwrap_or((0, 0));
        if count_a != count_b || us_a != us_b {
            span_shifts.push(SpanShift {
                kind: key.0.clone(),
                subject: key.1.clone(),
                count_a,
                count_b,
                us_a,
                us_b,
            });
        }
    }

    RunDiff {
        label: label.to_string(),
        grade_a: a.health.grade,
        grade_b: b.health.grade,
        score_a: a.health.score,
        score_b: b.health.score,
        windows_a: a.timeline.windows.len() as u64,
        windows_b: b.timeline.windows.len() as u64,
        d_enq_bytes_total,
        d_drops_total,
        d_freezes_total,
        top_windows: deltas,
        appearing,
        disappearing,
        span_shifts,
    }
}

impl RunDiff {
    /// True when the two runs diagnosed identically at every compared
    /// dimension.
    pub fn is_identical(&self) -> bool {
        self.grade_a == self.grade_b
            && self.score_a == self.score_b
            && self.d_enq_bytes_total == 0
            && self.top_windows.is_empty()
            && self.appearing.is_empty()
            && self.disappearing.is_empty()
            && self.span_shifts.is_empty()
    }

    /// Serialize with the schema's fixed key order.
    pub fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("label".to_string(), Value::String(self.label.clone()));
        m.insert(
            "grade_a".to_string(),
            Value::String(self.grade_a.to_string()),
        );
        m.insert(
            "grade_b".to_string(),
            Value::String(self.grade_b.to_string()),
        );
        m.insert("score_a".to_string(), Value::U64(self.score_a));
        m.insert("score_b".to_string(), Value::U64(self.score_b));
        m.insert("windows_a".to_string(), Value::U64(self.windows_a));
        m.insert("windows_b".to_string(), Value::U64(self.windows_b));
        m.insert(
            "d_enq_bytes_total".to_string(),
            Value::I64(self.d_enq_bytes_total),
        );
        m.insert("d_drops_total".to_string(), Value::I64(self.d_drops_total));
        m.insert(
            "d_freezes_total".to_string(),
            Value::I64(self.d_freezes_total),
        );
        m.insert(
            "top_windows".to_string(),
            Value::Array(self.top_windows.iter().map(|w| w.to_json_value()).collect()),
        );
        m.insert(
            "appearing".to_string(),
            Value::Array(
                self.appearing
                    .iter()
                    .map(AnomalyDelta::to_json_value)
                    .collect(),
            ),
        );
        m.insert(
            "disappearing".to_string(),
            Value::Array(
                self.disappearing
                    .iter()
                    .map(AnomalyDelta::to_json_value)
                    .collect(),
            ),
        );
        m.insert(
            "span_shifts".to_string(),
            Value::Array(
                self.span_shifts
                    .iter()
                    .map(SpanShift::to_json_value)
                    .collect(),
            ),
        );
        Value::Object(m)
    }
}

/// The `vcabench-diff/v1` artifact: one or many paired run diffs plus
/// the labels only one side had (dir mode).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Name of side A (path or label, caller-chosen).
    pub side_a: String,
    /// Name of side B.
    pub side_b: String,
    /// Paired diffs, in label order.
    pub entries: Vec<RunDiff>,
    /// Labels present only on side A, sorted.
    pub only_a: Vec<String>,
    /// Labels present only on side B, sorted.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// Serialize as the full `vcabench-diff/v1` artifact with fixed key
    /// order, pretty-printed with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut m = Map::new();
        m.insert("schema".to_string(), Value::String(DIFF_SCHEMA.to_string()));
        m.insert("side_a".to_string(), Value::String(self.side_a.clone()));
        m.insert("side_b".to_string(), Value::String(self.side_b.clone()));
        m.insert(
            "entries".to_string(),
            Value::Array(self.entries.iter().map(RunDiff::to_json_value).collect()),
        );
        m.insert(
            "only_a".to_string(),
            Value::Array(
                self.only_a
                    .iter()
                    .map(|l| Value::String(l.clone()))
                    .collect(),
            ),
        );
        m.insert(
            "only_b".to_string(),
            Value::Array(
                self.only_b
                    .iter()
                    .map(|l| Value::String(l.clone()))
                    .collect(),
            ),
        );
        let mut out = serde_json::to_string_pretty(&Value::Object(m)).expect("diff serialization");
        out.push('\n');
        out
    }

    /// Deterministic text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("trace diff: {} vs {}\n", self.side_a, self.side_b));
        for e in &self.entries {
            out.push_str(&format!("\n[{}]\n", e.label));
            out.push_str(&format!(
                "  health {} ({}) -> {} ({})\n",
                e.grade_a, e.score_a, e.grade_b, e.score_b
            ));
            out.push_str(&format!(
                "  windows {} vs {} | d_enq_bytes {:+} | d_drops {:+} | d_freezes {:+}\n",
                e.windows_a, e.windows_b, e.d_enq_bytes_total, e.d_drops_total, e.d_freezes_total
            ));
            if e.is_identical() {
                out.push_str("  identical\n");
                continue;
            }
            for w in &e.top_windows {
                out.push_str(&format!(
                    "  window {:>4}: enq_bytes {:+} peak_queue {:+} drops {:+} freezes {:+}\n",
                    w.window, w.d_enq_bytes, w.d_peak_queue_bytes, w.d_drops, w.d_freezes
                ));
            }
            for a in &e.appearing {
                out.push_str(&format!(
                    "  + {} @ {} ({} -> {})\n",
                    a.class, a.subject, a.count_a, a.count_b
                ));
            }
            for a in &e.disappearing {
                out.push_str(&format!(
                    "  - {} @ {} ({} -> {})\n",
                    a.class, a.subject, a.count_a, a.count_b
                ));
            }
            for s in &e.span_shifts {
                out.push_str(&format!(
                    "  ~ {} @ {}: {}x {:.1}s -> {}x {:.1}s\n",
                    s.kind,
                    s.subject,
                    s.count_a,
                    s.us_a as f64 * 1e-6,
                    s.count_b,
                    s.us_b as f64 * 1e-6
                ));
            }
        }
        if !self.only_a.is_empty() {
            out.push_str(&format!(
                "\nonly in {}: {}\n",
                self.side_a,
                self.only_a.join(", ")
            ));
        }
        if !self.only_b.is_empty() {
            out.push_str(&format!(
                "\nonly in {}: {}\n",
                self.side_b,
                self.only_b.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::diagnose;
    use crate::span::{ObserveConfig, SpanBuilder};
    use vcabench_simcore::SimTime;
    use vcabench_telemetry::{EventKind, Recorder};

    fn enq(t_ms: u64, queue_bytes: u64) -> (SimTime, EventKind) {
        (
            SimTime::from_millis(t_ms),
            EventKind::PacketEnqueued {
                link: 0,
                flow: 10,
                pkt: 0,
                bytes: 1200,
                queue_bytes,
                queue_pkts: 1,
            },
        )
    }

    fn diagnose_events(events: &[(SimTime, EventKind)], end_secs: u64) -> Diagnosis {
        let mut b = SpanBuilder::new(ObserveConfig::default());
        for (at, kind) in events {
            b.record(*at, kind.clone());
        }
        diagnose(
            b.finish(SimTime::from_secs(end_secs)),
            &ObserveConfig::default(),
        )
    }

    #[test]
    fn identical_runs_diff_as_identical() {
        let evs = vec![enq(500, 1000), enq(1500, 2000)];
        let a = diagnose_events(&evs, 5);
        let b = diagnose_events(&evs, 5);
        let d = diff_runs("same", &a, &b);
        assert!(d.is_identical());
        assert_eq!(d.d_enq_bytes_total, 0);
        assert!(d.top_windows.is_empty());
    }

    #[test]
    fn disruption_appears_in_the_diff() {
        let clean = diagnose_events(&[enq(500, 1000)], 10);
        let disrupted = diagnose_events(
            &[
                enq(500, 1000),
                enq(2000, 20_000),
                (
                    SimTime::from_secs(5),
                    EventKind::Freeze {
                        client: 1,
                        sender: 0,
                        count: 1,
                        total_ms: 1000.0,
                    },
                ),
                enq(8000, 100),
            ],
            10,
        );
        let d = diff_runs("run", &clean, &disrupted);
        assert!(!d.is_identical());
        assert_eq!(d.d_freezes_total, 1);
        assert!(d.d_enq_bytes_total > 0);
        assert!(
            d.appearing.iter().any(|a| a.class == "sustained_queue"),
            "buildup anomaly appears: {:?}",
            d.appearing
        );
        assert!(d.disappearing.is_empty());
        assert!(d
            .span_shifts
            .iter()
            .any(|s| s.kind == "queue_buildup" && s.count_a == 0 && s.count_b == 1));
        // Reversing the comparison flips appearing/disappearing.
        let r = diff_runs("run", &disrupted, &clean);
        assert!(r.appearing.is_empty());
        assert!(r.disappearing.iter().any(|a| a.class == "sustained_queue"));
        assert_eq!(r.d_freezes_total, -1);
    }

    #[test]
    fn top_windows_rank_by_magnitude_and_cap_at_five() {
        let mut evs = Vec::new();
        for w in 0..8u64 {
            // Window w gains (w+1) extra kB of enqueued bytes in run B.
            for _ in 0..=w {
                evs.push(enq(w * 1000 + 10, 100));
            }
        }
        let a = diagnose_events(&[], 8);
        let b = diagnose_events(&evs, 8);
        let d = diff_runs("run", &a, &b);
        assert_eq!(d.top_windows.len(), 5);
        assert_eq!(d.top_windows[0].window, 7, "largest divergence first");
        let mags: Vec<u64> = d.top_windows.iter().map(|w| w.magnitude()).collect();
        assert!(mags.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn diff_report_json_is_schema_tagged_and_stable() {
        let a = diagnose_events(&[], 2);
        let b = diagnose_events(&[], 2);
        let report = DiffReport {
            side_a: "a".to_string(),
            side_b: "b".to_string(),
            entries: vec![diff_runs("x", &a, &b)],
            only_a: vec![],
            only_b: vec!["extra".to_string()],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"vcabench-diff/v1\","));
        assert!(json.ends_with('\n'));
        assert_eq!(json, report.to_json(), "serialization is deterministic");
        let text = report.render();
        assert!(text.contains("identical"));
        assert!(text.contains("only in b: extra"));
    }
}
