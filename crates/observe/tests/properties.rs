//! Property tests for the span deriver: timelines are well-formed over
//! randomized event streams, window accounting conserves the input, and
//! the online diagnosis equals the offline (JSONL-replayed) one.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vcabench_observe::{diagnose, diagnose_jsonl, ObserveConfig, SpanBuilder};
use vcabench_simcore::SimTime;
use vcabench_telemetry::{events_jsonl, EventKind, EventLog, Recorder};

/// One synthetic event: a timestamp plus a raw word the kind is decoded
/// from (the vendored proptest subset has no tuple strategies).
#[derive(Debug, Clone, Copy)]
struct Raw {
    at_us: u64,
    word: u64,
}

/// Decode a time-sorted event stream. Freeze events carry *cumulative*
/// per-(client, sender) counters in the real schema, so the generator
/// tracks running totals instead of emitting raw random values.
fn stream_of(raw: &[u64]) -> Vec<(SimTime, EventKind)> {
    let mut ordered: Vec<Raw> = raw
        .iter()
        .map(|&word| Raw {
            at_us: (word >> 16) % 15_000_000,
            word,
        })
        .collect();
    ordered.sort_by_key(|r| r.at_us);
    let mut freeze_totals: BTreeMap<(u64, u64), (u64, f64)> = BTreeMap::new();
    let mut out = Vec::with_capacity(ordered.len());
    for r in &ordered {
        let a = (r.word >> 8) & 0xffff;
        let b = (r.word >> 24) & 0xffff;
        let c = (r.word >> 40) & 0x3;
        let kind = match r.word % 7 {
            0 => EventKind::PacketEnqueued {
                link: c,
                flow: a % 8,
                pkt: b,
                bytes: 40 + a % 1460,
                queue_bytes: (b * 7) % 40_000,
                queue_pkts: b % 64,
            },
            1 => EventKind::PacketDequeued {
                link: c,
                flow: a % 8,
                pkt: b,
                bytes: 40 + a % 1460,
                queue_bytes: (b * 5) % 40_000,
            },
            2 => EventKind::PacketDropped {
                link: c,
                flow: a % 8,
                pkt: b,
                bytes: 40 + a % 1460,
                queue_bytes: (b * 3) % 40_000,
                reason: if r.word & 0x10000 == 0 {
                    "queue_full"
                } else {
                    "impairment"
                },
            },
            3 => EventKind::RateStep {
                link: c,
                bps: (1 + a % 3000) as f64 * 1000.0,
            },
            4 => {
                const CONTROLLERS: [&str; 3] = ["fbra", "gcc", "teams"];
                const STATES: [&str; 6] =
                    ["decrease", "hold", "increase", "probe", "ramp", "recover"];
                const SIGNALS: [&str; 3] = ["normal", "overuse", "underuse"];
                EventKind::CcState {
                    client: c,
                    controller: CONTROLLERS[(a % 3) as usize],
                    state: STATES[(b % 6) as usize],
                    signal: match r.word % 4 {
                        0 => None,
                        n => Some(SIGNALS[(n - 1) as usize]),
                    },
                    target_mbps: (a % 400) as f64 / 100.0,
                }
            }
            5 => EventKind::FecRatio {
                client: c,
                fraction: (a % 1000) as f64 / 1000.0,
                fec_per_media: (b % 2000) as f64 / 1000.0,
            },
            _ => {
                let entry = freeze_totals.entry((c, (c + 1) % 4)).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += (1 + b % 4000) as f64 / 2.0;
                EventKind::Freeze {
                    client: c,
                    sender: (c + 1) % 4,
                    count: entry.0,
                    total_ms: entry.1,
                }
            }
        };
        out.push((SimTime::from_micros(r.at_us), kind));
    }
    out
}

proptest! {
    /// Timelines derived from arbitrary valid streams are well-formed:
    /// span intervals are ordered and inside the run, spans are sorted,
    /// the window vector is dense, and window accounting conserves the
    /// enqueue/drop input exactly.
    #[test]
    fn timelines_are_well_formed(raw in proptest::collection::vec(any::<u64>(), 0..300)) {
        let stream = stream_of(&raw);
        let end = SimTime::from_secs(16);
        let mut builder = SpanBuilder::new(ObserveConfig::default());
        for &(at, ref kind) in &stream {
            builder.record(at, kind.clone());
        }
        let tl = builder.finish(end);
        prop_assert_eq!(tl.end, end);
        for span in &tl.spans {
            prop_assert!(span.start <= span.end, "span interval ordered: {span:?}");
            prop_assert!(span.end <= tl.end, "span inside the run: {span:?}");
        }
        prop_assert!(
            tl.spans.windows(2).all(|w| w[0].start <= w[1].start),
            "spans sorted by start"
        );
        prop_assert_eq!(tl.windows.len(), 16);
        prop_assert!(tl.windows.iter().enumerate().all(|(i, w)| w.window == i as u64));
        let mut enq_pkts = 0u64;
        let mut enq_bytes = 0u64;
        let mut drops = 0u64;
        for (_, kind) in &stream {
            match kind {
                EventKind::PacketEnqueued { bytes, .. } => {
                    enq_pkts += 1;
                    enq_bytes += bytes;
                }
                EventKind::PacketDropped { .. } => drops += 1,
                _ => {}
            }
        }
        prop_assert_eq!(tl.windows.iter().map(|w| w.enq_pkts).sum::<u64>(), enq_pkts);
        prop_assert_eq!(tl.windows.iter().map(|w| w.enq_bytes).sum::<u64>(), enq_bytes);
        prop_assert_eq!(tl.windows.iter().map(|w| w.drops).sum::<u64>(), drops);
    }

    /// Online diagnosis (events fed directly) equals offline diagnosis
    /// (events exported to JSONL and replayed) over randomized streams —
    /// the randomized version of the harness's live-vs-offline test.
    #[test]
    fn online_and_offline_diagnosis_agree(raw in proptest::collection::vec(any::<u64>(), 0..300)) {
        let stream = stream_of(&raw);
        let end = SimTime::from_secs(16);
        let cfg = ObserveConfig::default();
        let mut builder = SpanBuilder::new(cfg.clone());
        let mut log = EventLog::unbounded();
        for &(at, ref kind) in &stream {
            builder.record(at, kind.clone());
            log.record(at, kind.clone());
        }
        let online = diagnose(builder.finish(end), &cfg);
        let offline = diagnose_jsonl(&events_jsonl(&log), &cfg, Some(end)).expect("replay");
        prop_assert_eq!(online, offline);
    }
}
