//! Property tests for the fingerprint accumulator: fingerprints are
//! invariant to how *other* flows' events interleave with the tapped
//! flow's, and the online path (events fed directly) is byte-identical
//! to the offline path (events exported to JSONL and replayed).

use proptest::prelude::*;
use vcabench_fingerprint::{FingerprintBank, FlowAccumulator, FlowTap, Vantage};
use vcabench_simcore::SimTime;
use vcabench_telemetry::{events_jsonl, replay_jsonl, EventKind, EventLog, Recorder};

/// One synthetic packet observation in a randomized trace.
#[derive(Debug, Clone)]
struct Obs {
    at_us: u64,
    flow: u64,
    bytes: u64,
    kind: u8, // 0 = enqueue, 1 = dequeue, 2 = drop
}

/// Decode one raw u64 into an observation (the vendored proptest subset
/// has no tuple strategies, so traces are vectors of raw words).
fn decode(raw: u64) -> Obs {
    Obs {
        at_us: (raw >> 16) % 5_000_000,
        flow: 10 + (raw & 0x3),
        bytes: 40 + ((raw >> 2) & 0x7ff).min(1459),
        kind: ((raw >> 13) % 3) as u8,
    }
}

/// A time-sorted randomized trace over a handful of flows on link 1.
fn trace_of(raw: &[u64]) -> Vec<Obs> {
    let mut v: Vec<Obs> = raw.iter().map(|&r| decode(r)).collect();
    v.sort_by_key(|o| o.at_us);
    v
}

fn event_of(o: &Obs) -> EventKind {
    match o.kind {
        0 => EventKind::PacketEnqueued {
            link: 1,
            flow: o.flow,
            pkt: 0,
            bytes: o.bytes,
            queue_bytes: 0,
            queue_pkts: 0,
        },
        1 => EventKind::PacketDequeued {
            link: 1,
            flow: o.flow,
            pkt: 0,
            bytes: o.bytes,
            queue_bytes: 0,
        },
        _ => EventKind::PacketDropped {
            link: 1,
            flow: o.flow,
            pkt: 0,
            bytes: o.bytes,
            queue_bytes: 0,
            reason: "queue_full",
        },
    }
}

fn tap() -> FlowTap {
    FlowTap {
        link: 1,
        flow: 11,
        vantage: Vantage::Recv,
    }
}

proptest! {
    /// Feeding the full interleaved trace equals feeding only the tapped
    /// flow's events: foreign flows cannot perturb a fingerprint.
    #[test]
    fn fingerprint_is_invariant_to_cross_flow_interleaving(raw in proptest::collection::vec(any::<u64>(), 0..200)) {
        let trace = trace_of(&raw);
        let mut interleaved = FlowAccumulator::new(tap());
        let mut isolated = FlowAccumulator::new(tap());
        for o in &trace {
            let at = SimTime::from_micros(o.at_us);
            interleaved.record(at, event_of(o));
            if o.flow == 11 {
                isolated.record(at, event_of(o));
            }
        }
        let end = SimTime::from_secs(6);
        prop_assert_eq!(interleaved.finish(end), isolated.finish(end));
    }

    /// Online (events fed directly) and offline (exported to JSONL, then
    /// replayed) fingerprints are identical over randomized traces.
    #[test]
    fn online_and_offline_fingerprints_are_identical(raw in proptest::collection::vec(any::<u64>(), 0..200)) {
        let trace = trace_of(&raw);
        let taps = [
            FlowTap { link: 1, flow: 10, vantage: Vantage::Send },
            tap(),
        ];
        let mut online = FingerprintBank::new(&taps);
        let mut log = EventLog::unbounded();
        for o in &trace {
            let at = SimTime::from_micros(o.at_us);
            online.record(at, event_of(o));
            log.record(at, event_of(o));
        }
        let mut offline = FingerprintBank::new(&taps);
        replay_jsonl(&events_jsonl(&log), &mut offline).expect("replay");
        let end = SimTime::from_secs(6);
        prop_assert_eq!(online.finish(end), offline.finish(end));
    }
}
