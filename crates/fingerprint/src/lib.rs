//! # vcabench-fingerprint
//!
//! Flow-level VCA identification: the pipeline stage *ahead of* passive
//! QoE inference. The paper's passive methodology presumes the observer
//! already knows which application a media flow belongs to; this crate
//! reconstructs that knowledge from packet-level observables alone —
//! sizes, timestamps, and direction, exactly what an on-path observer of
//! an encrypted RTP flow gets.
//!
//! - [`features`] — streaming [`FlowAccumulator`]/[`FingerprintBank`]
//!   (a [`vcabench_telemetry::Recorder`], so it runs online during a
//!   simulation or offline over exported `.events.jsonl` traces) folding
//!   packet events into a call-level [`CallFingerprint`]: size-class
//!   histograms, inter-arrival statistics, frame cadence, rate
//!   oscillation, directional byte ratios.
//! - [`classifier`] — the pluggable [`Classifier`] trait with a
//!   training-free [`RuleClassifier`] and a trained nearest-centroid
//!   [`CentroidModel`] frozen as the schema-versioned artifact
//!   `models/centroid-v1.json`.
//!
//! The harness layer (`vcabench-harness::fingerprint`) places taps,
//! scores identification accuracy against spec ground truth, and routes
//! `repro infer --identify` runs to per-VCA calibrated estimators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod features;

pub use classifier::{
    CentroidModel, Classifier, RuleClassifier, VcaFamily, MODEL_SCHEMA, RULE_MEET_FPS,
    RULE_MEET_FULL_FRACTION, RULE_TEAMS_IAT_CV,
};
pub use features::{
    size_class, CallFingerprint, FingerprintBank, FlowAccumulator, FlowFingerprint, FlowTap,
    Vantage, AUDIO_WIRE, FP_FEATURE_NAMES, FRAME_CLOSE_GAP_S, FULL_WIRE, HEADER_BYTES,
    NUM_FP_FEATURES, NUM_SIZE_CLASSES, SIZE_CLASS_BOUNDS, VIDEO_MIN_WIRE,
};
