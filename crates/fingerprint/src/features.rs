//! Streaming, single-pass fingerprint accumulation from packet-level
//! telemetry.
//!
//! A [`FlowAccumulator`] watches one tap — a `(link, flow)` pair plus a
//! [`Vantage`] — and folds the packet events that cross it into one
//! call-level [`FlowFingerprint`]. It implements
//! [`vcabench_telemetry::Recorder`], so the same code runs *online*
//! (attached to a live simulation through a
//! [`vcabench_telemetry::Telemetry`] handle) and *offline* (fed from an
//! exported `.events.jsonl` trace via
//! [`vcabench_telemetry::replay_jsonl`]); both paths see the identical
//! event stream and therefore produce identical fingerprints.
//!
//! Unlike `vcabench-infer`, which estimates per-second QoE, this stage
//! answers a prior question: *which application is this flow?* The
//! observables are the ones MacMillan et al. and the header-free
//! classification literature lean on:
//!
//! - **Packet-size histogram by size class** — audio/RTCP vs video
//!   bands vs full-MTU packets ([`size_class`]). FEC parity packets are
//!   always full-sized, so a FEC-heavy sender (Zoom) concentrates mass
//!   in the top class.
//! - **Inter-arrival statistics** — mean and coefficient of variation
//!   of video packet gaps (pacing smoothness differs per controller).
//! - **Burst/frame cadence** — frames delimited by the marker-packet
//!   heuristic (a video packet below [`FULL_WIRE`] ends a frame; a
//!   silence beyond [`FRAME_CLOSE_GAP_S`] force-closes a pending one).
//! - **Rate-oscillation signature** — the temporal coefficient of
//!   variation of per-second video bytes (Teams' controller oscillates
//!   around its nominal rate; GCC and FBRA hold steadier).
//! - **Directional byte ratio** — uplink vs downlink volume, combined
//!   at the call level by [`CallFingerprint`].

use vcabench_simcore::SimTime;
use vcabench_telemetry::{EventKind, Recorder};

/// Per-packet header overhead on the wire: RTP (12) + UDP/IP (28).
pub const HEADER_BYTES: u64 = 40;
/// Largest wire size still classified as audio/control.
pub const AUDIO_WIRE: u64 = 140;
/// Smallest wire size classified as video.
pub const VIDEO_MIN_WIRE: u64 = AUDIO_WIRE + 1;
/// Wire size of a full (MTU-payload) video packet; smaller video packets
/// are partial tails that mark a frame boundary.
pub const FULL_WIRE: u64 = 1140;
/// Video-stream silence that force-closes a pending frame whose tail
/// packet was full-sized, seconds.
pub const FRAME_CLOSE_GAP_S: f64 = 0.080;

/// Number of packet-size classes in the fingerprint histogram.
pub const NUM_SIZE_CLASSES: usize = 6;

/// Upper (inclusive) wire-size bound of each histogram class, except the
/// last, which is open-ended. Classes: RTCP/signaling, audio, three video
/// bands, full-MTU.
pub const SIZE_CLASS_BOUNDS: [u64; NUM_SIZE_CLASSES - 1] =
    [96, AUDIO_WIRE, 500, 1000, FULL_WIRE - 1];

/// Histogram class of a wire size.
pub fn size_class(bytes: u64) -> usize {
    SIZE_CLASS_BOUNDS
        .iter()
        .position(|&b| bytes <= b)
        .unwrap_or(NUM_SIZE_CLASSES - 1)
}

/// Which side of the tap link the virtual observer sits on (mirrors the
/// `vcabench-infer` vantage semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vantage {
    /// Before the queue: sees enqueues *and* drops on the tap link.
    Send,
    /// After the queue: sees dequeues on the tap link.
    Recv,
}

/// One passive observation point: a link, a flow on it, and a vantage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTap {
    /// Link index to watch.
    pub link: u64,
    /// Flow to watch on that link.
    pub flow: u64,
    /// Observer position.
    pub vantage: Vantage,
}

/// Call-level fingerprint of one tapped flow: everything the classifier
/// sees about one direction of a call.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowFingerprint {
    /// The tap the fingerprint was accumulated on.
    pub tap: FlowTap,
    /// Observation span, seconds (the `end` passed to `finish`).
    pub duration_s: f64,
    /// Packet counts per size class (see [`size_class`]).
    pub hist: [u64; NUM_SIZE_CLASSES],
    /// Total wire bytes observed.
    pub wire_bytes: u64,
    /// Video payload bytes (wire minus [`HEADER_BYTES`] per video packet).
    pub video_payload_bytes: u64,
    /// Video-classified packets.
    pub video_pkts: u64,
    /// Video packets of exactly full wire size.
    pub full_pkts: u64,
    /// Non-video packets (audio, RTCP, signaling).
    pub small_pkts: u64,
    /// Frame boundaries detected (marker or gap-closed).
    pub frames: u64,
    /// Mean inter-arrival gap between video packets, seconds.
    pub iat_mean_s: f64,
    /// Coefficient of variation of the video inter-arrival gaps.
    pub iat_cv: f64,
    /// Temporal coefficient of variation of per-second video payload
    /// bytes (the rate-oscillation signature).
    pub rate_cv: f64,
}

impl FlowFingerprint {
    /// Mean video payload rate over the observation span, Mbps.
    pub fn video_mbps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.video_payload_bytes as f64 * 8e-6 / self.duration_s
        }
    }

    /// Fraction of video packets that were full-sized (high under heavy
    /// FEC, whose parity packets are always full-sized).
    pub fn full_fraction(&self) -> f64 {
        if self.video_pkts == 0 {
            0.0
        } else {
            self.full_pkts as f64 / self.video_pkts as f64
        }
    }

    /// Mean video payload per packet, bytes.
    pub fn mean_video_payload(&self) -> f64 {
        if self.video_pkts == 0 {
            0.0
        } else {
            self.video_payload_bytes as f64 / self.video_pkts as f64
        }
    }

    /// Inferred frame rate over the observation span, frames per second.
    pub fn fps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.frames as f64 / self.duration_s
        }
    }

    /// Mean video payload per inferred frame, kilobytes.
    pub fn payload_per_frame_kb(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.video_payload_bytes as f64 * 1e-3 / self.frames as f64
        }
    }

    /// Non-video packets per second (audio + control cadence).
    pub fn small_rate(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.small_pkts as f64 / self.duration_s
        }
    }
}

/// Single-pass fingerprint accumulator for one tap.
///
/// Feed it events in simulation-time order (the [`Recorder`] contract),
/// then call [`FlowAccumulator::finish`]. State is O(1) plus one byte
/// bucket per observed second — no packets are buffered.
#[derive(Debug, Clone)]
pub struct FlowAccumulator {
    tap: FlowTap,
    hist: [u64; NUM_SIZE_CLASSES],
    wire_bytes: u64,
    video_payload_bytes: u64,
    video_pkts: u64,
    full_pkts: u64,
    small_pkts: u64,
    frames: u64,
    // Inter-arrival accumulators over video packets.
    iat_n: u64,
    iat_sum: f64,
    iat_sumsq: f64,
    last_video_s: Option<f64>,
    // Frame segmentation.
    pending_payload: u64,
    // Per-second video payload buckets (rate-oscillation signature).
    sec_bytes: Vec<u64>,
}

impl FlowAccumulator {
    /// An accumulator for `tap` with no events seen yet.
    pub fn new(tap: FlowTap) -> Self {
        FlowAccumulator {
            tap,
            hist: [0; NUM_SIZE_CLASSES],
            wire_bytes: 0,
            video_payload_bytes: 0,
            video_pkts: 0,
            full_pkts: 0,
            small_pkts: 0,
            frames: 0,
            iat_n: 0,
            iat_sum: 0.0,
            iat_sumsq: 0.0,
            last_video_s: None,
            pending_payload: 0,
            sec_bytes: Vec::new(),
        }
    }

    /// The tap this accumulator watches.
    pub fn tap(&self) -> FlowTap {
        self.tap
    }

    /// One packet crossed the tap at `at` with `bytes` on the wire.
    fn observe_packet(&mut self, at: SimTime, bytes: u64) {
        let now_s = at.as_secs_f64();
        // A long video silence closes a pending frame whose tail packet
        // was full-sized (frame bytes an exact MTU multiple).
        if self.pending_payload > 0 {
            if let Some(last) = self.last_video_s {
                if now_s - last > FRAME_CLOSE_GAP_S {
                    self.pending_payload = 0;
                    self.frames += 1;
                }
            }
        }
        self.hist[size_class(bytes)] += 1;
        self.wire_bytes += bytes;
        if bytes >= VIDEO_MIN_WIRE {
            let payload = bytes - HEADER_BYTES;
            self.video_pkts += 1;
            self.video_payload_bytes += payload;
            self.pending_payload += payload;
            let sec = (at.as_micros() / 1_000_000) as usize;
            if sec >= self.sec_bytes.len() {
                self.sec_bytes.resize(sec + 1, 0);
            }
            self.sec_bytes[sec] += payload;
            if let Some(last) = self.last_video_s {
                let dt = (now_s - last).max(0.0);
                self.iat_n += 1;
                self.iat_sum += dt;
                self.iat_sumsq += dt * dt;
            }
            self.last_video_s = Some(now_s);
            if bytes >= FULL_WIRE {
                self.full_pkts += 1;
            } else {
                // Partial tail: the frame's last packet.
                self.pending_payload = 0;
                self.frames += 1;
            }
        } else {
            self.small_pkts += 1;
        }
    }

    /// Seal the accumulator into a [`FlowFingerprint`] covering `[0, end)`.
    /// A frame still pending at `end` never completed and is dropped.
    pub fn finish(self, end: SimTime) -> FlowFingerprint {
        let duration_s = end.as_secs_f64();
        let (iat_mean_s, iat_cv) = if self.iat_n == 0 {
            (0.0, 0.0)
        } else {
            let n = self.iat_n as f64;
            let mean = self.iat_sum / n;
            let var = (self.iat_sumsq / n - mean * mean).max(0.0);
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            (mean, cv)
        };
        // Temporal CV over every *complete* second in [0, end): pad the
        // buckets with zeros out to the span so silence counts.
        let secs = end.as_micros() / 1_000_000;
        let rate_cv = if secs == 0 {
            0.0
        } else {
            let n = secs as f64;
            let total: u64 = self.sec_bytes.iter().take(secs as usize).sum();
            let mean = total as f64 / n;
            if mean <= 0.0 {
                0.0
            } else {
                let sumsq: f64 = (0..secs as usize)
                    .map(|i| {
                        let b = self.sec_bytes.get(i).copied().unwrap_or(0) as f64;
                        (b - mean) * (b - mean)
                    })
                    .sum();
                (sumsq / n).sqrt() / mean
            }
        };
        FlowFingerprint {
            tap: self.tap,
            duration_s,
            hist: self.hist,
            wire_bytes: self.wire_bytes,
            video_payload_bytes: self.video_payload_bytes,
            video_pkts: self.video_pkts,
            full_pkts: self.full_pkts,
            small_pkts: self.small_pkts,
            frames: self.frames,
            iat_mean_s,
            iat_cv,
            rate_cv,
        }
    }
}

impl Recorder for FlowAccumulator {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        match kind {
            EventKind::PacketEnqueued {
                link, flow, bytes, ..
            } if self.tap.vantage == Vantage::Send
                && link == self.tap.link
                && flow == self.tap.flow =>
            {
                self.observe_packet(at, bytes)
            }
            EventKind::PacketDequeued {
                link, flow, bytes, ..
            } if self.tap.vantage == Vantage::Recv
                && link == self.tap.link
                && flow == self.tap.flow =>
            {
                self.observe_packet(at, bytes)
            }
            // Pre-queue observer: the sender emitted this packet even
            // though the queue discarded it.
            EventKind::PacketDropped {
                link, flow, bytes, ..
            } if self.tap.vantage == Vantage::Send
                && link == self.tap.link
                && flow == self.tap.flow =>
            {
                self.observe_packet(at, bytes)
            }
            _ => {}
        }
    }
}

/// The two directions of one call, fingerprinted together: what the
/// classifier consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CallFingerprint {
    /// Uplink (send-side) fingerprint.
    pub up: FlowFingerprint,
    /// Downlink (recv-side) fingerprint.
    pub down: FlowFingerprint,
}

/// Number of classifier input features.
pub const NUM_FP_FEATURES: usize = 17;

/// Feature names, in the order [`CallFingerprint::feature_vector`]
/// produces them. Part of the model artifact schema.
pub const FP_FEATURE_NAMES: [&str; NUM_FP_FEATURES] = [
    "up_video_mbps",
    "up_full_fraction",
    "up_mean_video_payload_kb",
    "up_fps",
    "up_payload_per_frame_kb",
    "up_iat_cv",
    "up_rate_cv",
    "up_small_rate",
    "down_video_mbps",
    "down_full_fraction",
    "down_mean_video_payload_kb",
    "down_fps",
    "down_payload_per_frame_kb",
    "down_iat_cv",
    "down_rate_cv",
    "down_small_rate",
    "up_down_byte_ratio",
];

fn tap_features(f: &FlowFingerprint) -> [f64; 8] {
    [
        f.video_mbps(),
        f.full_fraction(),
        f.mean_video_payload() * 1e-3,
        f.fps(),
        f.payload_per_frame_kb(),
        f.iat_cv,
        f.rate_cv,
        f.small_rate(),
    ]
}

impl CallFingerprint {
    /// Uplink-to-downlink wire byte ratio (downlink floored at one byte).
    pub fn byte_ratio(&self) -> f64 {
        self.up.wire_bytes as f64 / (self.down.wire_bytes.max(1)) as f64
    }

    /// The classifier's input vector ([`FP_FEATURE_NAMES`] order).
    pub fn feature_vector(&self) -> [f64; NUM_FP_FEATURES] {
        let mut out = [0.0; NUM_FP_FEATURES];
        out[..8].copy_from_slice(&tap_features(&self.up));
        out[8..16].copy_from_slice(&tap_features(&self.down));
        out[16] = self.byte_ratio();
        out
    }
}

/// A bank of accumulators sharing one event stream: the [`Recorder`] to
/// attach when a run fingerprints several taps at once.
#[derive(Debug, Clone, Default)]
pub struct FingerprintBank {
    accs: Vec<FlowAccumulator>,
}

impl FingerprintBank {
    /// One accumulator per tap.
    pub fn new(taps: &[FlowTap]) -> Self {
        FingerprintBank {
            accs: taps.iter().map(|&t| FlowAccumulator::new(t)).collect(),
        }
    }

    /// Finish every accumulator, returning fingerprints in tap order.
    pub fn finish(self, end: SimTime) -> Vec<FlowFingerprint> {
        self.accs.into_iter().map(|a| a.finish(end)).collect()
    }
}

impl Recorder for FingerprintBank {
    fn record(&mut self, at: SimTime, kind: EventKind) {
        if !matches!(
            kind,
            EventKind::PacketEnqueued { .. }
                | EventKind::PacketDequeued { .. }
                | EventKind::PacketDropped { .. }
        ) {
            return;
        }
        for a in &mut self.accs {
            a.record(at, kind.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_tap() -> FlowTap {
        FlowTap {
            link: 1,
            flow: 11,
            vantage: Vantage::Recv,
        }
    }

    fn deq(link: u64, flow: u64, bytes: u64) -> EventKind {
        EventKind::PacketDequeued {
            link,
            flow,
            pkt: 0,
            bytes,
            queue_bytes: 0,
        }
    }

    fn enq(link: u64, flow: u64, bytes: u64) -> EventKind {
        EventKind::PacketEnqueued {
            link,
            flow,
            pkt: 0,
            bytes,
            queue_bytes: 0,
            queue_pkts: 0,
        }
    }

    /// Send a frame of `full` full packets plus one marker tail.
    fn frame(acc: &mut FlowAccumulator, at_ms: u64, full: usize) {
        for i in 0..full {
            acc.record(
                SimTime::from_millis(at_ms) + vcabench_simcore::SimDuration::from_micros(i as u64),
                deq(1, 11, FULL_WIRE),
            );
        }
        acc.record(
            SimTime::from_millis(at_ms) + vcabench_simcore::SimDuration::from_micros(full as u64),
            deq(1, 11, 500),
        );
    }

    #[test]
    fn size_classes_are_exhaustive_and_ordered() {
        assert_eq!(size_class(40), 0);
        assert_eq!(size_class(96), 0);
        assert_eq!(size_class(AUDIO_WIRE), 1);
        assert_eq!(size_class(141), 2);
        assert_eq!(size_class(500), 2);
        assert_eq!(size_class(501), 3);
        assert_eq!(size_class(1000), 3);
        assert_eq!(size_class(1001), 4);
        assert_eq!(size_class(FULL_WIRE - 1), 4);
        assert_eq!(size_class(FULL_WIRE), 5);
        assert_eq!(size_class(9000), 5);
    }

    #[test]
    fn histogram_frames_and_rates_accumulate() {
        let mut acc = FlowAccumulator::new(recv_tap());
        for i in 0..30u64 {
            frame(&mut acc, 33 * i, 2);
        }
        for i in 0..50u64 {
            acc.record(SimTime::from_millis(20 * i), deq(1, 11, AUDIO_WIRE));
        }
        let fp = acc.finish(SimTime::from_secs(1));
        assert_eq!(fp.frames, 30);
        assert_eq!(fp.video_pkts, 90);
        assert_eq!(fp.full_pkts, 60);
        assert_eq!(fp.small_pkts, 50);
        assert_eq!(fp.hist, [0, 50, 30, 0, 0, 60]);
        assert!((fp.full_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((fp.fps() - 30.0).abs() < 1e-9);
        let payload = 60 * (FULL_WIRE - HEADER_BYTES) + 30 * (500 - HEADER_BYTES);
        assert_eq!(fp.video_payload_bytes, payload);
        assert!((fp.video_mbps() - payload as f64 * 8e-6).abs() < 1e-9);
    }

    #[test]
    fn gap_closes_a_pending_full_sized_frame() {
        let mut acc = FlowAccumulator::new(recv_tap());
        acc.record(SimTime::from_millis(0), deq(1, 11, FULL_WIRE));
        acc.record(SimTime::from_millis(1), deq(1, 11, FULL_WIRE));
        // Far beyond the close gap: the next video packet closes it.
        acc.record(SimTime::from_millis(200), deq(1, 11, FULL_WIRE));
        let fp = acc.finish(SimTime::from_secs(1));
        assert_eq!(fp.frames, 1);
        // But a frame still pending at the end is discarded.
        let mut acc = FlowAccumulator::new(recv_tap());
        acc.record(SimTime::from_millis(900), deq(1, 11, FULL_WIRE));
        let fp = acc.finish(SimTime::from_secs(1));
        assert_eq!(fp.frames, 0);
        assert_eq!(fp.video_pkts, 1, "bytes still counted");
    }

    #[test]
    fn vantage_filters_links_flows_and_event_kinds() {
        let mut acc = FlowAccumulator::new(recv_tap());
        acc.record(SimTime::from_millis(1), enq(1, 11, FULL_WIRE));
        acc.record(SimTime::from_millis(2), deq(0, 11, FULL_WIRE));
        acc.record(SimTime::from_millis(3), deq(1, 10, FULL_WIRE));
        let fp = acc.finish(SimTime::from_secs(1));
        assert_eq!(fp.video_pkts, 0);
        // Send tap sees enqueues and same-link drops.
        let mut acc = FlowAccumulator::new(FlowTap {
            link: 0,
            flow: 10,
            vantage: Vantage::Send,
        });
        acc.record(SimTime::from_millis(1), enq(0, 10, FULL_WIRE));
        acc.record(
            SimTime::from_millis(2),
            EventKind::PacketDropped {
                link: 0,
                flow: 10,
                pkt: 0,
                bytes: FULL_WIRE,
                queue_bytes: 0,
                reason: "queue_full",
            },
        );
        acc.record(SimTime::from_millis(3), deq(0, 10, 500));
        let fp = acc.finish(SimTime::from_secs(1));
        assert_eq!(fp.video_pkts, 2);
    }

    #[test]
    fn iat_and_rate_statistics_are_computed() {
        // Perfectly periodic full packets: IAT CV ~ 0; constant rate per
        // second: rate CV ~ 0 (with a marker tail each, one frame per).
        let mut acc = FlowAccumulator::new(recv_tap());
        for i in 0..100u64 {
            acc.record(SimTime::from_millis(20 * i), deq(1, 11, 600));
        }
        let fp = acc.finish(SimTime::from_secs(2));
        assert!((fp.iat_mean_s - 0.020).abs() < 1e-9, "{}", fp.iat_mean_s);
        assert!(fp.iat_cv < 1e-9);
        assert!(fp.rate_cv < 1e-9);
        // Bursty seconds: all bytes in even seconds -> CV = 1.
        let mut acc = FlowAccumulator::new(recv_tap());
        for sec in [0u64, 2, 4, 6] {
            for i in 0..10u64 {
                acc.record(SimTime::from_millis(sec * 1000 + 20 * i), deq(1, 11, 600));
            }
        }
        let fp = acc.finish(SimTime::from_secs(8));
        assert!((fp.rate_cv - 1.0).abs() < 1e-9, "{}", fp.rate_cv);
    }

    #[test]
    fn call_fingerprint_combines_directions() {
        let mut up = FlowAccumulator::new(FlowTap {
            link: 0,
            flow: 10,
            vantage: Vantage::Send,
        });
        let mut down = FlowAccumulator::new(recv_tap());
        for i in 0..10u64 {
            up.record(SimTime::from_millis(30 * i), enq(0, 10, 640));
            down.record(SimTime::from_millis(30 * i), deq(1, 11, 340));
        }
        let call = CallFingerprint {
            up: up.finish(SimTime::from_secs(1)),
            down: down.finish(SimTime::from_secs(1)),
        };
        assert!((call.byte_ratio() - 640.0 / 340.0).abs() < 1e-9);
        let x = call.feature_vector();
        assert_eq!(x.len(), NUM_FP_FEATURES);
        assert_eq!(FP_FEATURE_NAMES.len(), NUM_FP_FEATURES);
        assert!((x[0] - call.up.video_mbps()).abs() < 1e-12);
        assert!((x[8] - call.down.video_mbps()).abs() < 1e-12);
        assert!((x[16] - call.byte_ratio()).abs() < 1e-12);
    }

    #[test]
    fn bank_fans_out_and_preserves_tap_order() {
        let taps = [
            FlowTap {
                link: 0,
                flow: 10,
                vantage: Vantage::Send,
            },
            recv_tap(),
        ];
        let mut bank = FingerprintBank::new(&taps);
        bank.record(SimTime::from_millis(1), enq(0, 10, FULL_WIRE));
        bank.record(SimTime::from_millis(2), deq(1, 11, 500));
        let fps = bank.finish(SimTime::from_secs(1));
        assert_eq!(fps.len(), 2);
        assert_eq!(fps[0].tap, taps[0]);
        assert_eq!(fps[0].video_pkts, 1);
        assert_eq!(fps[1].frames, 1);
    }
}
