//! Pluggable VCA classifiers over call fingerprints.
//!
//! Two implementations ship:
//!
//! - [`RuleClassifier`] — training-free decision rules built on the two
//!   uplink observables that separate the families in every measured
//!   regime: the full-packet share of the video stream (lowest for
//!   Meet's sub-MTU frame splitting) and the packet inter-arrival CV
//!   (low for Teams' paced high-rate sender, high for Zoom's bursty
//!   FEC-laden one). Useful as a baseline and when no model artifact is
//!   available.
//! - [`CentroidModel`] — a nearest-centroid model over z-scored
//!   fingerprint features, fit offline from labeled campaign runs
//!   (`repro identify --fit`) and frozen as a schema-versioned JSON
//!   artifact at `crates/fingerprint/models/centroid-v1.json`, compiled
//!   in via [`CentroidModel::builtin`]. Loading rejects unknown schema
//!   tags or reordered feature lists, so a stale artifact fails loudly.
//!
//! Classification targets the three *application families* — the
//! browser variants of an application share its network behaviour (the
//! paper's Fig 1c point), so `Zoom-Chrome` is expected to classify as
//! `Zoom` and `Teams-Chrome` as `Teams`.

use serde_json::{Map, Value};

use crate::features::{CallFingerprint, FP_FEATURE_NAMES, NUM_FP_FEATURES};

/// An application family the classifier can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VcaFamily {
    /// Google Meet (WebRTC/GCC).
    Meet,
    /// Microsoft Teams (native or Chrome).
    Teams,
    /// Zoom (native or Chrome).
    Zoom,
}

impl VcaFamily {
    /// Every family, in the pinned order model artifacts use.
    pub const ALL: [VcaFamily; 3] = [VcaFamily::Meet, VcaFamily::Teams, VcaFamily::Zoom];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            VcaFamily::Meet => "Meet",
            VcaFamily::Teams => "Teams",
            VcaFamily::Zoom => "Zoom",
        }
    }

    /// Parse a family from its display name.
    pub fn from_name(name: &str) -> Option<VcaFamily> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Index of the family in [`VcaFamily::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&f| f == self).expect("in ALL")
    }
}

/// A flow-level VCA classifier.
pub trait Classifier {
    /// Stable classifier name (report rows key on it).
    fn name(&self) -> &'static str;
    /// Classify one call fingerprint.
    fn classify(&self, fp: &CallFingerprint) -> VcaFamily;
}

/// Training-free decision rules read off the uplink fingerprint.
///
/// Thresholds sit in the gaps between the per-family clusters measured
/// on the pinned training campaign (unshaped, shaped, congested, and
/// multiparty regimes alike). The uplink is the discriminating side:
/// C1's own sender behaves the same whatever the far end does.
///
/// - Meet runs the highest uplink frame cadence of the three (> 45
///   observed frames/s once warmed up), and when throttled it collapses
///   to sub-MTU frames (uplink full-packet share < 0.45); Teams and
///   Zoom match neither arm in any observed regime.
/// - Among the rest, Teams' paced high-rate output is regularly spaced
///   (uplink inter-arrival CV ≤ 0.50 observed) while Zoom's burstier,
///   FEC-laden stream stays above 0.56.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleClassifier;

/// Uplink frame cadence above this reads as Meet.
pub const RULE_MEET_FPS: f64 = 45.0;
/// Uplink full-packet fraction below this also reads as Meet (the
/// throttled regime, where cadence drops but frames shrink below MTU).
pub const RULE_MEET_FULL_FRACTION: f64 = 0.45;
/// Uplink inter-arrival CV below this (for a non-Meet fingerprint)
/// reads as Teams; above it, Zoom.
pub const RULE_TEAMS_IAT_CV: f64 = 0.55;

impl Classifier for RuleClassifier {
    fn name(&self) -> &'static str {
        "rules"
    }

    fn classify(&self, fp: &CallFingerprint) -> VcaFamily {
        if fp.up.fps() > RULE_MEET_FPS || fp.up.full_fraction() < RULE_MEET_FULL_FRACTION {
            VcaFamily::Meet
        } else if fp.up.iat_cv < RULE_TEAMS_IAT_CV {
            VcaFamily::Teams
        } else {
            VcaFamily::Zoom
        }
    }
}

/// Schema tag of the centroid model artifact.
pub const MODEL_SCHEMA: &str = "vcabench-fingerprint-centroid/v1";

/// Floor applied to per-feature scales so constant features cannot
/// produce infinite z-scores.
const SCALE_FLOOR: f64 = 1e-9;

/// Nearest-centroid classifier over z-scored fingerprint features.
///
/// Distances are diagonal-Mahalanobis: each feature is divided by the
/// pooled within-class standard deviation before the Euclidean
/// comparison, so a high-magnitude feature (packet rate) cannot drown a
/// low-magnitude discriminative one (full fraction). Ties resolve to
/// the first family in [`VcaFamily::ALL`] — deterministic by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidModel {
    /// Per-feature scale (pooled within-class std, floored).
    pub scale: [f64; NUM_FP_FEATURES],
    /// Per-family centroids, in [`VcaFamily::ALL`] order.
    pub centroids: [[f64; NUM_FP_FEATURES]; 3],
}

impl CentroidModel {
    /// Fit from labeled feature rows: per-family means, pooled
    /// within-class standard deviation as the scale. `None` unless every
    /// family has at least one row. Deterministic: plain f64 arithmetic
    /// over the rows in order.
    pub fn fit(rows: &[(VcaFamily, [f64; NUM_FP_FEATURES])]) -> Option<CentroidModel> {
        let mut counts = [0usize; 3];
        let mut sums = [[0.0f64; NUM_FP_FEATURES]; 3];
        for (family, x) in rows {
            let f = family.index();
            counts[f] += 1;
            for (s, v) in sums[f].iter_mut().zip(x.iter()) {
                *s += v;
            }
        }
        if counts.contains(&0) {
            return None;
        }
        let mut centroids = [[0.0f64; NUM_FP_FEATURES]; 3];
        for f in 0..3 {
            for i in 0..NUM_FP_FEATURES {
                centroids[f][i] = sums[f][i] / counts[f] as f64;
            }
        }
        // Pooled within-class variance.
        let mut sq = [0.0f64; NUM_FP_FEATURES];
        for (family, x) in rows {
            let c = &centroids[family.index()];
            for i in 0..NUM_FP_FEATURES {
                let d = x[i] - c[i];
                sq[i] += d * d;
            }
        }
        let n = rows.len() as f64;
        let mut scale = [0.0f64; NUM_FP_FEATURES];
        for i in 0..NUM_FP_FEATURES {
            scale[i] = (sq[i] / n).sqrt().max(SCALE_FLOOR);
        }
        Some(CentroidModel { scale, centroids })
    }

    /// The registry entry for the committed centroid artifact: register
    /// it on a [`vcabench_infer::ModelRegistry`] to resolve it by name
    /// alongside the estimator artifacts.
    pub fn registry_entry() -> vcabench_infer::ModelEntry {
        vcabench_infer::ModelEntry {
            name: "centroid-v1",
            schema: MODEL_SCHEMA,
            json: include_str!("../models/centroid-v1.json"),
        }
    }

    /// The committed model artifact, compiled into the crate (resolved
    /// through the model registry like every other frozen artifact).
    pub fn builtin() -> CentroidModel {
        let mut reg = vcabench_infer::ModelRegistry::builtin();
        reg.register(Self::registry_entry());
        let json = reg
            .raw_json("centroid-v1")
            .expect("committed centroid artifact matches its registered schema");
        CentroidModel::from_json(json).expect("committed model artifact is valid")
    }

    /// Squared z-scored distance from `x` to a family's centroid.
    fn distance2(&self, x: &[f64; NUM_FP_FEATURES], family: usize) -> f64 {
        let c = &self.centroids[family];
        let mut d2 = 0.0;
        for i in 0..NUM_FP_FEATURES {
            let d = (x[i] - c[i]) / self.scale[i];
            d2 += d * d;
        }
        d2
    }

    /// Serialize to the versioned artifact format (pretty JSON, fixed key
    /// order — artifacts are diffed and committed).
    pub fn to_json(&self) -> String {
        let mut m = Map::new();
        m.insert(
            "schema".to_string(),
            Value::String(MODEL_SCHEMA.to_string()),
        );
        m.insert(
            "features".to_string(),
            Value::Array(
                FP_FEATURE_NAMES
                    .iter()
                    .map(|n| Value::String(n.to_string()))
                    .collect(),
            ),
        );
        m.insert(
            "families".to_string(),
            Value::Array(
                VcaFamily::ALL
                    .iter()
                    .map(|f| Value::String(f.name().to_string()))
                    .collect(),
            ),
        );
        let arr = |w: &[f64]| Value::Array(w.iter().map(|&v| Value::F64(v)).collect());
        m.insert("scale".to_string(), arr(&self.scale));
        m.insert(
            "centroids".to_string(),
            Value::Array(self.centroids.iter().map(|c| arr(c)).collect()),
        );
        let mut s = serde_json::to_string_pretty(&Value::Object(m)).expect("serializable model");
        s.push('\n');
        s
    }

    /// Parse and validate an artifact.
    pub fn from_json(text: &str) -> Result<CentroidModel, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("model artifact: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("model artifact: missing schema tag")?;
        if schema != MODEL_SCHEMA {
            return Err(format!(
                "model artifact: schema `{schema}`, expected `{MODEL_SCHEMA}`"
            ));
        }
        let names: Vec<&str> = v
            .get("features")
            .and_then(|f| f.as_array())
            .map(|a| a.iter().filter_map(|x| x.as_str()).collect())
            .ok_or("model artifact: missing features list")?;
        if names != FP_FEATURE_NAMES {
            return Err(format!(
                "model artifact: feature list {names:?} does not match {FP_FEATURE_NAMES:?}"
            ));
        }
        let families: Vec<&str> = v
            .get("families")
            .and_then(|f| f.as_array())
            .map(|a| a.iter().filter_map(|x| x.as_str()).collect())
            .ok_or("model artifact: missing families list")?;
        let expected: Vec<&str> = VcaFamily::ALL.iter().map(|f| f.name()).collect();
        if families != expected {
            return Err(format!(
                "model artifact: family list {families:?} does not match {expected:?}"
            ));
        }
        let vector = |val: &Value, what: &str| -> Result<[f64; NUM_FP_FEATURES], String> {
            let arr = val
                .as_array()
                .ok_or(format!("model artifact: `{what}` is not an array"))?;
            if arr.len() != NUM_FP_FEATURES {
                return Err(format!(
                    "model artifact: `{what}` has {} entries, expected {NUM_FP_FEATURES}",
                    arr.len()
                ));
            }
            let mut out = [0.0; NUM_FP_FEATURES];
            for (i, x) in arr.iter().enumerate() {
                out[i] = x
                    .as_f64()
                    .ok_or(format!("model artifact: `{what}[{i}]` is not a number"))?;
            }
            Ok(out)
        };
        let scale = vector(
            v.get("scale").ok_or("model artifact: missing `scale`")?,
            "scale",
        )?;
        let rows = v
            .get("centroids")
            .and_then(|c| c.as_array())
            .ok_or("model artifact: missing `centroids`")?;
        if rows.len() != 3 {
            return Err(format!(
                "model artifact: {} centroids, expected 3",
                rows.len()
            ));
        }
        let mut centroids = [[0.0; NUM_FP_FEATURES]; 3];
        for (f, row) in rows.iter().enumerate() {
            centroids[f] = vector(row, &format!("centroids[{f}]"))?;
        }
        Ok(CentroidModel { scale, centroids })
    }
}

impl Classifier for CentroidModel {
    fn name(&self) -> &'static str {
        "centroid"
    }

    fn classify(&self, fp: &CallFingerprint) -> VcaFamily {
        let x = fp.feature_vector();
        let mut best = 0;
        let mut best_d2 = self.distance2(&x, 0);
        for f in 1..3 {
            let d2 = self.distance2(&x, f);
            if d2 < best_d2 {
                best = f;
                best_d2 = d2;
            }
        }
        VcaFamily::ALL[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FlowFingerprint, FlowTap, Vantage, NUM_SIZE_CLASSES};

    fn fingerprint(full: u64, video: u64, iat_cv: f64) -> FlowFingerprint {
        FlowFingerprint {
            tap: FlowTap {
                link: 0,
                flow: 10,
                vantage: Vantage::Send,
            },
            duration_s: 10.0,
            hist: [0; NUM_SIZE_CLASSES],
            wire_bytes: video * 1000,
            video_payload_bytes: video * 960,
            video_pkts: video,
            full_pkts: full,
            small_pkts: 100,
            frames: 300,
            iat_mean_s: 0.003,
            iat_cv,
            rate_cv: 0.3,
        }
    }

    fn call(full_frac: f64, iat_cv: f64) -> CallFingerprint {
        let video = 1000u64;
        let full = (full_frac * video as f64) as u64;
        CallFingerprint {
            up: fingerprint(full, video, iat_cv),
            down: fingerprint(full, video, iat_cv),
        }
    }

    #[test]
    fn family_names_round_trip() {
        for f in VcaFamily::ALL {
            assert_eq!(VcaFamily::from_name(f.name()), Some(f));
            assert_eq!(VcaFamily::ALL[f.index()], f);
        }
        assert_eq!(VcaFamily::from_name("Skype"), None);
    }

    #[test]
    fn rule_classifier_follows_the_signatures() {
        // Low full-packet share (throttled-Meet arm), whatever the
        // spacing looks like.
        assert_eq!(RuleClassifier.classify(&call(0.33, 0.68)), VcaFamily::Meet);
        // High frame cadence (warmed-up-Meet arm) despite full packets.
        let mut fast = call(0.56, 0.63);
        fast.up.frames = 500; // 50 fps over the 10 s window
        assert_eq!(RuleClassifier.classify(&fast), VcaFamily::Meet);
        // Full-packet sender, regular spacing: Teams.
        assert_eq!(RuleClassifier.classify(&call(0.85, 0.45)), VcaFamily::Teams);
        // Full-packet sender, bursty spacing: Zoom.
        assert_eq!(RuleClassifier.classify(&call(0.56, 0.63)), VcaFamily::Zoom);
    }

    #[test]
    fn centroid_fit_classifies_training_clusters() {
        let mut rows = Vec::new();
        for i in 0..5 {
            let jitter = i as f64 * 0.01;
            rows.push((VcaFamily::Zoom, call(0.56 + jitter, 0.63).feature_vector()));
            rows.push((VcaFamily::Teams, call(0.85, 0.45 + jitter).feature_vector()));
            rows.push((VcaFamily::Meet, call(0.33 + jitter, 0.68).feature_vector()));
        }
        let m = CentroidModel::fit(&rows).expect("fit");
        assert_eq!(m.classify(&call(0.57, 0.64)), VcaFamily::Zoom);
        assert_eq!(m.classify(&call(0.86, 0.46)), VcaFamily::Teams);
        assert_eq!(m.classify(&call(0.34, 0.69)), VcaFamily::Meet);
        assert_eq!(m.name(), "centroid");
    }

    #[test]
    fn fit_requires_every_family() {
        let rows = vec![(VcaFamily::Meet, call(0.6, 0.02).feature_vector())];
        assert!(CentroidModel::fit(&rows).is_none());
        assert!(CentroidModel::fit(&[]).is_none());
    }

    #[test]
    fn artifact_round_trips_and_rejects_bad_schemas() {
        let mut rows = Vec::new();
        for f in VcaFamily::ALL {
            rows.push((f, call(0.5 + f.index() as f64 * 0.1, 0.05).feature_vector()));
        }
        let m = CentroidModel::fit(&rows).expect("fit");
        let text = m.to_json();
        let back = CentroidModel::from_json(&text).expect("round trip");
        assert_eq!(m, back);
        assert!(text.contains("\"schema\": \"vcabench-fingerprint-centroid/v1\""));
        let bad = text.replace("centroid/v1", "centroid/v9");
        assert!(CentroidModel::from_json(&bad)
            .unwrap_err()
            .contains("schema"));
        let bad = text.replace("up_video_mbps", "video_mbps_up");
        assert!(CentroidModel::from_json(&bad)
            .unwrap_err()
            .contains("feature list"));
        let bad = text.replace("\"Teams\"", "\"Skype\"");
        assert!(CentroidModel::from_json(&bad)
            .unwrap_err()
            .contains("family"));
        assert!(
            CentroidModel::from_json("{\"schema\":\"vcabench-fingerprint-centroid/v1\"}").is_err()
        );
    }

    #[test]
    fn builtin_artifact_loads_and_is_well_formed() {
        // The frozen artifact parses, has strictly positive scales, and
        // three distinct centroids (identification accuracy itself is
        // gated end-to-end by `repro identify`).
        let m = CentroidModel::builtin();
        assert!(m.scale.iter().all(|&s| s > 0.0));
        assert_ne!(m.centroids[0], m.centroids[1]);
        assert_ne!(m.centroids[1], m.centroids[2]);
        let round = CentroidModel::from_json(&m.to_json()).expect("round trip");
        assert_eq!(m, round);
    }
}
