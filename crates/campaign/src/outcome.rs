//! Run outcomes: the serializable summary a runner returns per scenario.
//!
//! The campaign crate never runs simulations itself — the harness supplies a
//! runner callback mapping [`ScenarioSpec`](crate::ScenarioSpec) to a
//! [`ScenarioOutcome`]. Outcomes are pure data so they can be cached in the
//! result store and replayed without recomputation.

use serde::{Serialize, Value};

/// One `(t_secs, mbps)` throughput sample.
pub type Sample = (f64, f64);

/// Summary of a two-party shaped call.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TwoPartyRecord {
    /// C1 uplink send-rate series.
    pub up_series: Vec<Sample>,
    /// C1 downlink receive-rate series.
    pub down_series: Vec<Sample>,
    /// C1 congestion-controller target series.
    pub target_series: Vec<Sample>,
    /// Median uplink utilization over the settled window, Mbps.
    pub steady_up_mbps: f64,
    /// Median downlink utilization over the settled window, Mbps.
    pub steady_down_mbps: f64,
    /// Time to recover to the nominal rate after a disruption, seconds
    /// (absent when no recovery was observed or none was provoked).
    pub ttr_secs: Option<f64>,
    /// Nominal (pre-disruption) rate used for the TTR threshold, Mbps.
    pub nominal_mbps: Option<f64>,
    /// FIR/PLI repair requests received by C1's sender.
    pub firs_received: u64,
    /// Total rendered freeze time at C1, seconds.
    pub freeze_secs: f64,
    /// Frames decoded at C1.
    pub frames_decoded: u64,
}

/// Summary of a §5 competition run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompetitionRecord {
    /// Incumbent uplink series.
    pub inc_up: Vec<Sample>,
    /// Incumbent downlink series.
    pub inc_down: Vec<Sample>,
    /// Competitor uplink series.
    pub comp_up: Vec<Sample>,
    /// Competitor downlink series.
    pub comp_down: Vec<Sample>,
    /// Incumbent share of uplink capacity while both compete (0..=1).
    pub up_share: f64,
    /// Incumbent share of downlink capacity while both compete (0..=1).
    pub down_share: f64,
    /// Parallel connections a Netflix competitor opened (0 otherwise).
    pub netflix_conns: usize,
}

/// Summary of an n-party call.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultipartyRecord {
    /// C1 steady uplink, Mbps.
    pub c1_up_mbps: f64,
    /// C1 steady downlink, Mbps.
    pub c1_down_mbps: f64,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// Two-party result.
    TwoParty(TwoPartyRecord),
    /// Competition result.
    Competition(CompetitionRecord),
    /// Multiparty result.
    Multiparty(MultipartyRecord),
}

impl Serialize for ScenarioOutcome {
    /// Internally tagged with `"type"`, mirroring `ScenarioSpec`.
    fn to_json_value(&self) -> Value {
        let (tag, inner) = match self {
            ScenarioOutcome::TwoParty(r) => ("two_party", r.to_json_value()),
            ScenarioOutcome::Competition(r) => ("competition", r.to_json_value()),
            ScenarioOutcome::Multiparty(r) => ("multiparty", r.to_json_value()),
        };
        let mut m = serde::Map::new();
        m.insert("type".to_string(), Value::String(tag.to_string()));
        if let Value::Object(fields) = inner {
            for (k, v) in fields.iter() {
                m.insert(k.clone(), v.clone());
            }
        }
        Value::Object(m)
    }
}
