//! vcabench-campaign: declarative scenario specs, a parallel campaign
//! executor, and a content-addressed result cache.
//!
//! The paper's headline figures are all *sweeps* — kinds × capacities × seeds
//! (Fig 1), incumbents × competitors (Figs 8–11), disruption grids
//! (Figs 4–5). This crate turns such sweeps into data:
//!
//! 1. **Specs** ([`ScenarioSpec`], [`CampaignSpec`]): JSON-loadable
//!    descriptions of every run the harness can execute, with sweep axes
//!    expanded into a deterministic Cartesian product ([`CampaignSpec::expand`]).
//! 2. **Executor** ([`execute`], [`run_indexed`]): a scoped worker pool that
//!    runs scenarios in parallel and returns results in expansion order —
//!    `--jobs N` output is byte-identical to `--jobs 1`.
//! 3. **Store** ([`run_cached`], [`content_hash`]): an append-only JSONL
//!    result store keyed by content hash of the normalized spec, so repeated
//!    invocations recompute only what changed.
//!
//! The crate deliberately knows nothing about the harness: callers supply a
//! runner callback `Fn(&ScenarioSpec) -> ScenarioOutcome`, keeping the
//! dependency graph acyclic (harness → campaign, never the reverse).

#![warn(missing_docs)]

pub mod exec;
pub mod expand;
pub mod outcome;
pub mod spec;
pub mod store;

pub use exec::{execute, execute_runs, execute_runs_with, run_indexed, RunResult};
pub use expand::{Axes, CampaignSpec, ExpandedRun, ScenarioTemplate, SeedAxis};
pub use outcome::{CompetitionRecord, MultipartyRecord, Sample, ScenarioOutcome, TwoPartyRecord};
pub use spec::{
    float_slug, slug, ClientKnobs, CompetitionSpec, CompetitorSpec, MultipartySpec, ScenarioSpec,
    TwoPartySpec,
};
pub use store::{content_hash, run_cached, run_cached_with, CampaignSummary, StoredRecord};
