//! Parallel campaign executor.
//!
//! Runs are embarrassingly parallel — the simulator keeps all state inside
//! each run and every random draw comes from the run's own seeded generator —
//! so a scoped worker pool over a shared atomic cursor is enough. Results are
//! collected into expansion-order slots, making the output independent of the
//! number of workers and of scheduling: `--jobs N` is byte-identical to
//! `--jobs 1`.

use crate::expand::{CampaignSpec, ExpandedRun};
use crate::outcome::ScenarioOutcome;
use crate::spec::ScenarioSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One completed run: the expanded scenario plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The expanded run (index, label, concrete spec).
    pub run: ExpandedRun,
    /// What the runner produced.
    pub outcome: ScenarioOutcome,
}

/// Expand `campaign` and execute every run on `jobs` workers.
///
/// `runner` maps a concrete scenario to its outcome; it must be a pure
/// function of the spec (the determinism the cache relies on). Results come
/// back in expansion order regardless of `jobs`.
pub fn execute(
    campaign: &CampaignSpec,
    jobs: usize,
    runner: impl Fn(&ScenarioSpec) -> ScenarioOutcome + Sync,
) -> Result<Vec<RunResult>, String> {
    let runs = campaign.expand()?;
    Ok(execute_runs(&runs, jobs, &runner))
}

/// Execute an already-expanded run list on `jobs` workers, preserving order.
pub fn execute_runs(
    runs: &[ExpandedRun],
    jobs: usize,
    runner: &(impl Fn(&ScenarioSpec) -> ScenarioOutcome + Sync),
) -> Vec<RunResult> {
    execute_runs_with(runs, jobs, &|run: &ExpandedRun| runner(&run.spec))
}

/// Like [`execute_runs`], but the runner sees the whole [`ExpandedRun`]
/// (label included) — used by callers that write per-run artifacts named
/// by the deterministic run labels.
pub fn execute_runs_with(
    runs: &[ExpandedRun],
    jobs: usize,
    runner: &(impl Fn(&ExpandedRun) -> ScenarioOutcome + Sync),
) -> Vec<RunResult> {
    let outcomes = run_indexed(runs.len(), jobs, |i| runner(&runs[i]));
    runs.iter()
        .cloned()
        .zip(outcomes)
        .map(|(run, outcome)| RunResult { run, outcome })
        .collect()
}

/// Evaluate `f(0..n)` on up to `jobs` scoped threads, returning results in
/// index order. Workers pull indices from a shared atomic cursor, so load
/// balances automatically when run times differ.
pub fn run_indexed<T: Send>(n: usize, jobs: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{Axes, ScenarioTemplate, SeedAxis};
    use crate::outcome::MultipartyRecord;
    use crate::spec::MultipartySpec;
    use vcabench_vca::VcaKind;

    fn toy_campaign(n_seeds: u64) -> CampaignSpec {
        CampaignSpec {
            name: "toy".to_string(),
            scenarios: vec![ScenarioTemplate {
                label: None,
                base: ScenarioSpec::Multiparty(MultipartySpec {
                    kind: VcaKind::Zoom,
                    n: 3,
                    pin_c1: None,
                    duration_secs: 10.0,
                    seed: 0,
                }),
                axes: Some(Axes {
                    kinds: Some(vec![VcaKind::Meet, VcaKind::Zoom]),
                    up_mbps: None,
                    down_mbps: None,
                    capacity_mbps: None,
                    competitors: None,
                    seeds: Some(SeedAxis::Range {
                        base: 0,
                        count: n_seeds,
                    }),
                }),
            }],
        }
    }

    /// A deterministic toy runner: outcome is a pure function of the spec.
    fn toy_runner(spec: &ScenarioSpec) -> ScenarioOutcome {
        let seed = spec.seed() as f64;
        ScenarioOutcome::Multiparty(MultipartyRecord {
            c1_up_mbps: seed * 0.25,
            c1_down_mbps: seed * 0.5,
        })
    }

    #[test]
    fn parallel_matches_serial() {
        let campaign = toy_campaign(8);
        let serial = execute(&campaign, 1, toy_runner).unwrap();
        let parallel = execute(&campaign, 4, toy_runner).unwrap();
        assert_eq!(serial.len(), 16);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_indexed_preserves_order_under_contention() {
        let results = run_indexed(100, 7, |i| i * i);
        assert_eq!(results, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_runs_and_oversized_jobs() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }
}
