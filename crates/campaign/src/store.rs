//! Content-addressed result store.
//!
//! Each campaign writes one append-only JSONL file, one record per run, keyed
//! by a stable content hash of the run's *normalized* scenario spec plus a
//! format salt (crate version). Re-running a campaign skips every run whose
//! hash is already present; editing a spec (or bumping the crate version)
//! changes the hash and forces recomputation of exactly the affected runs.

use crate::exec::{execute_runs_with, RunResult};
use crate::expand::{CampaignSpec, ExpandedRun};
use crate::outcome::ScenarioOutcome;
use crate::spec::ScenarioSpec;
use serde::{Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Salt mixed into every content hash. Bumping the crate version invalidates
/// all cached results — the simulator's behaviour is part of the contract.
const FORMAT_SALT: &str = concat!("vcabench-campaign/", env!("CARGO_PKG_VERSION"), "/v1\n");

/// Stable 128-bit content hash of a scenario, as 32 lowercase hex chars.
///
/// Two independent FNV-1a 64-bit passes (distinct offset bases) over the
/// salt + canonical JSON. Not cryptographic — it only needs to be stable
/// across runs and platforms and collision-free at campaign scale.
pub fn content_hash(spec: &ScenarioSpec) -> String {
    let preimage = format!("{}{}", FORMAT_SALT, spec.canonical_json());
    let h1 = fnv1a(0xcbf2_9ce4_8422_2325, preimage.as_bytes());
    let h2 = fnv1a(0x6c62_272e_07bb_0142, preimage.as_bytes());
    format!("{h1:016x}{h2:016x}")
}

fn fnv1a(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of one `run_cached` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Expanded runs in the campaign.
    pub total: usize,
    /// Runs actually simulated this invocation.
    pub computed: usize,
    /// Runs served from the store.
    pub cached: usize,
    /// The campaign's JSONL file.
    pub store_path: PathBuf,
    /// Every record, in expansion order (cached and fresh alike).
    pub results: Vec<StoredRecord>,
}

/// One stored (or just-computed) run record.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Content hash of the normalized spec.
    pub hash: String,
    /// Run label at the time it was (first) computed.
    pub label: String,
    /// The record's JSONL line (compact JSON, no trailing newline).
    pub line: String,
}

fn record_line(hash: &str, label: &str, spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> String {
    let mut m = serde::Map::new();
    m.insert("hash".to_string(), Value::String(hash.to_string()));
    m.insert("label".to_string(), Value::String(label.to_string()));
    m.insert("spec".to_string(), spec.normalized().to_json_value());
    m.insert("outcome".to_string(), outcome.to_json_value());
    serde_json::to_string(&Value::Object(m)).expect("record serializes")
}

/// Read a store file's records, keyed by hash. Unreadable lines are an error
/// (the store is machine-written; silent tolerance would mask corruption).
fn load_store(path: &Path) -> Result<BTreeMap<String, StoredRecord>, String> {
    let mut records = BTreeMap::new();
    if !path.exists() {
        return Ok(records);
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{}:{}: bad record: {e}", path.display(), ln + 1))?;
        let hash = v
            .get("hash")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{}:{}: record missing hash", path.display(), ln + 1))?
            .to_string();
        let label = v
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        records.insert(
            hash.clone(),
            StoredRecord {
                hash,
                label,
                line: line.to_string(),
            },
        );
    }
    Ok(records)
}

/// Execute `campaign`, serving runs from the store under `dir` where possible.
///
/// The store file is `<dir>/<campaign name>.jsonl`. Runs whose content hash
/// already appears there are not recomputed (unless `rerun`, which recomputes
/// everything and rewrites the file). Fresh records are appended in expansion
/// order, so the file's record order is stable across jobs counts and across
/// cached/uncached invocations.
pub fn run_cached(
    campaign: &CampaignSpec,
    jobs: usize,
    dir: &Path,
    rerun: bool,
    runner: &(impl Fn(&ScenarioSpec) -> ScenarioOutcome + Sync),
) -> Result<CampaignSummary, String> {
    run_cached_with(campaign, jobs, dir, rerun, &|run: &ExpandedRun| {
        runner(&run.spec)
    })
}

/// Like [`run_cached`], but the runner sees the whole [`ExpandedRun`]
/// (label included) — used by the traced campaign path, which writes
/// per-run telemetry artifacts named by the deterministic run labels.
pub fn run_cached_with(
    campaign: &CampaignSpec,
    jobs: usize,
    dir: &Path,
    rerun: bool,
    runner: &(impl Fn(&ExpandedRun) -> ScenarioOutcome + Sync),
) -> Result<CampaignSummary, String> {
    let runs = campaign.expand()?;
    let store_path = dir.join(format!("{}.jsonl", crate::spec::slug(&campaign.name)));
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let known = if rerun {
        BTreeMap::new()
    } else {
        load_store(&store_path)?
    };

    // A campaign may expand two identical specs under different labels;
    // compute each distinct hash once.
    let hashes: Vec<String> = runs.iter().map(|r| content_hash(&r.spec)).collect();
    let mut to_compute: Vec<usize> = Vec::new();
    let mut claimed: BTreeSet<&str> = BTreeSet::new();
    for (i, hash) in hashes.iter().enumerate() {
        if !known.contains_key(hash) && claimed.insert(hash.as_str()) {
            to_compute.push(i);
        }
    }

    let fresh_runs: Vec<_> = to_compute.iter().map(|&i| runs[i].clone()).collect();
    let fresh: Vec<RunResult> = execute_runs_with(&fresh_runs, jobs, runner);
    let mut computed: BTreeMap<String, StoredRecord> = BTreeMap::new();
    for result in &fresh {
        let hash = content_hash(&result.run.spec);
        let line = record_line(&hash, &result.run.label, &result.run.spec, &result.outcome);
        computed.insert(
            hash.clone(),
            StoredRecord {
                hash,
                label: result.run.label.clone(),
                line,
            },
        );
    }

    // Assemble the full record list in expansion order and append the new
    // lines (or rewrite the file entirely under --rerun).
    let mut results = Vec::with_capacity(runs.len());
    let mut new_lines = Vec::new();
    let mut appended: BTreeSet<&str> = BTreeSet::new();
    for (run, hash) in runs.iter().zip(&hashes) {
        let record = known
            .get(hash)
            .or_else(|| computed.get(hash))
            .unwrap_or_else(|| panic!("run `{}` neither cached nor computed", run.label))
            .clone();
        if !known.contains_key(hash) && appended.insert(hash.as_str()) {
            new_lines.push(record.line.clone());
        }
        results.push(record);
    }

    if rerun {
        let mut body = new_lines.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(&store_path, body)
            .map_err(|e| format!("write {}: {e}", store_path.display()))?;
    } else if !new_lines.is_empty() {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&store_path)
            .map_err(|e| format!("open {}: {e}", store_path.display()))?;
        for line in &new_lines {
            writeln!(file, "{line}")
                .map_err(|e| format!("append {}: {e}", store_path.display()))?;
        }
    }

    Ok(CampaignSummary {
        total: runs.len(),
        computed: fresh.len(),
        cached: runs.len() - to_compute.len(),
        store_path,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::{Axes, ScenarioTemplate, SeedAxis};
    use crate::outcome::MultipartyRecord;
    use crate::spec::MultipartySpec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vcabench_vca::VcaKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vcabench-campaign-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn toy_campaign(name: &str, seeds: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            scenarios: vec![ScenarioTemplate {
                label: None,
                base: ScenarioSpec::Multiparty(MultipartySpec {
                    kind: VcaKind::Meet,
                    n: 4,
                    pin_c1: None,
                    duration_secs: 20.0,
                    seed: 0,
                }),
                axes: Some(Axes {
                    kinds: None,
                    up_mbps: None,
                    down_mbps: None,
                    capacity_mbps: None,
                    competitors: None,
                    seeds: Some(SeedAxis::Range {
                        base: 1,
                        count: seeds,
                    }),
                }),
            }],
        }
    }

    #[test]
    fn hash_is_stable_and_spec_sensitive() {
        let campaign = toy_campaign("h", 2);
        let runs = campaign.expand().unwrap();
        assert_eq!(content_hash(&runs[0].spec), content_hash(&runs[0].spec));
        assert_ne!(content_hash(&runs[0].spec), content_hash(&runs[1].spec));
        assert_eq!(content_hash(&runs[0].spec).len(), 32);
    }

    #[test]
    fn cache_hit_miss_and_rerun() {
        let dir = temp_dir("cache");
        let calls = AtomicUsize::new(0);
        let runner = |spec: &ScenarioSpec| {
            calls.fetch_add(1, Ordering::Relaxed);
            ScenarioOutcome::Multiparty(MultipartyRecord {
                c1_up_mbps: spec.seed() as f64,
                c1_down_mbps: 0.0,
            })
        };
        let campaign = toy_campaign("c", 3);

        let first = run_cached(&campaign, 2, &dir, false, &runner).unwrap();
        assert_eq!((first.total, first.computed, first.cached), (3, 3, 0));
        assert_eq!(calls.load(Ordering::Relaxed), 3);

        let second = run_cached(&campaign, 2, &dir, false, &runner).unwrap();
        assert_eq!((second.total, second.computed, second.cached), (3, 0, 3));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(first.results, second.results);

        // Growing the campaign computes only the new runs.
        let grown = toy_campaign("c", 5);
        let third = run_cached(&grown, 2, &dir, false, &runner).unwrap();
        assert_eq!((third.total, third.computed, third.cached), (5, 2, 3));
        assert_eq!(calls.load(Ordering::Relaxed), 5);

        // --rerun recomputes everything and rewrites the file.
        let fourth = run_cached(&grown, 2, &dir, true, &runner).unwrap();
        assert_eq!((fourth.total, fourth.computed, fourth.cached), (5, 5, 0));
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(fourth.results, third.results);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_file_is_byte_identical_across_jobs() {
        let runner = |spec: &ScenarioSpec| {
            ScenarioOutcome::Multiparty(MultipartyRecord {
                c1_up_mbps: (spec.seed() * 7) as f64 / 3.0,
                c1_down_mbps: (spec.seed() * 11) as f64 / 7.0,
            })
        };
        let campaign = toy_campaign("jobs", 9);
        let dir1 = temp_dir("jobs1");
        let dir4 = temp_dir("jobs4");
        run_cached(&campaign, 1, &dir1, false, &runner).unwrap();
        run_cached(&campaign, 4, &dir4, false, &runner).unwrap();
        let name = "jobs.jsonl";
        let bytes1 = std::fs::read(dir1.join(name)).unwrap();
        let bytes4 = std::fs::read(dir4.join(name)).unwrap();
        assert!(!bytes1.is_empty());
        assert_eq!(bytes1, bytes4);
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
    }
}
