//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is the data form of everything the harness runners can
//! express: two-party shaped calls, §5 competition runs, and §6 multiparty
//! calls. Specs are plain JSON values — new workloads need a spec file, not
//! new Rust — and every spec has a *canonical* serialized form used both for
//! storage and for content-addressing cached results.

use serde::{DeError, Deserialize, Serialize, Value};
use vcabench_netsim::RateProfile;
use vcabench_vca::VcaKind;

/// Paper defaults for competition runs (§5: competitor enters at 30 s for
/// 120 s; the incumbent continues one more minute).
pub const COMPETITOR_START_SECS: f64 = 30.0;
/// Default competitor lifetime, seconds.
pub const COMPETITOR_DURATION_SECS: f64 = 120.0;
/// Default total competition run length, seconds.
pub const COMPETITION_TOTAL_SECS: f64 = 210.0;

/// Optional per-client model knobs applied to C1 before a two-party run
/// (the spec form of `run_two_party_with`'s configure hook).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientKnobs {
    /// Enable/disable the Teams §3.2 low-rate width-bug emulation.
    pub teams_width_bug: Option<bool>,
    /// Congestion-controller floor, Mbps (requires `max_rate_mbps` too).
    pub min_rate_mbps: Option<f64>,
    /// Congestion-controller ceiling, Mbps (requires `min_rate_mbps` too).
    pub max_rate_mbps: Option<f64>,
}

impl ClientKnobs {
    fn validate(&self) -> Result<(), String> {
        match (self.min_rate_mbps, self.max_rate_mbps) {
            (None, None) => Ok(()),
            (Some(min), Some(max)) if min > 0.0 && max >= min => Ok(()),
            (Some(_), None) | (None, Some(_)) => {
                Err("knobs: min_rate_mbps and max_rate_mbps must be set together".to_string())
            }
            (Some(min), Some(max)) => Err(format!("knobs: invalid rate bounds [{min}, {max}]")),
        }
    }
}

/// A two-party shaped call (§3–§4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoPartySpec {
    /// Client application.
    pub kind: VcaKind,
    /// C1 uplink shaping profile.
    pub up: RateProfile,
    /// C1 downlink shaping profile.
    pub down: RateProfile,
    /// Call length, seconds.
    pub duration_secs: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Optional C1 model knobs.
    pub knobs: Option<ClientKnobs>,
}

/// Which application competes with the incumbent (spec form of the
/// harness `Competitor` enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompetitorSpec {
    /// A second VCA call.
    Vca(VcaKind),
    /// Bulk TCP upload (iPerf3).
    IperfUp,
    /// Bulk TCP download (iPerf3 reverse mode).
    IperfDown,
    /// Netflix streaming.
    Netflix,
    /// YouTube streaming.
    Youtube,
}

impl CompetitorSpec {
    /// Short lowercase tag used in run labels.
    pub fn tag(&self) -> String {
        match self {
            CompetitorSpec::Vca(kind) => slug(kind.name()),
            CompetitorSpec::IperfUp => "iperf_up".to_string(),
            CompetitorSpec::IperfDown => "iperf_down".to_string(),
            CompetitorSpec::Netflix => "netflix".to_string(),
            CompetitorSpec::Youtube => "youtube".to_string(),
        }
    }
}

impl Serialize for CompetitorSpec {
    /// `{"Vca": "<kind>"}` or the unit variant name as a string.
    fn to_json_value(&self) -> Value {
        match self {
            CompetitorSpec::Vca(kind) => {
                let mut m = serde::Map::new();
                m.insert("Vca".to_string(), kind.to_json_value());
                Value::Object(m)
            }
            CompetitorSpec::IperfUp => Value::String("IperfUp".to_string()),
            CompetitorSpec::IperfDown => Value::String("IperfDown".to_string()),
            CompetitorSpec::Netflix => Value::String("Netflix".to_string()),
            CompetitorSpec::Youtube => Value::String("Youtube".to_string()),
        }
    }
}

impl Deserialize for CompetitorSpec {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        if let Some(s) = v.as_str() {
            return match s {
                "IperfUp" => Ok(CompetitorSpec::IperfUp),
                "IperfDown" => Ok(CompetitorSpec::IperfDown),
                "Netflix" => Ok(CompetitorSpec::Netflix),
                "Youtube" => Ok(CompetitorSpec::Youtube),
                other => Err(DeError::msg(format!(
                    "unknown competitor `{other}` (expected IperfUp, IperfDown, Netflix, \
                     Youtube, or {{\"Vca\": kind}})"
                ))),
            };
        }
        if let Some(kind) = v.get("Vca") {
            return VcaKind::from_json_value(kind)
                .map(CompetitorSpec::Vca)
                .map_err(|e| e.in_field("Vca"));
        }
        Err(DeError::expected("competitor", v))
    }
}

/// A §5 competition run on a symmetric bottleneck.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompetitionSpec {
    /// Incumbent application.
    pub incumbent: VcaKind,
    /// Competing application.
    pub competitor: CompetitorSpec,
    /// Symmetric bottleneck capacity, Mbps.
    pub capacity_mbps: f64,
    /// Competitor start time, seconds (default: the paper's 30 s).
    pub competitor_start_secs: Option<f64>,
    /// Competitor lifetime, seconds (default: 120 s).
    pub competitor_duration_secs: Option<f64>,
    /// Total run length, seconds (default: 210 s).
    pub total_secs: Option<f64>,
    /// Simulation seed.
    pub seed: u64,
}

/// An n-party call (§6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultipartySpec {
    /// Client application.
    pub kind: VcaKind,
    /// Number of participants.
    pub n: usize,
    /// Pin C1 on every other participant's screen (the Fig 15c modality).
    /// Default: false (all gallery).
    pub pin_c1: Option<bool>,
    /// Call length, seconds.
    pub duration_secs: f64,
    /// Simulation seed.
    pub seed: u64,
}

/// One concrete, runnable scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// Two-party shaped call.
    TwoParty(TwoPartySpec),
    /// Competition run.
    Competition(CompetitionSpec),
    /// Multiparty call.
    Multiparty(MultipartySpec),
}

impl ScenarioSpec {
    /// The `type` tag used in the JSON form.
    pub fn type_tag(&self) -> &'static str {
        match self {
            ScenarioSpec::TwoParty(_) => "two_party",
            ScenarioSpec::Competition(_) => "competition",
            ScenarioSpec::Multiparty(_) => "multiparty",
        }
    }

    /// The scenario's seed.
    pub fn seed(&self) -> u64 {
        match self {
            ScenarioSpec::TwoParty(s) => s.seed,
            ScenarioSpec::Competition(s) => s.seed,
            ScenarioSpec::Multiparty(s) => s.seed,
        }
    }

    /// Set the scenario's seed.
    pub fn set_seed(&mut self, seed: u64) {
        match self {
            ScenarioSpec::TwoParty(s) => s.seed = seed,
            ScenarioSpec::Competition(s) => s.seed = seed,
            ScenarioSpec::Multiparty(s) => s.seed = seed,
        }
    }

    /// Check structural invariants (positive durations, sane knobs, …).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ScenarioSpec::TwoParty(s) => {
                if !(s.duration_secs > 0.0 && s.duration_secs.is_finite()) {
                    return Err(format!("two_party: invalid duration {}", s.duration_secs));
                }
                if let Some(knobs) = &s.knobs {
                    knobs.validate()?;
                }
                Ok(())
            }
            ScenarioSpec::Competition(s) => {
                if !(s.capacity_mbps > 0.0 && s.capacity_mbps.is_finite()) {
                    return Err(format!("competition: invalid capacity {}", s.capacity_mbps));
                }
                let start = s.competitor_start_secs.unwrap_or(COMPETITOR_START_SECS);
                let dur = s
                    .competitor_duration_secs
                    .unwrap_or(COMPETITOR_DURATION_SECS);
                let total = s.total_secs.unwrap_or(COMPETITION_TOTAL_SECS);
                if start < 0.0 || dur <= 0.0 || total <= 0.0 {
                    return Err("competition: negative or zero timing".to_string());
                }
                if start + dur > total {
                    return Err(format!(
                        "competition: competitor window {start}+{dur}s exceeds total {total}s"
                    ));
                }
                Ok(())
            }
            ScenarioSpec::Multiparty(s) => {
                if s.n < 2 || s.n > 64 {
                    return Err(format!("multiparty: n={} out of range 2..=64", s.n));
                }
                if !(s.duration_secs > 0.0 && s.duration_secs.is_finite()) {
                    return Err(format!("multiparty: invalid duration {}", s.duration_secs));
                }
                Ok(())
            }
        }
    }

    /// The spec with every defaultable field made explicit, so two authorings
    /// of the same scenario share one canonical form (and one content hash).
    pub fn normalized(&self) -> ScenarioSpec {
        match self {
            ScenarioSpec::Competition(s) => {
                let mut s = s.clone();
                s.competitor_start_secs =
                    Some(s.competitor_start_secs.unwrap_or(COMPETITOR_START_SECS));
                s.competitor_duration_secs = Some(
                    s.competitor_duration_secs
                        .unwrap_or(COMPETITOR_DURATION_SECS),
                );
                s.total_secs = Some(s.total_secs.unwrap_or(COMPETITION_TOTAL_SECS));
                ScenarioSpec::Competition(s)
            }
            ScenarioSpec::Multiparty(s) => {
                let mut s = s.clone();
                s.pin_c1 = Some(s.pin_c1.unwrap_or(false));
                ScenarioSpec::Multiparty(s)
            }
            ScenarioSpec::TwoParty(_) => self.clone(),
        }
    }

    /// Canonical compact JSON of the normalized spec (the content-hash
    /// preimage and the stored echo form).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(&self.normalized()).expect("spec serializes")
    }
}

impl Serialize for ScenarioSpec {
    /// Internally tagged: the variant's fields plus a leading `"type"` tag.
    fn to_json_value(&self) -> Value {
        let inner = match self {
            ScenarioSpec::TwoParty(s) => s.to_json_value(),
            ScenarioSpec::Competition(s) => s.to_json_value(),
            ScenarioSpec::Multiparty(s) => s.to_json_value(),
        };
        let mut m = serde::Map::new();
        m.insert(
            "type".to_string(),
            Value::String(self.type_tag().to_string()),
        );
        if let Value::Object(fields) = inner {
            for (k, v) in fields.iter() {
                m.insert(k.clone(), v.clone());
            }
        }
        Value::Object(m)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let tag = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| DeError::msg("scenario: missing `type` tag"))?;
        match tag {
            "two_party" => TwoPartySpec::from_json_value(v).map(ScenarioSpec::TwoParty),
            "competition" => CompetitionSpec::from_json_value(v).map(ScenarioSpec::Competition),
            "multiparty" => MultipartySpec::from_json_value(v).map(ScenarioSpec::Multiparty),
            other => Err(DeError::msg(format!(
                "scenario: unknown type `{other}` (expected two_party, competition, multiparty)"
            ))),
        }
    }
}

/// Lowercase a name and flatten every non-alphanumeric run to `_`
/// (`"Zoom-Chrome"` → `"zoom_chrome"`, `"0.5"` → `"0_5"`).
pub fn slug(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_sep = true;
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Slug of a float axis value (`0.5` → `"0_5"`, `10.0` → `"10"`).
pub fn float_slug(x: f64) -> String {
    slug(&format!("{x}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcabench_simcore::SimTime;

    fn sample_two_party() -> ScenarioSpec {
        ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Zoom,
            up: RateProfile::constant_mbps(1.0).step(SimTime::from_secs(60), 0.25e6),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs: 150.0,
            seed: 7,
            knobs: Some(ClientKnobs {
                teams_width_bug: None,
                min_rate_mbps: Some(0.1),
                max_rate_mbps: Some(2.0),
            }),
        })
    }

    #[test]
    fn round_trip_all_variants() {
        let specs = [
            sample_two_party(),
            ScenarioSpec::Competition(CompetitionSpec {
                incumbent: VcaKind::Meet,
                competitor: CompetitorSpec::Vca(VcaKind::Zoom),
                capacity_mbps: 0.5,
                competitor_start_secs: None,
                competitor_duration_secs: None,
                total_secs: None,
                seed: 81,
            }),
            ScenarioSpec::Competition(CompetitionSpec {
                incumbent: VcaKind::Teams,
                competitor: CompetitorSpec::IperfDown,
                capacity_mbps: 2.0,
                competitor_start_secs: Some(10.0),
                competitor_duration_secs: Some(40.0),
                total_secs: Some(60.0),
                seed: 3,
            }),
            ScenarioSpec::Multiparty(MultipartySpec {
                kind: VcaKind::Zoom,
                n: 5,
                pin_c1: Some(true),
                duration_secs: 40.0,
                seed: 5,
            }),
        ];
        for spec in specs {
            spec.validate().unwrap();
            let text = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(spec, back, "round trip of {text}");
            // Canonical form is a fixed point.
            let canon = spec.canonical_json();
            let canon_back: ScenarioSpec = serde_json::from_str(&canon).unwrap();
            assert_eq!(canon_back.canonical_json(), canon);
        }
    }

    #[test]
    fn normalization_fills_defaults() {
        let spec = ScenarioSpec::Competition(CompetitionSpec {
            incumbent: VcaKind::Zoom,
            competitor: CompetitorSpec::Netflix,
            capacity_mbps: 3.0,
            competitor_start_secs: None,
            competitor_duration_secs: None,
            total_secs: None,
            seed: 1,
        });
        let explicit = ScenarioSpec::Competition(CompetitionSpec {
            incumbent: VcaKind::Zoom,
            competitor: CompetitorSpec::Netflix,
            capacity_mbps: 3.0,
            competitor_start_secs: Some(30.0),
            competitor_duration_secs: Some(120.0),
            total_secs: Some(210.0),
            seed: 1,
        });
        assert_eq!(spec.canonical_json(), explicit.canonical_json());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut bad = match sample_two_party() {
            ScenarioSpec::TwoParty(s) => s,
            _ => unreachable!(),
        };
        bad.duration_secs = 0.0;
        assert!(ScenarioSpec::TwoParty(bad.clone()).validate().is_err());
        bad.duration_secs = 30.0;
        bad.knobs = Some(ClientKnobs {
            teams_width_bug: None,
            min_rate_mbps: Some(1.0),
            max_rate_mbps: None,
        });
        assert!(ScenarioSpec::TwoParty(bad).validate().is_err());
        let comp = ScenarioSpec::Competition(CompetitionSpec {
            incumbent: VcaKind::Zoom,
            competitor: CompetitorSpec::IperfUp,
            capacity_mbps: 1.0,
            competitor_start_secs: Some(100.0),
            competitor_duration_secs: Some(200.0),
            total_secs: Some(210.0),
            seed: 0,
        });
        assert!(comp.validate().is_err());
        let multi = ScenarioSpec::Multiparty(MultipartySpec {
            kind: VcaKind::Meet,
            n: 1,
            pin_c1: None,
            duration_secs: 30.0,
            seed: 0,
        });
        assert!(multi.validate().is_err());
    }

    #[test]
    fn slugs() {
        assert_eq!(slug("Zoom-Chrome"), "zoom_chrome");
        assert_eq!(slug("fig9a Zoom-Zoom @0.5"), "fig9a_zoom_zoom_0_5");
        assert_eq!(float_slug(0.5), "0_5");
        assert_eq!(float_slug(10.0), "10");
        assert_eq!(float_slug(1.25), "1_25");
    }
}
