//! Campaign expansion: a compact declarative sweep → a flat, ordered run list.
//!
//! A [`CampaignSpec`] holds one or more [`ScenarioTemplate`]s, each a base
//! [`ScenarioSpec`] plus optional [`Axes`]. Expansion takes the Cartesian
//! product of the axes in a fixed nesting order (kinds → competitors →
//! capacities → uplinks → downlinks → seeds) so a campaign always produces
//! the same runs in the same order — the determinism contract the parallel
//! executor and the result store both build on.

use crate::spec::{float_slug, slug, CompetitorSpec, ScenarioSpec};
use serde::{de_field, DeError, Deserialize, Serialize, Value};
use vcabench_netsim::RateProfile;
use vcabench_vca::VcaKind;

/// Seed sweep: an explicit list or a contiguous range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedAxis {
    /// Explicit seeds, run in the given order.
    List(Vec<u64>),
    /// `base, base+1, …, base+count-1`.
    Range {
        /// First seed.
        base: u64,
        /// Number of seeds.
        count: u64,
    },
}

impl SeedAxis {
    /// The seeds, in sweep order.
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            SeedAxis::List(seeds) => seeds.clone(),
            SeedAxis::Range { base, count } => (0..*count).map(|i| base + i).collect(),
        }
    }
}

impl Serialize for SeedAxis {
    /// A bare array (`[41, 42]`) or `{"base": 41, "count": 4}`.
    fn to_json_value(&self) -> Value {
        match self {
            SeedAxis::List(seeds) => seeds.to_json_value(),
            SeedAxis::Range { base, count } => {
                let mut m = serde::Map::new();
                m.insert("base".to_string(), Value::U64(*base));
                m.insert("count".to_string(), Value::U64(*count));
                Value::Object(m)
            }
        }
    }
}

impl Deserialize for SeedAxis {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(_) => Vec::<u64>::from_json_value(v).map(SeedAxis::List),
            Value::Object(obj) => Ok(SeedAxis::Range {
                base: de_field(obj, "base")?,
                count: de_field(obj, "count")?,
            }),
            other => Err(DeError::expected("seed list or {base, count} range", other)),
        }
    }
}

/// Sweep axes applied to a template's base scenario. Every axis is optional;
/// an omitted axis leaves the base value untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axes {
    /// Sweep the client kind (any scenario type).
    pub kinds: Option<Vec<VcaKind>>,
    /// Sweep the C1 uplink as constant-rate profiles, Mbps (two-party only).
    pub up_mbps: Option<Vec<f64>>,
    /// Sweep the C1 downlink as constant-rate profiles, Mbps (two-party only).
    pub down_mbps: Option<Vec<f64>>,
    /// Sweep the bottleneck capacity, Mbps (competition only).
    pub capacity_mbps: Option<Vec<f64>>,
    /// Sweep the competitor (competition only).
    pub competitors: Option<Vec<CompetitorSpec>>,
    /// Sweep the seed (any scenario type).
    pub seeds: Option<SeedAxis>,
}

impl Axes {
    const EMPTY: Axes = Axes {
        kinds: None,
        up_mbps: None,
        down_mbps: None,
        capacity_mbps: None,
        competitors: None,
        seeds: None,
    };

    fn check_compatible(&self, base: &ScenarioSpec) -> Result<(), String> {
        let two_party_only = [
            ("up_mbps", self.up_mbps.is_some()),
            ("down_mbps", self.down_mbps.is_some()),
        ];
        let competition_only = [
            ("capacity_mbps", self.capacity_mbps.is_some()),
            ("competitors", self.competitors.is_some()),
        ];
        for (name, present) in two_party_only {
            if present && !matches!(base, ScenarioSpec::TwoParty(_)) {
                return Err(format!(
                    "axis `{name}` applies only to two_party scenarios (base is {})",
                    base.type_tag()
                ));
            }
        }
        for (name, present) in competition_only {
            if present && !matches!(base, ScenarioSpec::Competition(_)) {
                return Err(format!(
                    "axis `{name}` applies only to competition scenarios (base is {})",
                    base.type_tag()
                ));
            }
        }
        for (name, empty) in [
            ("kinds", self.kinds.as_deref() == Some(&[])),
            ("up_mbps", self.up_mbps.as_deref() == Some(&[])),
            ("down_mbps", self.down_mbps.as_deref() == Some(&[])),
            ("capacity_mbps", self.capacity_mbps.as_deref() == Some(&[])),
            ("competitors", self.competitors.as_deref() == Some(&[])),
            (
                "seeds",
                self.seeds.as_ref().is_some_and(|s| s.seeds().is_empty()),
            ),
        ] {
            if empty {
                return Err(format!("axis `{name}` is empty"));
            }
        }
        Ok(())
    }
}

/// A base scenario plus sweep axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTemplate {
    /// Label prefix for expanded runs (default: the campaign name).
    pub label: Option<String>,
    /// The scenario every expanded run starts from.
    pub base: ScenarioSpec,
    /// Sweep axes; omit for a single run of `base`.
    pub axes: Option<Axes>,
}

/// A named set of scenario templates — one experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (also the result-store file stem).
    pub name: String,
    /// Templates, expanded in order.
    pub scenarios: Vec<ScenarioTemplate>,
}

/// One concrete run produced by expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedRun {
    /// Position in the campaign's deterministic run order.
    pub index: usize,
    /// Human-readable snake_case label (unique within the campaign).
    pub label: String,
    /// The fully concrete scenario.
    pub spec: ScenarioSpec,
}

impl CampaignSpec {
    /// Parse a campaign from JSON text.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        serde_json::from_str(text).map_err(|e| format!("campaign spec: {e}"))
    }

    /// Serialize to compact JSON (the spec-file format [`from_json`] reads).
    ///
    /// [`from_json`]: CampaignSpec::from_json
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign serializes")
    }

    /// Expand every template into the flat, ordered, validated run list.
    pub fn expand(&self) -> Result<Vec<ExpandedRun>, String> {
        if self.name.trim().is_empty() {
            return Err("campaign: empty name".to_string());
        }
        if self.scenarios.is_empty() {
            return Err("campaign: no scenarios".to_string());
        }
        let mut runs = Vec::new();
        for (ti, template) in self.scenarios.iter().enumerate() {
            let axes = template.axes.as_ref().unwrap_or(&Axes::EMPTY);
            axes.check_compatible(&template.base)
                .map_err(|e| format!("scenario #{ti}: {e}"))?;
            let prefix = template.label.clone().unwrap_or_else(|| self.name.clone());
            expand_template(&template.base, axes, &prefix, &mut runs)
                .map_err(|e| format!("scenario #{ti}: {e}"))?;
        }
        for run in &runs {
            run.spec
                .validate()
                .map_err(|e| format!("run `{}`: {e}", run.label))?;
        }
        let mut labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("campaign: duplicate run label `{}`", dup[0]));
        }
        Ok(runs)
    }
}

/// Cartesian expansion in the fixed nesting order
/// kinds → competitors → capacities → uplinks → downlinks → seeds.
fn expand_template(
    base: &ScenarioSpec,
    axes: &Axes,
    prefix: &str,
    out: &mut Vec<ExpandedRun>,
) -> Result<(), String> {
    // Each level: (label-suffix, spec-so-far). A missing axis keeps the
    // previous level untouched.
    let mut level: Vec<(String, ScenarioSpec)> = vec![(slug(prefix), base.clone())];

    if let Some(kinds) = &axes.kinds {
        level = product(level, kinds, |spec, kind| {
            match spec {
                ScenarioSpec::TwoParty(s) => s.kind = *kind,
                ScenarioSpec::Competition(s) => s.incumbent = *kind,
                ScenarioSpec::Multiparty(s) => s.kind = *kind,
            }
            slug(kind.name())
        });
    }
    if let Some(competitors) = &axes.competitors {
        level = product(level, competitors, |spec, competitor| {
            if let ScenarioSpec::Competition(s) = spec {
                s.competitor = *competitor;
            }
            format!("vs_{}", competitor.tag())
        });
    }
    if let Some(caps) = &axes.capacity_mbps {
        level = product(level, caps, |spec, cap| {
            if let ScenarioSpec::Competition(s) = spec {
                s.capacity_mbps = *cap;
            }
            float_slug(*cap)
        });
    }
    if let Some(ups) = &axes.up_mbps {
        level = product(level, ups, |spec, mbps| {
            if let ScenarioSpec::TwoParty(s) = spec {
                s.up = RateProfile::constant_mbps(*mbps);
            }
            format!("up{}", float_slug(*mbps))
        });
    }
    if let Some(downs) = &axes.down_mbps {
        level = product(level, downs, |spec, mbps| {
            if let ScenarioSpec::TwoParty(s) = spec {
                s.down = RateProfile::constant_mbps(*mbps);
            }
            format!("down{}", float_slug(*mbps))
        });
    }
    if let Some(seed_axis) = &axes.seeds {
        let seeds = seed_axis.seeds();
        level = product(level, &seeds, |spec, seed| {
            spec.set_seed(*seed);
            format!("s{seed}")
        });
    }

    for (label, spec) in level {
        out.push(ExpandedRun {
            index: out.len(),
            label,
            spec,
        });
    }
    Ok(())
}

fn product<A>(
    level: Vec<(String, ScenarioSpec)>,
    values: &[A],
    mut apply: impl FnMut(&mut ScenarioSpec, &A) -> String,
) -> Vec<(String, ScenarioSpec)> {
    let mut next = Vec::with_capacity(level.len() * values.len());
    for (label, spec) in level {
        for value in values {
            let mut spec = spec.clone();
            let suffix = apply(&mut spec, value);
            next.push((format!("{label}_{suffix}"), spec));
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TwoPartySpec;

    fn two_party_base() -> ScenarioSpec {
        ScenarioSpec::TwoParty(TwoPartySpec {
            kind: VcaKind::Zoom,
            up: RateProfile::constant_mbps(1000.0),
            down: RateProfile::constant_mbps(1000.0),
            duration_secs: 60.0,
            seed: 1,
            knobs: None,
        })
    }

    #[test]
    fn cartesian_order_is_kinds_then_rates_then_seeds() {
        let campaign = CampaignSpec {
            name: "sweep".to_string(),
            scenarios: vec![ScenarioTemplate {
                label: None,
                base: two_party_base(),
                axes: Some(Axes {
                    kinds: Some(vec![VcaKind::Meet, VcaKind::Zoom]),
                    up_mbps: Some(vec![0.5, 1.0]),
                    down_mbps: None,
                    capacity_mbps: None,
                    competitors: None,
                    seeds: Some(SeedAxis::Range { base: 10, count: 2 }),
                }),
            }],
        };
        let runs = campaign.expand().unwrap();
        assert_eq!(runs.len(), 8);
        assert_eq!(runs[0].label, "sweep_meet_up0_5_s10");
        assert_eq!(runs[1].label, "sweep_meet_up0_5_s11");
        assert_eq!(runs[2].label, "sweep_meet_up1_s10");
        assert_eq!(runs[4].label, "sweep_zoom_up0_5_s10");
        assert_eq!(runs[7].label, "sweep_zoom_up1_s11");
        assert!(runs.iter().enumerate().all(|(i, r)| r.index == i));
        match &runs[4].spec {
            ScenarioSpec::TwoParty(s) => {
                assert_eq!(s.kind, VcaKind::Zoom);
                assert_eq!(s.seed, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn axis_type_mismatch_is_rejected() {
        let campaign = CampaignSpec {
            name: "bad".to_string(),
            scenarios: vec![ScenarioTemplate {
                label: None,
                base: two_party_base(),
                axes: Some(Axes {
                    capacity_mbps: Some(vec![1.0]),
                    ..Axes::EMPTY
                }),
            }],
        };
        let err = campaign.expand().unwrap_err();
        assert!(err.contains("capacity_mbps"), "{err}");
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let campaign = CampaignSpec {
            name: "dup".to_string(),
            scenarios: vec![
                ScenarioTemplate {
                    label: Some("same".to_string()),
                    base: two_party_base(),
                    axes: None,
                },
                ScenarioTemplate {
                    label: Some("same".to_string()),
                    base: two_party_base(),
                    axes: None,
                },
            ],
        };
        let err = campaign.expand().unwrap_err();
        assert!(err.contains("duplicate run label"), "{err}");
    }

    #[test]
    fn campaign_round_trip_preserves_expansion() {
        let campaign = CampaignSpec {
            name: "rt".to_string(),
            scenarios: vec![ScenarioTemplate {
                label: Some("grid".to_string()),
                base: two_party_base(),
                axes: Some(Axes {
                    kinds: Some(vec![VcaKind::Teams]),
                    up_mbps: Some(vec![0.25, 0.5]),
                    down_mbps: None,
                    capacity_mbps: None,
                    competitors: None,
                    seeds: Some(SeedAxis::List(vec![3, 5])),
                }),
            }],
        };
        let text = serde_json::to_string(&campaign).unwrap();
        let back = CampaignSpec::from_json(&text).unwrap();
        assert_eq!(campaign, back);
        assert_eq!(campaign.expand().unwrap(), back.expand().unwrap());
    }
}
